#include "src/testing/join_fuzz.h"

#include <iterator>
#include <memory>
#include <optional>
#include <utility>

#include "src/tde/engine.h"
#include "src/tde/exec/expression.h"
#include "src/testing/reference_oracle.h"
#include "src/testing/table_diff.h"

namespace vizq::testing {

namespace {

using query::AbstractQuery;
using query::Measure;

// Measure candidates over the joined schema. COUNTD is included because it
// is not re-aggregable from partials: it forces the final-merge path to
// carry whole distinct sets across partitions.
struct MeasureCandidate {
  AggFunc func;
  const char* column;
};
constexpr MeasureCandidate kMeasureCandidates[] = {
    {AggFunc::kSum, "m0"},  {AggFunc::kMin, "m0"},
    {AggFunc::kMax, "m0"},  {AggFunc::kCount, "m0"},
    {AggFunc::kAvg, "m0"},  {AggFunc::kSum, "m1"},
    {AggFunc::kAvg, "m1"},  {AggFunc::kMin, "m1"},
    {AggFunc::kSum, "p"},   {AggFunc::kCount, "p"},
    {AggFunc::kMax, "p"},   {AggFunc::kCountDistinct, "p"},
    {AggFunc::kCountDistinct, "d1"},
};

}  // namespace

std::string JoinFuzzCase::Describe() const {
  return std::string(join_type == tde::JoinType::kInner ? "join:inner|"
                                                        : "join:left|") +
         agg.ToKeyString();
}

JoinFuzzCase GenerateJoinCase(const Dataset& ds, Rng& rng) {
  JoinFuzzCase jc;
  jc.join_type = rng.Chance(0.5) ? tde::JoinType::kInner
                                 : tde::JoinType::kLeftOuter;
  query::QueryBuilder qb(kFuzzDataSource, ds.table + "*" + ds.dim_table);

  // 0–2 distinct group-by columns; "k" groups by the join key itself,
  // which is NULL for unmatched left-outer rows.
  std::vector<std::string> dim_pool = {"d0", "d1", "d2", "k"};
  int num_dims = static_cast<int>(rng.Below(3));
  for (int i = 0; i < num_dims && !dim_pool.empty(); ++i) {
    size_t pick = rng.Below(dim_pool.size());
    qb.Dim(dim_pool[pick]);
    dim_pool.erase(dim_pool.begin() + pick);
  }

  // 1–2 distinct measures, plus an occasional COUNT(*) — the one aggregate
  // that counts unmatched left-outer rows.
  std::vector<int> measure_pool;
  for (int i = 0; i < static_cast<int>(std::size(kMeasureCandidates)); ++i) {
    measure_pool.push_back(i);
  }
  int num_measures = 1 + static_cast<int>(rng.Below(2));
  for (int i = 0; i < num_measures; ++i) {
    size_t pick = rng.Below(measure_pool.size());
    const MeasureCandidate& c = kMeasureCandidates[measure_pool[pick]];
    qb.Agg(c.func, c.column);
    measure_pool.erase(measure_pool.begin() + pick);
  }
  if (rng.Chance(0.3)) qb.CountAll();

  jc.agg = qb.Build();
  return jc;
}

tde::LogicalOpPtr BuildJoinPlan(const Dataset& ds, const JoinFuzzCase& jc) {
  tde::LogicalOpPtr join = tde::MakeJoin(
      jc.join_type, {{tde::Col("d0"), tde::Col("k")}}, tde::MakeScan(ds.table),
      tde::MakeScan(ds.dim_table));
  std::vector<tde::NamedExpr> groups;
  for (const std::string& d : jc.agg.dimensions) {
    groups.push_back({d, tde::Col(d)});
  }
  std::vector<tde::LogicalAgg> aggs;
  for (const Measure& m : jc.agg.measures) {
    tde::LogicalAgg a;
    a.func = m.func;
    a.arg = m.column.empty() ? nullptr : tde::Col(m.column);
    a.name = m.EffectiveAlias();
    aggs.push_back(std::move(a));
  }
  return tde::MakeAggregate(std::move(groups), std::move(aggs),
                            std::move(join));
}

StatusOr<ResultTable> OracleJoinExecute(const Dataset& ds,
                                        const JoinFuzzCase& jc) {
  VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<tde::Table> fact,
                        ds.db->GetTable(ds.table));
  VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<tde::Table> dim,
                        ds.db->GetTable(ds.dim_table));
  auto all_columns = [](const tde::Table& t) {
    std::vector<int> out;
    for (int i = 0; i < t.num_columns(); ++i) out.push_back(i);
    return out;
  };
  ResultTable left = fact->Slice(0, fact->num_rows(), all_columns(*fact));
  ResultTable right = dim->Slice(0, dim->num_rows(), all_columns(*dim));

  std::vector<ResultColumn> joined_columns = left.columns();
  joined_columns.insert(joined_columns.end(), right.columns().begin(),
                        right.columns().end());
  std::optional<int> left_key = left.FindColumn("d0");
  std::optional<int> right_key = right.FindColumn("k");
  if (!left_key.has_value() || !right_key.has_value()) {
    return Internal("join fuzz: key column missing");
  }

  std::vector<ResultTable::Row> joined;
  for (const ResultTable::Row& lr : left.rows()) {
    bool matched = false;
    const Value& key = lr[*left_key];
    if (!key.is_null()) {  // NULL keys never match
      for (const ResultTable::Row& rr : right.rows()) {
        const Value& rkey = rr[*right_key];
        if (rkey.is_null() || !key.Equals(rkey)) continue;
        ResultTable::Row row = lr;
        row.insert(row.end(), rr.begin(), rr.end());
        joined.push_back(std::move(row));
        matched = true;
      }
    }
    if (!matched && jc.join_type == tde::JoinType::kLeftOuter) {
      ResultTable::Row row = lr;
      row.resize(joined_columns.size(), Value::Null());
      joined.push_back(std::move(row));
    }
  }
  return OracleAggregateRows(joined_columns, joined, jc.agg);
}

std::vector<LaneCheck> RunJoinLanes(const Dataset& ds, const JoinFuzzCase& jc,
                                    const DiffOptions& diff) {
  std::vector<LaneCheck> out;
  const std::string key = jc.Describe();
  StatusOr<ResultTable> oracle = OracleJoinExecute(ds, jc);
  if (!oracle.ok()) {
    out.push_back(LaneCheck{"join_oracle", false,
                            "oracle failed: " + oracle.status().ToString(),
                            key});
    return out;
  }
  tde::LogicalOpPtr plan = BuildJoinPlan(ds, jc);

  auto run = [&](const std::string& lane,
                 const std::shared_ptr<tde::Database>& db,
                 const tde::QueryOptions& options) {
    tde::TdeEngine engine(db);
    StatusOr<tde::QueryResult> result = engine.Execute(plan, options);
    if (!result.ok()) {
      out.push_back(LaneCheck{
          lane, false,
          "execution failed: " + result.status().ToString() + " [case: " +
              key + "]",
          key});
      return;
    }
    DiffResult d = DiffTables(*oracle, result->table, diff);
    std::string detail =
        d.equivalent ? "" : d.message + " [case: " + key + "]";
    out.push_back(LaneCheck{lane, d.equivalent, std::move(detail), key});
  };

  run("join_serial", ds.db, tde::QueryOptions::Serial());

  // Forced-parallel: tiny thresholds route the build through the
  // partitioned morsel-parallel path and the aggregate through the
  // partitioned final merge even at fuzzing row counts.
  tde::QueryOptions parallel;
  parallel.parallel.max_dop = 3;
  parallel.parallel.min_rows_per_fraction = 1;
  parallel.parallel.enable_morsel = true;
  parallel.parallel.morsel_rows = 7;
  parallel.parallel.parallel_build_min_rows = 1;
  parallel.parallel.parallel_merge_min_rows = 1;
  run("join_parallel", ds.db, parallel);

  if (ds.db_plain != nullptr) {
    run("join_plain", ds.db_plain, tde::QueryOptions::Serial());
  }
  return out;
}

}  // namespace vizq::testing
