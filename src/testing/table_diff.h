// Order-insensitive, tolerance-aware ResultTable comparison for the
// differential fuzzer (and for hand-written tests via
// tests/test_util.h::ExpectTablesEquivalent).
//
// Aggregate results come back in an unspecified row order (hash
// aggregation), and floating-point measures accumulate in whatever order
// the executing lane visited the rows — so equality here means "same
// multiset of rows, numeric cells within tolerance". Integer cells compare
// exactly (every lane computes them in exact int64 arithmetic); doubles
// compare with a combined absolute + relative epsilon; NULL only matches
// NULL.
//
// Top-n results need a weaker check: ties at the cut line may legally
// differ between lanes. DiffTopN accepts any result whose order-by key
// sequence matches the reference positionally and whose rows are all drawn
// from the unlimited reference result.

#ifndef VIZQUERY_TESTING_TABLE_DIFF_H_
#define VIZQUERY_TESTING_TABLE_DIFF_H_

#include <string>

#include "src/common/result_table.h"
#include "src/query/abstract_query.h"

namespace vizq::testing {

struct DiffOptions {
  double abs_tol = 1e-9;
  double rel_tol = 1e-9;
};

// Outcome of a comparison; `message` explains the first difference found.
struct DiffResult {
  bool equivalent = true;
  std::string message;

  explicit operator bool() const { return equivalent; }
};

// True when two cells are equivalent: NULL==NULL, exact for ints/bools/
// strings, tolerance-aware when either side is a double.
bool CellsEquivalent(const Value& a, const Value& b,
                     const DiffOptions& options = {});

// Order-insensitive multiset comparison. Column names must agree
// positionally; row multisets must match cell-by-cell under
// CellsEquivalent.
DiffResult DiffTables(const ResultTable& expected, const ResultTable& actual,
                      const DiffOptions& options = {});

// Comparison for a query carrying order_by and/or a limit, where ties make
// more than one answer correct. `expected_limited` is the reference result
// with order/limit applied; `expected_unlimited` is the same query without
// order/limit. Checks: same row count as `expected_limited`, positional
// agreement on the order-by key columns, and every actual row present in
// `expected_unlimited`.
DiffResult DiffTopN(const ResultTable& expected_limited,
                    const ResultTable& expected_unlimited,
                    const ResultTable& actual,
                    const query::AbstractQuery& query,
                    const DiffOptions& options = {});

// Dispatches to DiffTopN when the query has order_by/limit, DiffTables
// otherwise.
DiffResult DiffForQuery(const ResultTable& expected_limited,
                        const ResultTable& expected_unlimited,
                        const ResultTable& actual,
                        const query::AbstractQuery& query,
                        const DiffOptions& options = {});

}  // namespace vizq::testing

#endif  // VIZQUERY_TESTING_TABLE_DIFF_H_
