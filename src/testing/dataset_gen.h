// DatasetGen: seed-reproducible randomized columnar fixtures with
// adversarial shapes — NULL-heavy columns, empty tables, single-value
// (fully run-length-encodable) columns, duplicate keys, extreme numeric
// magnitudes, high-cardinality strings, and strings chosen to collide with
// textual renderings of other values (e.g. the literal "NULL").
//
// Every dataset is a single fact table with a fixed column roster so
// QueryGen can be schema-oblivious:
//   d0, d1 : string dimensions (varying cardinality / null fraction)
//   d2     : int64 dimension (small domain)
//   day    : date dimension
//   m0     : int64 measure (|v| <= 1e12 — int64 SUM stays exact and far
//            from overflow at fuzzing row counts)
//   m1     : float64 measure (non-negative, magnitudes 1e-6 .. 1e6, so
//            multiset sums agree across summation orders within 1e-9
//            relative tolerance and an injected off-by-one is never masked)

#ifndef VIZQUERY_TESTING_DATASET_GEN_H_
#define VIZQUERY_TESTING_DATASET_GEN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/tde/storage/database.h"

namespace vizq::testing {

// Data-source name every fuzzing lane registers under, so one generated
// AbstractQuery is valid against all of them.
inline constexpr char kFuzzDataSource[] = "fuzzsrc";

struct Dataset {
  std::shared_ptr<tde::Database> db;
  // Same rows with every column forced to kPlain encoding: the
  // plain_encoding lane diffs results over this twin against the (kAuto,
  // possibly dictionary/RLE/delta-encoded) `db`, so every fuzz iteration
  // checks the encoded execution path against the decoded one.
  std::shared_ptr<tde::Database> db_plain;
  std::string table = "fuzz";
  int64_t rows = 0;

  // Join-lane dimension table (join_fuzz.h), present in both `db` and
  // `db_plain`:
  //   k : string join key drawn from d0's value pool, plus keys absent
  //       from the fact table, duplicate keys (one fact row matching
  //       several dimension rows) and NULL keys (which never match)
  //   p : int64 payload measure
  // May be empty (inner joins produce nothing; left-outer joins emit
  // all-NULL right columns).
  std::string dim_table = "fuzzdim";
  int64_t dim_rows = 0;

  std::vector<std::string> dim_columns;      // d0, d1, d2, day
  std::vector<std::string> measure_columns;  // m0, m1

  // Per-column literal pool for filter generation: the values that occur
  // in the column plus a few that deliberately do not.
  std::map<std::string, std::vector<Value>> pools;

  std::vector<std::string> all_columns() const {
    std::vector<std::string> out = dim_columns;
    out.insert(out.end(), measure_columns.begin(), measure_columns.end());
    return out;
  }
};

// Deterministic: the same seed always produces the same dataset.
Dataset GenerateDataset(uint64_t seed);

}  // namespace vizq::testing

#endif  // VIZQUERY_TESTING_DATASET_GEN_H_
