// The differential fuzzer driver: deterministic, seed-reproducible
// generation of datasets and query batches, execution through every lane
// (lanes.h), metamorphic cross-checks (query_gen.h), and a minimizing
// reporter.
//
// Reproducing a failure: every FuzzFailure carries the dataset seed and
// the per-query lane seed. `GenerateDataset(dataset_seed)` rebuilds the
// exact fixture; `ExecutionLanes(ds, opts).RunQuery(query, lane_seed)`
// replays the failing check. Running the CLI again with the same --seed
// and --iterations replays the whole campaign.

#ifndef VIZQUERY_TESTING_DIFFERENTIAL_FUZZER_H_
#define VIZQUERY_TESTING_DIFFERENTIAL_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/query/abstract_query.h"
#include "src/testing/lanes.h"

namespace vizq::testing {

struct FuzzOptions {
  uint64_t seed = 20150406;  // any value; fixed default for tier-1 runs
  int iterations = 200;
  int queries_per_iteration = 3;
  // A fresh dataset (and fresh lane services/caches) every N iterations;
  // within a window, caches persist so cross-query interactions are
  // fuzzed too.
  int dataset_every = 8;
  bool include_federated = true;
  bool deadline_lane = true;
  // Overload lane: every response from a saturated frontend is exact-
  // correct, labeled stale within the serve bound, or a typed shed.
  bool stale_shed_lane = true;
  // Sharded-cluster lane: the iteration batch scattered across a 3-node
  // simulated Data Server and diffed against the single-node oracle,
  // with seed-selected node-kill / kill-then-revive fault variants.
  bool cluster_lane = true;
  bool metamorphic = true;
  // Two-table equi-join lane (join_fuzz.h): one generated inner or
  // left-outer join + aggregation per iteration, diffed against a
  // nested-loop reference join in serial, forced-parallel (partitioned
  // hash-join build + partitioned final merge) and plain-encoding modes.
  bool join_lane = true;
  // Self-test: bump one aggregate cell of the engine result by one in a
  // scratch lane; the diff must catch it.
  bool inject_offby_one = false;
  // Stop after this many distinct failures (each is minimized, which
  // costs extra executions).
  int max_failures = 5;
  bool minimize = true;
  DiffOptions diff;
};

struct FuzzFailure {
  int iteration = 0;
  uint64_t dataset_seed = 0;  // GenerateDataset(dataset_seed) rebuilds it
  uint64_t lane_seed = 0;     // RunQuery(query, lane_seed) replays it
  std::string lane;
  query::AbstractQuery query;
  // Shrunk query that still fails this lane on a fresh lane set; equals
  // `query` when the failure needs cross-query cache state (noted in
  // `detail`) or minimization is off.
  query::AbstractQuery minimized;
  std::string detail;

  std::string ToString() const;
};

struct FuzzReport {
  int iterations_run = 0;
  int queries_generated = 0;
  int64_t lane_checks = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

FuzzReport RunDifferentialFuzz(const FuzzOptions& options);

// Re-checks `q` against `lane` on a fresh ExecutionLanes over `ds`;
// returns true when the lane still fails (used by the minimizer and by
// regression tests replaying a reported failure).
bool LaneStillFails(const Dataset& ds, const LaneSetupOptions& lane_options,
                    const query::AbstractQuery& q, const std::string& lane,
                    uint64_t lane_seed, std::string* detail);

}  // namespace vizq::testing

#endif  // VIZQUERY_TESTING_DIFFERENTIAL_FUZZER_H_
