#include "src/testing/lanes.h"

#include <set>
#include <utility>

#include "src/cache/intelligent_cache.h"
#include "src/common/rng.h"
#include "src/federation/data_source.h"
#include "src/federation/simulated_source.h"
#include "src/obs/perf_recorder.h"
#include "src/testing/reference_oracle.h"

namespace vizq::testing {

namespace {

using dashboard::BatchOptions;
using dashboard::BatchReport;
using dashboard::QueryService;
using dashboard::ServedFrom;
using query::AbstractQuery;
using query::Measure;

// A latency model where every wait rounds to zero: the backend executes
// correctly but imposes no timing, keeping bounded fuzz runs fast.
federation::PerformanceModel InstantModel() {
  federation::PerformanceModel m;
  m.connect_ms = 0;
  m.dispatch_ms = 0;
  m.rows_per_ms = 1e9;
  m.network_rtt_ms = 0;
  m.rows_per_ms_network = 1e9;
  m.temp_table_row_ms = 0;
  m.session_ddl_lock_ms = 0;
  return m;
}

// A model slow enough that single-digit-millisecond deadlines interrupt
// queries at every stage (connect, admission, work, transfer).
federation::PerformanceModel SlowModel() {
  federation::PerformanceModel m;
  m.connect_ms = 1.0;
  m.dispatch_ms = 0.5;
  m.rows_per_ms = 50.0;
  m.network_rtt_ms = 0.5;
  m.rows_per_ms_network = 500.0;
  return m;
}

std::unique_ptr<QueryService> MakeService(
    std::shared_ptr<federation::DataSource> source,
    std::shared_ptr<dashboard::CacheStack> caches, const std::string& table) {
  auto service = std::make_unique<QueryService>(std::move(source),
                                                std::move(caches));
  (void)service->RegisterTableView(table);
  return service;
}

// stale_shed lane bounds. The TTL is microseconds so every cache answer is
// already past freshness by the time the saturated frontend probes it (no
// sleeps needed in a bounded fuzz run); the serve bound is generous enough
// that in-run entries never age out of it.
constexpr double kStaleShedTtlMs = 0.05;
constexpr double kStaleShedBoundMs = 10000.0;

// Cluster-lane view names: the fuzz table published three times so one
// iteration batch scatters across all three nodes.
constexpr int kClusterViews = 3;
std::string ClusterViewName(int i) { return "clv" + std::to_string(i); }

// The error codes a clustered batch may legitimately answer while a node
// is down: exhausted retries, a lapsed deadline, or the kill itself.
bool IsTypedClusterError(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded || code == StatusCode::kAborted;
}

}  // namespace

AbstractQuery GeneralizeForDerivedHit(const AbstractQuery& q,
                                      const Dataset& ds) {
  AbstractQuery g = q;
  g.order_by.clear();
  g.limit = 0;
  g.filters.predicates.clear();

  auto add_dim = [&](const std::string& column) {
    for (const std::string& d : g.dimensions) {
      if (d == column) return;
    }
    g.dimensions.push_back(column);
  };
  // Residual filtering is only possible over grouped columns.
  for (const query::ColumnPredicate& p : q.filters.predicates) {
    add_dim(p.column);
  }
  // COUNTD derives from a stored dimension.
  for (const Measure& m : q.measures) {
    if (m.func == AggFunc::kCountDistinct) add_dim(m.column);
  }
  // One extra unused dimension (when the schema has one) forces the hit
  // through the roll-up path.
  for (const std::string& d : ds.dim_columns) {
    bool used = false;
    for (const std::string& have : g.dimensions) {
      if (have == d) used = true;
    }
    if (!used) {
      g.dimensions.push_back(d);
      break;
    }
  }

  std::vector<Measure> measures;
  std::set<std::string> seen;
  auto add_measure = [&](Measure m) {
    m.alias.clear();  // canonical alias; matching is by (func, column)
    if (seen.insert(m.ToKeyString()).second) measures.push_back(std::move(m));
  };
  for (const Measure& m : q.measures) {
    if (m.func == AggFunc::kAvg) {
      // Stored as a re-aggregable SUM + COUNT pair.
      add_measure(Measure{AggFunc::kSum, m.column, ""});
      add_measure(Measure{AggFunc::kCount, m.column, ""});
    } else {
      add_measure(m);
    }
  }
  add_measure(Measure{AggFunc::kCountStar, "", ""});
  g.measures = std::move(measures);
  g.Canonicalize();
  return g;
}

ExecutionLanes::ExecutionLanes(Dataset dataset, LaneSetupOptions options)
    : dataset_(std::move(dataset)), options_(options) {
  table_ = *dataset_.db->GetTable(dataset_.table);

  truth_opts_.use_intelligent_cache = false;
  truth_opts_.use_literal_cache = false;
  truth_opts_.analyze_batch = false;
  truth_opts_.fuse_queries = false;
  truth_opts_.concurrent = false;
  truth_opts_.adjust.decompose_avg = false;
  truth_opts_.adjust.add_filter_dimensions = false;

  auto tde_source = [&] {
    return std::make_shared<federation::TdeDataSource>(
        kFuzzDataSource, dataset_.db, tde::QueryOptions::Serial());
  };
  truth_service_ = MakeService(tde_source(), nullptr, dataset_.table);

  // Morsel-parallel lane: force parallel plans even on the fuzzer's small
  // tables (tiny per-fraction minimum, tiny morsels) so Exchange producers
  // run as scheduler tasks racing over a shared morsel queue.
  tde::QueryOptions morsel_opts;
  morsel_opts.parallel.enable_parallel = true;
  morsel_opts.parallel.max_dop = 3;
  morsel_opts.parallel.min_rows_per_fraction = 1;
  morsel_opts.parallel.enable_morsel = true;
  morsel_opts.parallel.morsel_rows = 7;
  morsel_service_ = MakeService(
      std::make_shared<federation::TdeDataSource>(kFuzzDataSource, dataset_.db,
                                                  morsel_opts),
      nullptr, dataset_.table);
  // Forced-plain twin: same rows, every column kForcePlain, so the diff
  // against the oracle (which reads the kAuto-encoded table) isolates the
  // encoded execution path.
  if (dataset_.db_plain != nullptr) {
    plain_service_ = MakeService(
        std::make_shared<federation::TdeDataSource>(
            kFuzzDataSource, dataset_.db_plain, tde::QueryOptions::Serial()),
        nullptr, dataset_.table);
  }
  literal_service_ = MakeService(
      tde_source(), std::make_shared<dashboard::CacheStack>(), dataset_.table);
  batch_service_ = MakeService(
      tde_source(), std::make_shared<dashboard::CacheStack>(), dataset_.table);

  if (options_.include_federated) {
    auto mssql = std::make_shared<federation::SimulatedDataSource>(
        kFuzzDataSource, dataset_.db, InstantModel(),
        query::Capabilities::SingleThreadedSql(), query::SqlDialect::MssqlLike());
    fed_mssql_ = MakeService(std::move(mssql),
                             std::make_shared<dashboard::CacheStack>(),
                             dataset_.table);
    // Legacy driver: no temp tables, no top-n — but with the IN-list cap
    // lifted so large enumerations stay inline instead of erroring.
    query::Capabilities legacy = query::Capabilities::LegacyFileDriver();
    legacy.max_in_list = 100000;
    auto legacy_src = std::make_shared<federation::SimulatedDataSource>(
        kFuzzDataSource, dataset_.db, InstantModel(), legacy,
        query::SqlDialect::MysqlLike());
    fed_legacy_ = MakeService(std::move(legacy_src),
                              std::make_shared<dashboard::CacheStack>(),
                              dataset_.table);
  }
  if (options_.deadline_lane) {
    auto slow = std::make_shared<federation::SimulatedDataSource>(
        kFuzzDataSource, dataset_.db, SlowModel(),
        query::Capabilities::SingleThreadedSql(), query::SqlDialect::Ansi());
    deadline_service_ = MakeService(std::move(slow), nullptr, dataset_.table);
  }
  if (options_.stale_shed_lane) {
    cache::IntelligentCacheOptions iopts;
    iopts.fresh_ttl_ms = kStaleShedTtlMs;
    stale_service_ = MakeService(
        tde_source(), std::make_shared<dashboard::CacheStack>(iopts),
        dataset_.table);
    server::FrontendOptions fo;
    fo.admission.enabled = true;
    fo.admission.max_global_inflight = 0;  // injected overload: admit nothing
    fo.stale_serve_ms = kStaleShedBoundMs;
    stale_frontend_ =
        std::make_unique<server::Frontend>(stale_service_.get(), fo);
  }
  if (options_.cluster_lane) {
    cluster::ClusterOptions copts;
    copts.num_nodes = 3;
    copts.transport.net.simulate_latency = false;
    copts.shared_tier.net.simulate_latency = false;
    copts.retry.initial_backoff_ms = 0.0;  // bounded runs need no sleeps
    cluster_ = std::make_unique<cluster::ClusterCoordinator>(copts);
    for (int i = 0; i < kClusterViews; ++i) {
      cluster::SourceSpec spec;
      spec.view.name = ClusterViewName(i);
      spec.view.fact_table = dataset_.table;
      spec.backend = tde_source();
      (void)cluster_->Publish(spec);
    }
  }
}

StatusOr<OraclePair> ExecutionLanes::OracleFor(const AbstractQuery& q) {
  std::string key = q.ToKeyString();
  auto it = oracle_memo_.find(key);
  if (it != oracle_memo_.end()) return it->second;
  OraclePair pair;
  VIZQ_ASSIGN_OR_RETURN(pair.limited, OracleExecute(*table_, q));
  AbstractQuery unlimited = q;
  unlimited.order_by.clear();
  unlimited.limit = 0;
  VIZQ_ASSIGN_OR_RETURN(pair.unlimited, OracleExecute(*table_, unlimited));
  oracle_memo_.emplace(std::move(key), pair);
  return pair;
}

StatusOr<ResultTable> ExecutionLanes::ExecuteTruth(const AbstractQuery& q) {
  return truth_service_->ExecuteQuery(q, truth_opts_);
}

void ExecutionLanes::Check(const std::string& lane, const AbstractQuery& q,
                           const StatusOr<ResultTable>& result,
                           std::vector<LaneCheck>* out) {
  ++checks_run_;
  std::string key = q.ToKeyString();
  if (!result.ok()) {
    out->push_back(LaneCheck{lane, false,
                             "execution failed: " + result.status().ToString(),
                             key});
    return;
  }
  auto oracle = OracleFor(q);
  if (!oracle.ok()) {
    out->push_back(LaneCheck{lane, false,
                             "oracle failed: " + oracle.status().ToString(),
                             key});
    return;
  }
  DiffResult diff = DiffForQuery(oracle->limited, oracle->unlimited, *result,
                                 q, options_.diff);
  out->push_back(LaneCheck{lane, diff.equivalent, diff.message, key});
}

std::vector<LaneCheck> ExecutionLanes::RunQuery(const AbstractQuery& q,
                                                uint64_t lane_seed) {
  std::vector<LaneCheck> out;
  Rng rng(HashCombine(lane_seed, 0x1a7e5));

  // --- plain engine ---
  StatusOr<ResultTable> direct = ExecuteTruth(q);
  Check("tde_direct", q, direct, &out);

  // --- morsel-parallel engine vs the serial oracle ---
  Check("morsel_parallel", q, morsel_service_->ExecuteQuery(q, truth_opts_),
        &out);

  // --- forced-plain encoding twin vs the serial oracle ---
  if (plain_service_ != nullptr) {
    Check("plain_encoding", q, plain_service_->ExecuteQuery(q, truth_opts_),
          &out);
  }

  // --- recorder consistency: a traced execution must leave a coherent
  // PerfRecorder entry (observability is differentially tested too) ---
  {
    obs::PerfRecorder& recorder = obs::GlobalRecorder();
    const int64_t expect_id = recorder.NextRecordId();
    ExecContext rctx;  // tracing + metrics + breadcrumbs all enabled
    StatusOr<ResultTable> traced =
        truth_service_->ExecuteQuery(rctx, q, truth_opts_);
    ++checks_run_;
    if (!traced.ok()) {
      out.push_back(LaneCheck{"recorder", false,
                              "traced execution failed: " +
                                  traced.status().ToString(),
                              q.ToKeyString()});
    } else {
      obs::RecordedRequest entry = recorder.FindById(expect_id);
      std::string problem;
      if (entry.id == 0) {
        problem = "no recorder entry landed (expected id " +
                  std::to_string(expect_id) + ")";
      } else if (entry.root.TotalSpans() < 1 || entry.root.name.empty()) {
        problem = "recorder entry has an empty span tree";
      } else {
        // Root-operator rows-out must equal the rows the caller got back,
        // unless the service applied order/limit locally after the engine
        // (the "local-topn" breadcrumb marks that).
        bool local_topn = false;
        for (const obs::RecordedEvent& e : entry.events) {
          if (e.detail.rfind("local-topn", 0) == 0) local_topn = true;
        }
        auto it = entry.attachments.find("tde.analyze.root_rows");
        if (it == entry.attachments.end()) {
          problem = "recorder entry lacks tde.analyze.root_rows attachment";
        } else if (!local_topn &&
                   it->second != std::to_string(traced->num_rows())) {
          problem = "root operator rows-out " + it->second +
                    " != result rows " + std::to_string(traced->num_rows());
        }
      }
      out.push_back(
          LaneCheck{"recorder", problem.empty(), problem, q.ToKeyString()});

      // The request's PhaseTimeline must stay coherent with the recorded
      // root span: no negative phase, and the attributed (root-phase) sum
      // within tolerance of the span's wall time — neither wildly over
      // (double counting) nor under half of it (a serving layer lost its
      // scope). Detail phases are additive and excluded by attributed_ns.
      ++checks_run_;
      std::string tl_problem;
      const PhaseTimeline* tl = rctx.timeline();
      if (tl == nullptr) {
        tl_problem = "traced context carries no timeline";
      } else {
        for (int p = 0; p < kNumPhases; ++p) {
          if (tl->phase_ns(static_cast<Phase>(p)) < 0) {
            tl_problem = std::string("negative phase duration: ") +
                         PhaseName(static_cast<Phase>(p));
          }
        }
        double span_ms = entry.duration_us / 1000.0;
        double attr_ms = tl->attributed_ms();
        if (tl_problem.empty() && attr_ms > span_ms * 1.10 + 1.0) {
          tl_problem = "attributed " + std::to_string(attr_ms) +
                       "ms overshoots root span " + std::to_string(span_ms) +
                       "ms";
        }
        // The under-attribution slack must absorb scheduler preemption:
        // on a loaded host a sub-5ms request can be descheduled between
        // phase scopes, inflating the wall span while every phase keeps
        // its scope. A genuinely lost serving-layer scope still trips
        // this once the span is large enough to amortize that noise.
        constexpr double kSchedSlackMs = 5.0;
        if (tl_problem.empty() && attr_ms < span_ms * 0.5 - kSchedSlackMs) {
          tl_problem = "attributed " + std::to_string(attr_ms) +
                       "ms is under half the root span " +
                       std::to_string(span_ms) + "ms";
        }
      }
      out.push_back(LaneCheck{"recorder_timeline", tl_problem.empty(),
                              tl_problem, q.ToKeyString()});
    }
  }

  // --- fuzzer self-test: a bumped aggregate cell must be flagged ---
  if (options_.inject_offby_one && direct.ok()) {
    ResultTable bumped = *direct;
    bool did = false;
    for (int64_t r = 0; r < bumped.num_rows() && !did; ++r) {
      for (int c = static_cast<int>(q.dimensions.size());
           c < bumped.num_columns() && !did; ++c) {
        const Value& v = bumped.at(r, c);
        if (v.is_null()) continue;
        ResultTable::Row row = bumped.row(r);
        if (v.is_int()) {
          row[c] = Value(v.int_value() + 1);
        } else if (v.is_double()) {
          row[c] = Value(v.double_value() + 1.0);
        } else {
          continue;
        }
        ResultTable replaced(std::vector<ResultColumn>(bumped.columns()));
        for (int64_t i = 0; i < bumped.num_rows(); ++i) {
          replaced.AddRow(i == r ? row : bumped.row(i));
        }
        bumped = std::move(replaced);
        did = true;
      }
    }
    if (did) Check("injected_offby_one", q, bumped, &out);
  }

  // --- intelligent-cache derived hit ---
  {
    AbstractQuery g = GeneralizeForDerivedHit(q, dataset_);
    StatusOr<ResultTable> stored = ExecuteTruth(g);
    if (!stored.ok()) {
      out.push_back(LaneCheck{"derived_hit", false,
                              "generalized store failed: " +
                                  stored.status().ToString(),
                              q.ToKeyString()});
    } else {
      cache::IntelligentCache cache;
      cache.Put(g, *stored, 100.0);
      auto hit = cache.LookupHit(q);
      if (!hit.has_value()) {
        out.push_back(LaneCheck{
            "derived_hit", false,
            "no cache hit for query generalized as " + g.ToKeyString(),
            q.ToKeyString()});
      } else {
        Check("derived_hit", q, ResultTable(*hit->table), &out);
      }
    }
  }

  // --- literal cache: miss, then replay ---
  {
    BatchOptions opts = truth_opts_;
    opts.use_literal_cache = true;
    opts.adjust.decompose_avg = true;
    BatchReport first_report, replay_report;
    auto first = literal_service_->ExecuteBatch({q}, opts, &first_report);
    Check("literal_first", q,
          first.ok() ? StatusOr<ResultTable>((*first)[0])
                     : StatusOr<ResultTable>(first.status()),
          &out);
    auto replay = literal_service_->ExecuteBatch({q}, opts, &replay_report);
    Check("literal_replay", q,
          replay.ok() ? StatusOr<ResultTable>((*replay)[0])
                      : StatusOr<ResultTable>(replay.status()),
          &out);
    if (replay.ok() &&
        replay_report.queries[0].served_from != ServedFrom::kLiteralCache) {
      out.push_back(LaneCheck{
          "literal_replay", false,
          std::string("expected literal-cache hit on replay, served from ") +
              dashboard::ServedFromToString(
                  replay_report.queries[0].served_from),
          q.ToKeyString()});
    }
  }

  // --- federated backends ---
  if (fed_mssql_ != nullptr) {
    BatchOptions opts = truth_opts_;
    opts.use_literal_cache = true;
    opts.compiler.externalize_threshold = 16;
    Check("fed_mssql", q, fed_mssql_->ExecuteQuery(q, opts), &out);
  }
  if (fed_legacy_ != nullptr) {
    BatchOptions opts = truth_opts_;
    opts.use_literal_cache = true;
    Check("fed_legacy", q, fed_legacy_->ExecuteQuery(q, opts), &out);
  }

  // --- deadline: either a correct table or a clean deadline error ---
  if (deadline_service_ != nullptr) {
    static const double kBudgetsMs[] = {0.0, 1.0, 2.0, 5.0, 10.0};
    double budget = kBudgetsMs[rng.Below(5)];
    ExecContext ctx = ExecContext::WithDeadlineMs(budget);
    auto result = deadline_service_->ExecuteQuery(ctx, q, truth_opts_);
    ++checks_run_;
    if (result.ok()) {
      auto oracle = OracleFor(q);
      if (!oracle.ok()) {
        out.push_back(LaneCheck{"deadline", false,
                                "oracle failed: " + oracle.status().ToString(),
                                q.ToKeyString()});
      } else {
        DiffResult diff = DiffForQuery(oracle->limited, oracle->unlimited,
                                       *result, q, options_.diff);
        if (!diff.equivalent) {
          out.push_back(LaneCheck{
              "deadline", false,
              "ok status with wrong rows under deadline: " + diff.message,
              q.ToKeyString()});
        } else {
          out.push_back(LaneCheck{"deadline", true, "", q.ToKeyString()});
        }
      }
    } else if (result.status().code() != StatusCode::kDeadlineExceeded &&
               result.status().code() != StatusCode::kAborted) {
      out.push_back(LaneCheck{
          "deadline", false,
          "unexpected error under deadline: " + result.status().ToString(),
          q.ToKeyString()});
    } else {
      out.push_back(LaneCheck{"deadline", true, "", q.ToKeyString()});
    }
  }

  // --- stale_shed: under injected overload (nothing admitted) every
  // response must be exact-correct, correctly-labeled stale within the
  // serve bound, or a typed shed ---
  if (stale_frontend_ != nullptr) {
    // Steer rung coverage: warm the exact query (stale-exact rung), a
    // generalized superset (derived rung), or nothing (shed path). The
    // cache persists across the dataset's queries, so the unwarmed case
    // may still find an answer — any rung is acceptable as long as the
    // response obeys the contract.
    uint64_t variant = rng.Below(3);
    bool warmed_exact = false;
    if (variant == 0) {
      warmed_exact = stale_service_->ExecuteQuery(q, BatchOptions{}).ok();
    } else if (variant == 1) {
      AbstractQuery g = GeneralizeForDerivedHit(q, dataset_);
      (void)stale_service_->ExecuteQuery(g, BatchOptions{});
    }
    // Overload races spent deadlines too: the response must still be
    // typed, never a partial-but-OK table.
    bool expired = rng.Chance(0.15);
    ExecContext ctx =
        expired ? ExecContext::WithDeadlineMs(0.0) : ExecContext::Background();
    server::ServeReport report;
    auto served = stale_frontend_->Serve(1, ctx, {q}, &report);
    if (served.ok()) {
      std::string problem;
      if (report.outcome == server::ServeOutcome::kShed ||
          report.outcome == server::ServeOutcome::kError) {
        problem = std::string("ok result reported as ") +
                  server::ServeOutcomeName(report.outcome);
      } else if (report.max_age_ms > kStaleShedBoundMs) {
        problem = "served age " + std::to_string(report.max_age_ms) +
                  "ms exceeds the " + std::to_string(kStaleShedBoundMs) +
                  "ms serve bound";
      } else if (report.outcome == server::ServeOutcome::kStale &&
                 !(report.max_age_ms > 0)) {
        problem = "stale outcome without an age label";
      }
      if (!problem.empty()) {
        ++checks_run_;
        out.push_back(
            LaneCheck{"stale_shed", false, problem, q.ToKeyString()});
      } else {
        Check("stale_shed", q, StatusOr<ResultTable>((*served)[0]), &out);
      }
    } else {
      ++checks_run_;
      if (served.status().code() != StatusCode::kResourceExhausted) {
        out.push_back(LaneCheck{"stale_shed", false,
                                "overload failure not a typed shed: " +
                                    served.status().ToString(),
                                q.ToKeyString()});
      } else if (warmed_exact && !expired) {
        out.push_back(LaneCheck{
            "stale_shed", false,
            "shed despite a warm in-bound exact cache answer",
            q.ToKeyString()});
      } else {
        out.push_back(LaneCheck{"stale_shed", true, "", q.ToKeyString()});
      }
    }
  }

  return out;
}

std::vector<LaneCheck> ExecutionLanes::RunBatch(
    const std::vector<AbstractQuery>& batch, uint64_t lane_seed) {
  std::vector<LaneCheck> out;
  if (batch.empty()) return out;

  BatchOptions fused;  // defaults: everything on
  fused.adjust.add_filter_dimensions = true;
  BatchReport report;
  auto results = batch_service_->ExecuteBatch(batch, fused, &report);
  if (!results.ok()) {
    ++checks_run_;
    out.push_back(LaneCheck{"batch_fused", false,
                            "batch failed: " + results.status().ToString(),
                            batch[0].ToKeyString()});
  } else {
    for (size_t i = 0; i < batch.size(); ++i) {
      Check("batch_fused", batch[i], (*results)[i], &out);
    }
  }

  BatchOptions unfused = truth_opts_;
  unfused.concurrent = true;
  unfused.max_parallel_queries = 4;
  auto serial = truth_service_->ExecuteBatch(batch, unfused, nullptr);
  if (!serial.ok()) {
    ++checks_run_;
    out.push_back(LaneCheck{"batch_unfused", false,
                            "batch failed: " + serial.status().ToString(),
                            batch[0].ToKeyString()});
  } else {
    for (size_t i = 0; i < batch.size(); ++i) {
      Check("batch_unfused", batch[i], (*serial)[i], &out);
    }
  }

  // --- cluster_batch: the batch scattered across the 3-node simulated
  // Data Server. Variant 0 runs the healthy cluster and must be exactly
  // right. Variant 1 kills an owning node first: the retrying channel's
  // failover must still produce correct answers or a typed error, never
  // silent partials. Variant 2 additionally revives the node, so the
  // administrative rebalance (ownership moves + shared-tier namespace
  // invalidation) runs before a final must-be-correct pass.
  if (cluster_ != nullptr) {
    std::vector<AbstractQuery> cbatch = batch;
    for (size_t i = 0; i < cbatch.size(); ++i) {
      cbatch[i].view = ClusterViewName(static_cast<int>(i) % kClusterViews);
    }
    Rng rng(HashCombine(lane_seed, 0xC1057E5ULL));
    const int variant = rng.Below(3);
    std::string victim;
    if (variant >= 1) {
      victim = cluster_->OwnerOf(ClusterViewName(rng.Below(kClusterViews)));
      if (!victim.empty()) cluster_->KillNode(victim);
    }

    auto check_pass = [&](const StatusOr<std::vector<ResultTable>>& results,
                          bool faults_possible, const char* when) {
      ++checks_run_;
      if (!results.ok()) {
        if (faults_possible && IsTypedClusterError(results.status().code())) {
          out.push_back(
              LaneCheck{"cluster_batch", true, "", batch[0].ToKeyString()});
        } else {
          out.push_back(LaneCheck{
              "cluster_batch", false,
              std::string(when) + ": " + results.status().ToString(),
              batch[0].ToKeyString()});
        }
        return;
      }
      if (results->size() != batch.size()) {
        out.push_back(LaneCheck{"cluster_batch", false,
                                std::string(when) + ": partial gather (" +
                                    std::to_string(results->size()) + "/" +
                                    std::to_string(batch.size()) + ")",
                                batch[0].ToKeyString()});
        return;
      }
      // Diff against the ORIGINAL queries' oracle: the rewritten view
      // names change routing, not semantics (same fact table).
      for (size_t i = 0; i < batch.size(); ++i) {
        Check("cluster_batch", batch[i], (*results)[i], &out);
      }
    };

    check_pass(cluster_->ExecuteBatch(cbatch), variant >= 1,
               variant >= 1 ? "after node kill" : "healthy cluster");
    if (variant == 2 && !victim.empty()) {
      cluster_->ReviveNode(victim);
      victim.clear();
      check_pass(cluster_->ExecuteBatch(cbatch), false, "after revive");
    }
    // Restore full membership for the next iteration either way.
    if (!victim.empty()) cluster_->ReviveNode(victim);
  }
  return out;
}

}  // namespace vizq::testing
