// ExecutionLanes: runs one generated query through every execution path
// the system has and diffs each against the reference oracle:
//
//   tde_direct      — QueryService over the in-process TDE, all caching,
//                     fusion and adjustment off (the "plain engine" lane).
//   morsel_parallel — the same query through a TDE service with parallel
//                     plans forced on (tiny fractions, tiny morsels):
//                     Exchange producers run as scheduler tasks claiming
//                     dynamic morsels; the result is diffed against the
//                     serial oracle ordering-insensitively.
//   plain_encoding  — the same query over the dataset's forced-kPlain twin
//                     (db_plain): every iteration diffs the encoded
//                     execution path (dictionary/RLE/delta columns, dense
//                     grouping, per-token filters) against fully decoded
//                     storage.
//   derived_hit     — a generalized version of the query is executed and
//                     stored in a fresh IntelligentCache; the original must
//                     then be answered as a (usually derived) hit,
//                     exercising MatchQueries + ApplyMatchPlan roll-up,
//                     residual filtering, AVG-pair and COUNTD derivations.
//   literal_first / literal_replay — the query runs twice through a
//                     literal-cache-only service; the second run must be
//                     served from the literal cache and still be right.
//   fed_mssql       — a simulated single-threaded MSSQL-like backend
//                     (temp tables, TOP n, low externalization threshold).
//   fed_legacy      — a simulated legacy file driver (no temp tables, no
//                     top-n: the client applies order/limit locally).
//   batch_fused / batch_unfused — the whole iteration batch through
//                     QueryService with fusion/analysis/adjustment on vs.
//                     off.
//   deadline        — the query runs against a slow simulated backend
//                     under a tight deadline; the outcome must be either a
//                     fully correct table or kDeadlineExceeded/kAborted —
//                     never a partial-but-OK result.
//   cluster_batch   — the iteration batch, rewritten onto three published
//                     cluster views, scattered across a 3-node simulated
//                     Data Server (consistent-hash routing, per-node
//                     caches over a shared tier) and gathered; diffed
//                     query-by-query against the oracle. Seed-selected
//                     variants kill an owning node first (failover must
//                     re-serve correctly or fail with a typed error —
//                     never silent partials) and then revive it (the
//                     administrative rebalance must leave no stale owner).
//   stale_shed      — the query hits a Frontend under injected overload
//                     (admission cap 0: nothing runs the full pipeline)
//                     over a tiny-TTL cache that is randomly pre-warmed
//                     with the exact query, a generalized superset, or
//                     nothing. Every response must be exact-correct,
//                     correctly-LABELED stale within the serve bound, or
//                     a typed kResourceExhausted shed — never silently
//                     wrong, unboundedly old, or an untyped failure.
//   injected_offby_one — only with inject_offby_one: a copy of the
//                     tde_direct result with one aggregate cell bumped by
//                     one, which the differ must flag (fuzzer self-test).
//
// Federated and literal services persist across queries of one dataset,
// so cross-query cache interactions (key collisions, stale replays) are
// exercised, not just single-query correctness.

#ifndef VIZQUERY_TESTING_LANES_H_
#define VIZQUERY_TESTING_LANES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/dashboard/query_service.h"
#include "src/server/frontend.h"
#include "src/testing/dataset_gen.h"
#include "src/testing/table_diff.h"

namespace vizq::testing {

struct LaneSetupOptions {
  bool include_federated = true;
  bool deadline_lane = true;
  bool stale_shed_lane = true;
  bool cluster_lane = true;
  bool inject_offby_one = false;
  DiffOptions diff;
};

// One lane-vs-oracle verdict. `query_key` is the ToKeyString of the query
// the check ran (lets the fuzzer attribute batch-lane failures).
struct LaneCheck {
  std::string lane;
  bool ok = true;
  std::string detail;
  std::string query_key;
};

// Reference results for one query: with and without order/limit applied.
struct OraclePair {
  ResultTable limited;
  ResultTable unlimited;
};

class ExecutionLanes {
 public:
  ExecutionLanes(Dataset dataset, LaneSetupOptions options);

  // All per-query lanes; `lane_seed` drives randomized per-query choices
  // (derived-hit generalization, deadline budget) deterministically.
  std::vector<LaneCheck> RunQuery(const query::AbstractQuery& q,
                                  uint64_t lane_seed);

  // Batch lanes over the whole iteration batch (positional results).
  // `lane_seed` picks the cluster lane's fault variant (none / node-kill
  // failover / kill-then-revive rebalance) deterministically.
  std::vector<LaneCheck> RunBatch(const std::vector<query::AbstractQuery>& batch,
                                  uint64_t lane_seed = 0);

  // The oracle's answer for `q` (memoized per key string).
  StatusOr<OraclePair> OracleFor(const query::AbstractQuery& q);

  // Executes `q` through the plain-engine lane (used by the metamorphic
  // checks, which combine lane results in known ways).
  StatusOr<ResultTable> ExecuteTruth(const query::AbstractQuery& q);

  const Dataset& dataset() const { return dataset_; }
  int64_t checks_run() const { return checks_run_; }

 private:
  // Diffs `result` against the oracle and appends the verdict.
  void Check(const std::string& lane, const query::AbstractQuery& q,
             const StatusOr<ResultTable>& result, std::vector<LaneCheck>* out);

  Dataset dataset_;
  LaneSetupOptions options_;
  std::shared_ptr<tde::Table> table_;

  dashboard::BatchOptions truth_opts_;
  std::unique_ptr<dashboard::QueryService> truth_service_;
  std::unique_ptr<dashboard::QueryService> morsel_service_;
  std::unique_ptr<dashboard::QueryService> plain_service_;
  std::unique_ptr<dashboard::QueryService> literal_service_;
  std::unique_ptr<dashboard::QueryService> batch_service_;
  std::unique_ptr<dashboard::QueryService> fed_mssql_;
  std::unique_ptr<dashboard::QueryService> fed_legacy_;
  std::unique_ptr<dashboard::QueryService> deadline_service_;
  // stale_shed lane: a tiny-TTL cached service behind a saturated
  // frontend (admission cap 0) that can only answer via the shed ladder.
  std::unique_ptr<dashboard::QueryService> stale_service_;
  std::unique_ptr<server::Frontend> stale_frontend_;
  // cluster_batch lane: a 3-node scatter/gather coordinator hosting the
  // fuzz table under three published views.
  std::unique_ptr<cluster::ClusterCoordinator> cluster_;

  std::map<std::string, OraclePair> oracle_memo_;
  int64_t checks_run_ = 0;
};

// The generalized query the derived-hit lane stores: order/limit and
// filters stripped, filter + COUNTD columns added as dimensions (plus one
// unused dimension when available, forcing a roll-up), AVG decomposed into
// SUM + COUNT, COUNT(*) always present. Exposed for tests.
query::AbstractQuery GeneralizeForDerivedHit(const query::AbstractQuery& q,
                                             const Dataset& ds);

}  // namespace vizq::testing

#endif  // VIZQUERY_TESTING_LANES_H_
