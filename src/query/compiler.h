// The query compiler (§3.1): turns an AbstractQuery over a view (single
// table or star-schema joins) into an executable TQL plan plus the textual
// remote query, applying structural simplifications on the way:
//
//   * join culling — dimension joins contributing no referenced columns
//     are dropped (assuming the view's declared referential integrity);
//   * predicate simplification using domain metadata — filters that keep
//     the whole domain of a column are removed;
//   * externalization of large enumerations — IN-lists beyond the
//     backend's limit become temporary-table joins when the backend
//     supports temp tables, or stay inline otherwise.

#ifndef VIZQUERY_QUERY_COMPILER_H_
#define VIZQUERY_QUERY_COMPILER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/query/abstract_query.h"
#include "src/query/capabilities.h"
#include "src/query/sql_dialect.h"
#include "src/tde/plan/logical.h"
#include "src/tde/storage/database.h"

namespace vizq::query {

// A dimension join of a star-schema view.
struct ViewJoin {
  std::string dim_table;  // table path in the backing database
  std::string fact_key;   // column on the fact table
  std::string dim_key;    // column on the dimension table
  bool referential = true;
};

// A logical view: a fact table plus optional dimension joins. Column names
// across the fact and joined dimensions must be unique (dimension key
// columns excepted — references resolve to the fact side).
struct ViewDefinition {
  std::string name;
  std::string fact_table;
  std::vector<ViewJoin> joins;
};

// A temporary enumeration table the remote session must hold before the
// query can run (§3.1 "externalization of large enumerations with
// temporary secondary structures"; §5.3).
struct TempTableSpec {
  std::string name;           // session-scoped name, e.g. "#in_market_1"
  std::string column;         // single column "v"
  std::string source_column;  // the view column this enumeration filters
  DataType type;
  std::vector<Value> values;
};

struct CompiledQuery {
  // Executable plan against the backing database. Temp tables appear as
  // scans of "temp.<name>"; the executing session must register them.
  tde::LogicalOpPtr plan;
  // Dialect text — the remote query and the literal-cache key.
  std::string sql;
  std::vector<TempTableSpec> temp_tables;
  // True when the backend cannot order/limit, so the caller must apply the
  // query's top-n locally after retrieval.
  bool requires_local_topn = false;

  // Which simplifications fired (observability for tests and benches).
  int culled_joins = 0;
  int dropped_domain_filters = 0;
  bool used_externalization = false;
};

// Per-column domain metadata used for predicate simplification.
using ColumnDomains = std::map<std::string, std::vector<Value>>;

struct CompilerOptions {
  bool cull_joins = true;
  bool simplify_by_domain = true;
  bool externalize_large_in = true;
  // Externalize above this many values even if the backend's hard
  // max_in_list is higher (long inline lists are slow to plan remotely).
  int externalize_threshold = 64;
  // Cluster-node namespace mixed into externalized temp-table names. Two
  // data-server nodes that happen to share a backend must not collide on
  // (or reuse) each other's temp tables — a node only trusts temps it
  // created itself. Empty = single-node naming, unchanged.
  std::string temp_namespace;
};

class QueryCompiler {
 public:
  // `db` provides schema resolution for the view's tables; it must outlive
  // the compiler. `domains` may be null.
  QueryCompiler(ViewDefinition view, Capabilities capabilities,
                SqlDialect dialect, const tde::Database* db);

  // Column -> type map of the whole view (fact + joined dims).
  const std::map<std::string, DataType>& view_columns() const {
    return column_types_;
  }

  StatusOr<CompiledQuery> Compile(const AbstractQuery& q,
                                  const CompilerOptions& options,
                                  const ColumnDomains* domains) const;

  StatusOr<CompiledQuery> Compile(const AbstractQuery& q) const {
    return Compile(q, CompilerOptions(), nullptr);
  }

  const ViewDefinition& view() const { return view_; }
  const Capabilities& capabilities() const { return capabilities_; }
  const SqlDialect& dialect() const { return dialect_; }

 private:
  // Which source owns `column`: -1 = fact, otherwise join index.
  StatusOr<int> ResolveColumn(const std::string& column) const;

  std::string RenderSql(const AbstractQuery& q,
                        const std::vector<int>& needed_joins,
                        const PredicateSet& filters,
                        const std::vector<TempTableSpec>& temps,
                        bool include_topn) const;

  ViewDefinition view_;
  Capabilities capabilities_;
  SqlDialect dialect_;
  const tde::Database* db_;
  std::map<std::string, int> column_owner_;       // column -> -1 | join idx
  std::map<std::string, DataType> column_types_;  // column -> type
};

}  // namespace vizq::query

#endif  // VIZQUERY_QUERY_COMPILER_H_
