// The internal query model (§3.1): queries "express aggregate-select-
// project scenarios" against a view of a single data source. Zones in a
// dashboard, quick-filter domain requests and filter actions all reduce to
// this shape; the query compiler turns it into TQL (for the TDE) or SQL
// text (for remote dialects), and the intelligent cache matches requests
// against stored results at this level.

#ifndef VIZQUERY_QUERY_ABSTRACT_QUERY_H_
#define VIZQUERY_QUERY_ABSTRACT_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/query/predicate.h"

namespace vizq::query {

// One aggregate output.
struct Measure {
  AggFunc func = AggFunc::kCountStar;
  std::string column;  // empty for COUNT(*)
  std::string alias;   // output name; defaults to func(column)

  std::string EffectiveAlias() const;
  std::string ToKeyString() const;
  bool operator==(const Measure& other) const {
    return func == other.func && column == other.column &&
           EffectiveAlias() == other.EffectiveAlias();
  }
};

// Result ordering / top-n.
struct OrderSpec {
  std::string by_alias;  // a dimension name or measure alias
  bool ascending = false;
};

struct AbstractQuery {
  // Identity of the data view the query runs against: data source name +
  // view (logical table) name. Cache matches require both to agree.
  std::string data_source;
  std::string view;

  // Group-by columns. A dimensions-only query (no measures) is a domain
  // query — e.g. the values of a quick filter.
  std::vector<std::string> dimensions;
  std::vector<Measure> measures;
  PredicateSet filters;

  // Optional top-n (order + limit). limit == 0 means "no limit".
  std::vector<OrderSpec> order_by;
  int64_t limit = 0;

  bool has_limit() const { return limit > 0; }

  // Canonicalizes filters and dimension order-insensitive parts. Call
  // after construction; cache keys assume canonical form.
  void Canonicalize();

  // Canonical text: serves as the intelligent-cache descriptor and as a
  // human-readable rendering of the internal query.
  std::string ToKeyString() const;

  // Output column names in order: dimensions then measure aliases.
  std::vector<std::string> OutputNames() const;

  bool operator==(const AbstractQuery& other) const {
    return ToKeyString() == other.ToKeyString();
  }

  // Binary round-trip, used by the persisted cache and distributed tier.
  std::string Serialize() const;
  static StatusOr<AbstractQuery> Deserialize(const std::string& bytes);
};

// --- fluent builder, used heavily by dashboards and tests ---
class QueryBuilder {
 public:
  QueryBuilder(std::string data_source, std::string view);

  QueryBuilder& Dim(std::string column);
  QueryBuilder& Agg(AggFunc func, std::string column, std::string alias = "");
  QueryBuilder& CountAll(std::string alias = "");
  QueryBuilder& FilterIn(std::string column, std::vector<Value> values);
  QueryBuilder& FilterRange(std::string column, std::optional<Value> lower,
                            std::optional<Value> upper);
  QueryBuilder& OrderBy(std::string alias, bool ascending = false);
  QueryBuilder& Limit(int64_t n);

  AbstractQuery Build();

 private:
  AbstractQuery q_;
};

}  // namespace vizq::query

#endif  // VIZQUERY_QUERY_ABSTRACT_QUERY_H_
