#include "src/query/predicate.h"

#include <algorithm>

namespace vizq::query {

namespace {

// -1 / 0 / +1 comparison treating "missing" as the given infinity.
int CompareBound(const std::optional<Value>& a, const std::optional<Value>& b,
                 bool missing_is_low) {
  if (!a.has_value() && !b.has_value()) return 0;
  if (!a.has_value()) return missing_is_low ? -1 : 1;
  if (!b.has_value()) return missing_is_low ? 1 : -1;
  return a->Compare(*b);
}

}  // namespace

ColumnPredicate ColumnPredicate::InSet(std::string column,
                                       std::vector<Value> values) {
  ColumnPredicate p;
  p.column = std::move(column);
  p.kind = Kind::kInSet;
  p.values = std::move(values);
  p.Canonicalize();
  return p;
}

ColumnPredicate ColumnPredicate::Range(std::string column,
                                       std::optional<Value> lower,
                                       std::optional<Value> upper,
                                       bool lower_inclusive,
                                       bool upper_inclusive) {
  ColumnPredicate p;
  p.column = std::move(column);
  p.kind = Kind::kRange;
  p.lower = std::move(lower);
  p.upper = std::move(upper);
  p.lower_inclusive = lower_inclusive;
  p.upper_inclusive = upper_inclusive;
  return p;
}

void ColumnPredicate::Canonicalize() {
  if (kind == Kind::kInSet) {
    std::sort(values.begin(), values.end(),
              [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
    values.erase(std::unique(values.begin(), values.end(),
                             [](const Value& a, const Value& b) {
                               return a.Equals(b);
                             }),
                 values.end());
  }
}

bool ColumnPredicate::Implies(const ColumnPredicate& other) const {
  if (kind == Kind::kInSet && other.kind == Kind::kInSet) {
    // subset test (both canonicalized => sorted)
    return std::includes(
        other.values.begin(), other.values.end(), values.begin(),
        values.end(),
        [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  }
  if (kind == Kind::kRange && other.kind == Kind::kRange) {
    // [l1,u1] implies [l2,u2] iff l2 <= l1 and u1 <= u2 (with inclusivity).
    int lo = CompareBound(lower, other.lower, /*missing_is_low=*/true);
    if (lo < 0) return false;
    if (lo == 0 && lower.has_value() && lower_inclusive &&
        !other.lower_inclusive) {
      return false;
    }
    int hi = CompareBound(upper, other.upper, /*missing_is_low=*/false);
    if (hi > 0) return false;
    if (hi == 0 && upper.has_value() && upper_inclusive &&
        !other.upper_inclusive) {
      return false;
    }
    return true;
  }
  if (kind == Kind::kInSet && other.kind == Kind::kRange) {
    // Every member must fall inside the range.
    for (const Value& v : values) {
      if (other.lower.has_value()) {
        int cmp = v.Compare(*other.lower);
        if (cmp < 0 || (cmp == 0 && !other.lower_inclusive)) return false;
      }
      if (other.upper.has_value()) {
        int cmp = v.Compare(*other.upper);
        if (cmp > 0 || (cmp == 0 && !other.upper_inclusive)) return false;
      }
    }
    return true;
  }
  // Range implying a finite set only when the set lists every value in the
  // range — undecidable without a domain; conservatively no.
  return false;
}

bool ColumnPredicate::EqualsPredicate(const ColumnPredicate& other) const {
  if (column != other.column || kind != other.kind) return false;
  if (kind == Kind::kInSet) {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!values[i].Equals(other.values[i])) return false;
    }
    return true;
  }
  auto bound_eq = [](const std::optional<Value>& a,
                     const std::optional<Value>& b) {
    if (a.has_value() != b.has_value()) return false;
    return !a.has_value() || a->Equals(*b);
  };
  return bound_eq(lower, other.lower) && bound_eq(upper, other.upper) &&
         lower_inclusive == other.lower_inclusive &&
         upper_inclusive == other.upper_inclusive;
}

std::string ColumnPredicate::ToKeyString() const {
  std::string out = column;
  if (kind == Kind::kInSet) {
    out += " in{";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ",";
      out += values[i].ToString();
    }
    out += "}";
  } else {
    out += lower_inclusive ? " [" : " (";
    out += lower.has_value() ? lower->ToString() : "-inf";
    out += ",";
    out += upper.has_value() ? upper->ToString() : "+inf";
    out += upper_inclusive ? "]" : ")";
  }
  return out;
}

tde::ExprPtr ColumnPredicate::ToExpr() const {
  using namespace vizq::tde;
  if (kind == Kind::kInSet) {
    return In(Col(column), values);
  }
  ExprPtr expr;
  if (lower.has_value()) {
    expr = Binary(lower_inclusive ? BinaryOp::kGe : BinaryOp::kGt,
                  Col(column), Lit(*lower));
  }
  if (upper.has_value()) {
    ExprPtr hi = Binary(upper_inclusive ? BinaryOp::kLe : BinaryOp::kLt,
                        Col(column), Lit(*upper));
    expr = expr == nullptr ? hi : And(expr, hi);
  }
  if (expr == nullptr) expr = Lit(true);  // unbounded range
  return expr;
}

void PredicateSet::Normalize() {
  std::vector<ColumnPredicate> out;
  for (ColumnPredicate& p : predicates) {
    p.Canonicalize();
    bool merged = false;
    for (ColumnPredicate& q : out) {
      if (q.column != p.column || q.kind != p.kind) continue;
      if (p.kind == ColumnPredicate::Kind::kInSet) {
        // set intersection
        std::vector<Value> isect;
        std::set_intersection(
            q.values.begin(), q.values.end(), p.values.begin(),
            p.values.end(), std::back_inserter(isect),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
        q.values = std::move(isect);
        merged = true;
        break;
      }
      // range intersection: take tighter bounds
      if (CompareBound(p.lower, q.lower, true) > 0 ||
          (CompareBound(p.lower, q.lower, true) == 0 && !p.lower_inclusive)) {
        q.lower = p.lower;
        q.lower_inclusive = p.lower_inclusive;
      }
      if (CompareBound(p.upper, q.upper, false) < 0 ||
          (CompareBound(p.upper, q.upper, false) == 0 && !p.upper_inclusive)) {
        q.upper = p.upper;
        q.upper_inclusive = p.upper_inclusive;
      }
      merged = true;
      break;
    }
    if (!merged) out.push_back(std::move(p));
  }
  // Canonical order for key strings.
  std::sort(out.begin(), out.end(),
            [](const ColumnPredicate& a, const ColumnPredicate& b) {
              if (a.column != b.column) return a.column < b.column;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  predicates = std::move(out);
}

const ColumnPredicate* PredicateSet::Find(const std::string& column) const {
  for (const ColumnPredicate& p : predicates) {
    if (p.column == column) return &p;
  }
  return nullptr;
}

bool PredicateSet::Implies(const PredicateSet& other) const {
  for (const ColumnPredicate& need : other.predicates) {
    bool satisfied = false;
    for (const ColumnPredicate& have : predicates) {
      if (have.column == need.column && have.Implies(need)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::vector<ColumnPredicate> PredicateSet::ResidualAgainst(
    const PredicateSet& other) const {
  std::vector<ColumnPredicate> residual;
  for (const ColumnPredicate& p : predicates) {
    bool guaranteed = false;
    for (const ColumnPredicate& q : other.predicates) {
      if (q.column == p.column && q.Implies(p)) {
        guaranteed = true;
        break;
      }
    }
    if (!guaranteed) residual.push_back(p);
  }
  return residual;
}

std::string PredicateSet::ToKeyString() const {
  std::string out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) out += " & ";
    out += predicates[i].ToKeyString();
  }
  return out;
}

tde::ExprPtr PredicateSet::ToExpr() const {
  tde::ExprPtr expr;
  for (const ColumnPredicate& p : predicates) {
    tde::ExprPtr e = p.ToExpr();
    expr = expr == nullptr ? e : tde::And(expr, e);
  }
  return expr;
}

}  // namespace vizq::query
