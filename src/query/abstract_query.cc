#include "src/query/abstract_query.h"

#include <algorithm>

#include "src/common/binary_io.h"

namespace vizq::query {

std::string Measure::EffectiveAlias() const {
  if (!alias.empty()) return alias;
  std::string out = AggFuncToString(func);
  out += "(";
  out += column;
  out += ")";
  return out;
}

std::string Measure::ToKeyString() const {
  std::string out = AggFuncToString(func);
  out += "(";
  out += column.empty() ? "*" : column;
  out += ") as ";
  out += EffectiveAlias();
  return out;
}

void AbstractQuery::Canonicalize() { filters.Normalize(); }

std::string AbstractQuery::ToKeyString() const {
  std::string out = "q{src=" + data_source + ";view=" + view + ";dims=";
  // Dimensions are semantically a set for matching purposes, but output
  // order matters for rendering; the key sorts them.
  std::vector<std::string> dims = dimensions;
  std::sort(dims.begin(), dims.end());
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out += ",";
    out += dims[i];
  }
  out += ";aggs=";
  std::vector<std::string> aggs;
  aggs.reserve(measures.size());
  for (const Measure& m : measures) aggs.push_back(m.ToKeyString());
  std::sort(aggs.begin(), aggs.end());
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ",";
    out += aggs[i];
  }
  out += ";where=" + filters.ToKeyString();
  if (!order_by.empty()) {
    out += ";order=";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ",";
      out += order_by[i].by_alias;
      out += order_by[i].ascending ? "+" : "-";
    }
  }
  if (limit > 0) out += ";limit=" + std::to_string(limit);
  out += "}";
  return out;
}

std::vector<std::string> AbstractQuery::OutputNames() const {
  std::vector<std::string> out = dimensions;
  for (const Measure& m : measures) out.push_back(m.EffectiveAlias());
  return out;
}

std::string AbstractQuery::Serialize() const {
  BinaryWriter w;
  w.Str(data_source);
  w.Str(view);
  w.U32(static_cast<uint32_t>(dimensions.size()));
  for (const std::string& d : dimensions) w.Str(d);
  w.U32(static_cast<uint32_t>(measures.size()));
  for (const Measure& m : measures) {
    w.U8(static_cast<uint8_t>(m.func));
    w.Str(m.column);
    w.Str(m.alias);
  }
  w.U32(static_cast<uint32_t>(filters.predicates.size()));
  for (const ColumnPredicate& p : filters.predicates) {
    w.Str(p.column);
    w.U8(static_cast<uint8_t>(p.kind));
    w.U32(static_cast<uint32_t>(p.values.size()));
    for (const Value& v : p.values) w.Val(v);
    w.U8(p.lower.has_value() ? 1 : 0);
    if (p.lower.has_value()) w.Val(*p.lower);
    w.U8(p.lower_inclusive ? 1 : 0);
    w.U8(p.upper.has_value() ? 1 : 0);
    if (p.upper.has_value()) w.Val(*p.upper);
    w.U8(p.upper_inclusive ? 1 : 0);
  }
  w.U32(static_cast<uint32_t>(order_by.size()));
  for (const OrderSpec& o : order_by) {
    w.Str(o.by_alias);
    w.U8(o.ascending ? 1 : 0);
  }
  w.I64(limit);
  return w.TakeBytes();
}

StatusOr<AbstractQuery> AbstractQuery::Deserialize(const std::string& bytes) {
  BinaryReader r(bytes);
  AbstractQuery q;
  auto fail = [] { return DataLoss("AbstractQuery: truncated"); };
  if (!r.Str(&q.data_source) || !r.Str(&q.view)) return fail();
  uint32_t n;
  if (!r.U32(&n)) return fail();
  for (uint32_t i = 0; i < n; ++i) {
    std::string d;
    if (!r.Str(&d)) return fail();
    q.dimensions.push_back(std::move(d));
  }
  if (!r.U32(&n)) return fail();
  for (uint32_t i = 0; i < n; ++i) {
    Measure m;
    uint8_t func;
    if (!r.U8(&func) || !r.Str(&m.column) || !r.Str(&m.alias)) return fail();
    m.func = static_cast<AggFunc>(func);
    q.measures.push_back(std::move(m));
  }
  if (!r.U32(&n)) return fail();
  for (uint32_t i = 0; i < n; ++i) {
    ColumnPredicate p;
    uint8_t kind, flag;
    uint32_t nv;
    if (!r.Str(&p.column) || !r.U8(&kind) || !r.U32(&nv)) return fail();
    p.kind = static_cast<ColumnPredicate::Kind>(kind);
    for (uint32_t v = 0; v < nv; ++v) {
      Value val;
      if (!r.Val(&val)) return fail();
      p.values.push_back(std::move(val));
    }
    if (!r.U8(&flag)) return fail();
    if (flag != 0) {
      Value val;
      if (!r.Val(&val)) return fail();
      p.lower = std::move(val);
    }
    if (!r.U8(&flag)) return fail();
    p.lower_inclusive = flag != 0;
    if (!r.U8(&flag)) return fail();
    if (flag != 0) {
      Value val;
      if (!r.Val(&val)) return fail();
      p.upper = std::move(val);
    }
    if (!r.U8(&flag)) return fail();
    p.upper_inclusive = flag != 0;
    q.filters.predicates.push_back(std::move(p));
  }
  if (!r.U32(&n)) return fail();
  for (uint32_t i = 0; i < n; ++i) {
    OrderSpec o;
    uint8_t asc;
    if (!r.Str(&o.by_alias) || !r.U8(&asc)) return fail();
    o.ascending = asc != 0;
    q.order_by.push_back(std::move(o));
  }
  if (!r.I64(&q.limit)) return fail();
  if (!r.AtEnd()) return DataLoss("AbstractQuery: trailing bytes");
  return q;
}

QueryBuilder::QueryBuilder(std::string data_source, std::string view) {
  q_.data_source = std::move(data_source);
  q_.view = std::move(view);
}

QueryBuilder& QueryBuilder::Dim(std::string column) {
  q_.dimensions.push_back(std::move(column));
  return *this;
}

QueryBuilder& QueryBuilder::Agg(AggFunc func, std::string column,
                                std::string alias) {
  q_.measures.push_back(Measure{func, std::move(column), std::move(alias)});
  return *this;
}

QueryBuilder& QueryBuilder::CountAll(std::string alias) {
  q_.measures.push_back(
      Measure{AggFunc::kCountStar, "", std::move(alias)});
  return *this;
}

QueryBuilder& QueryBuilder::FilterIn(std::string column,
                                     std::vector<Value> values) {
  q_.filters.predicates.push_back(
      ColumnPredicate::InSet(std::move(column), std::move(values)));
  return *this;
}

QueryBuilder& QueryBuilder::FilterRange(std::string column,
                                        std::optional<Value> lower,
                                        std::optional<Value> upper) {
  q_.filters.predicates.push_back(ColumnPredicate::Range(
      std::move(column), std::move(lower), std::move(upper)));
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(std::string alias, bool ascending) {
  q_.order_by.push_back(OrderSpec{std::move(alias), ascending});
  return *this;
}

QueryBuilder& QueryBuilder::Limit(int64_t n) {
  q_.limit = n;
  return *this;
}

AbstractQuery QueryBuilder::Build() {
  q_.Canonicalize();
  return q_;
}

}  // namespace vizq::query
