// Data-source capability descriptors (§3.1: "the query compiler
// incorporates information about ... overall capabilities of the data
// source, such as support for subqueries, temporary table creation and
// indexing"; §3.5 catalogues the concurrency-relevant architecture
// differences).

#ifndef VIZQUERY_QUERY_CAPABILITIES_H_
#define VIZQUERY_QUERY_CAPABILITIES_H_

#include <string>

namespace vizq::query {

struct Capabilities {
  std::string name = "generic";

  // --- functional ---
  bool supports_temp_tables = true;
  bool supports_top_n = true;      // else results are fetched unlimited and
                                   // the client applies top-n locally
  bool supports_subqueries = true;
  int max_in_list = 1000;          // larger enumerations must be
                                   // externalized or the query rejected

  // --- concurrency architecture (§3.5) ---
  int max_connections = 16;        // server-imposed connection cap
  int max_concurrent_queries = 16; // server-side admission throttle
  bool single_thread_per_query = true;  // "many architectures use a single
                                        // thread per query"
  bool supports_parallel_plans = false; // SQL-Server/TDE-style engines

  // Common presets used by tests, benches and examples.
  static Capabilities Tde();               // in-process column store
  static Capabilities SingleThreadedSql(); // classic row store, 1 thread/query
  static Capabilities ParallelWarehouse(); // parallel plans, generous limits
  static Capabilities ThrottledCloud();    // low concurrent-query admission
  static Capabilities LegacyFileDriver();  // no temp tables, no top-n
};

}  // namespace vizq::query

#endif  // VIZQUERY_QUERY_CAPABILITIES_H_
