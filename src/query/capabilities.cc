#include "src/query/capabilities.h"

namespace vizq::query {

Capabilities Capabilities::Tde() {
  Capabilities c;
  c.name = "tde";
  c.supports_temp_tables = true;
  c.supports_top_n = true;
  c.max_in_list = 100000;
  c.max_connections = 64;
  c.max_concurrent_queries = 64;
  c.single_thread_per_query = false;
  c.supports_parallel_plans = true;
  return c;
}

Capabilities Capabilities::SingleThreadedSql() {
  Capabilities c;
  c.name = "sql-basic";
  c.supports_temp_tables = true;
  c.supports_top_n = true;
  c.max_in_list = 1000;
  c.max_connections = 32;
  c.max_concurrent_queries = 32;
  c.single_thread_per_query = true;
  c.supports_parallel_plans = false;
  return c;
}

Capabilities Capabilities::ParallelWarehouse() {
  Capabilities c;
  c.name = "warehouse";
  c.supports_temp_tables = true;
  c.supports_top_n = true;
  c.max_in_list = 10000;
  c.max_connections = 16;
  c.max_concurrent_queries = 8;
  c.single_thread_per_query = false;
  c.supports_parallel_plans = true;
  return c;
}

Capabilities Capabilities::ThrottledCloud() {
  Capabilities c;
  c.name = "cloud-throttled";
  c.supports_temp_tables = false;
  c.supports_top_n = true;
  c.max_in_list = 256;
  c.max_connections = 4;
  c.max_concurrent_queries = 2;
  c.single_thread_per_query = true;
  c.supports_parallel_plans = false;
  return c;
}

Capabilities Capabilities::LegacyFileDriver() {
  Capabilities c;
  c.name = "legacy-file";
  c.supports_temp_tables = false;
  c.supports_top_n = false;
  c.supports_subqueries = false;
  c.max_in_list = 64;
  c.max_connections = 1;
  c.max_concurrent_queries = 1;
  c.single_thread_per_query = true;
  c.supports_parallel_plans = false;
  return c;
}

}  // namespace vizq::query
