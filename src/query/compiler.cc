#include "src/query/compiler.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/common/rng.h"

namespace vizq::query {

using tde::LogicalOpPtr;

QueryCompiler::QueryCompiler(ViewDefinition view, Capabilities capabilities,
                             SqlDialect dialect, const tde::Database* db)
    : view_(std::move(view)),
      capabilities_(std::move(capabilities)),
      dialect_(std::move(dialect)),
      db_(db) {
  // Build the column ownership/type maps. Fact columns win name clashes.
  auto add_table = [&](const std::string& path, int owner) {
    auto table = db_->GetTable(path);
    if (!table.ok()) return;
    for (const tde::ColumnInfo& ci : (*table)->schema()) {
      if (column_owner_.find(ci.name) == column_owner_.end()) {
        column_owner_[ci.name] = owner;
        column_types_[ci.name] = ci.type;
      }
    }
  };
  add_table(view_.fact_table, -1);
  for (size_t j = 0; j < view_.joins.size(); ++j) {
    add_table(view_.joins[j].dim_table, static_cast<int>(j));
  }
}

StatusOr<int> QueryCompiler::ResolveColumn(const std::string& column) const {
  auto it = column_owner_.find(column);
  if (it == column_owner_.end()) {
    return NotFound("column '" + column + "' not in view '" + view_.name +
                    "'");
  }
  return it->second;
}

StatusOr<CompiledQuery> QueryCompiler::Compile(
    const AbstractQuery& q, const CompilerOptions& options,
    const ColumnDomains* domains) const {
  CompiledQuery out;

  // --- 1. predicate simplification using domains (§3.1) ---
  PredicateSet filters = q.filters;
  filters.Normalize();
  if (options.simplify_by_domain && domains != nullptr) {
    std::vector<ColumnPredicate> kept;
    for (ColumnPredicate& p : filters.predicates) {
      auto dit = domains->find(p.column);
      bool covers_domain = false;
      if (dit != domains->end() && !dit->second.empty()) {
        ColumnPredicate domain_pred =
            ColumnPredicate::InSet(p.column, dit->second);
        // Filter keeping every domain value filters nothing.
        covers_domain = domain_pred.Implies(p);
      }
      if (covers_domain) {
        ++out.dropped_domain_filters;
      } else {
        kept.push_back(std::move(p));
      }
    }
    filters.predicates = std::move(kept);
  }

  // --- 2. determine referenced columns and needed joins ---
  std::set<std::string> referenced;
  for (const std::string& d : q.dimensions) referenced.insert(d);
  for (const Measure& m : q.measures) {
    if (!m.column.empty()) referenced.insert(m.column);
  }
  for (const ColumnPredicate& p : filters.predicates) {
    referenced.insert(p.column);
  }
  std::set<int> needed_joins_set;
  for (const std::string& c : referenced) {
    VIZQ_ASSIGN_OR_RETURN(int owner, ResolveColumn(c));
    if (owner >= 0) needed_joins_set.insert(owner);
  }
  std::vector<int> needed_joins;
  if (options.cull_joins) {
    needed_joins.assign(needed_joins_set.begin(), needed_joins_set.end());
    out.culled_joins =
        static_cast<int>(view_.joins.size() - needed_joins.size());
  } else {
    for (size_t j = 0; j < view_.joins.size(); ++j) {
      needed_joins.push_back(static_cast<int>(j));
    }
  }

  // --- 3. externalization of large enumerations (§3.1) ---
  std::vector<TempTableSpec> temps;
  std::vector<ColumnPredicate> inline_preds;
  std::vector<std::pair<std::string, std::string>> temp_joins;  // col, temp
  int threshold =
      std::min(options.externalize_threshold, capabilities_.max_in_list);
  for (const ColumnPredicate& p : filters.predicates) {
    bool externalize =
        options.externalize_large_in &&
        capabilities_.supports_temp_tables &&
        p.kind == ColumnPredicate::Kind::kInSet &&
        static_cast<int>(p.values.size()) > threshold;
    if (!externalize &&
        p.kind == ColumnPredicate::Kind::kInSet &&
        static_cast<int>(p.values.size()) > capabilities_.max_in_list) {
      return Unimplemented(
          "IN-list of " + std::to_string(p.values.size()) +
          " values exceeds backend limit and temp tables are unavailable");
    }
    if (externalize) {
      TempTableSpec spec;
      // Content-addressed name: sessions reuse temp tables by name (and the
      // pool routes queries toward connections that already hold them), so
      // the name must change whenever the enumerated set does — otherwise a
      // later query with a different IN-list on the same column silently
      // joins against the earlier query's values.
      uint64_t content_hash = p.values.size();
      for (const Value& v : p.values) {
        content_hash = HashCombine(content_hash, v.Hash());
      }
      // Node-scoped naming: the namespace participates in the hash, so
      // two cluster nodes sharing one backend derive disjoint temp names
      // for identical IN-lists (a node must not join against a table
      // another node created and may drop at any time).
      for (unsigned char c : options.temp_namespace) {
        content_hash = HashCombine(content_hash, c);
      }
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(content_hash));
      spec.name = dialect_.temp_table_prefix + "in_" + p.column + "_" + hex;
      spec.column = "v";
      spec.source_column = p.column;
      auto tit = column_types_.find(p.column);
      spec.type = tit != column_types_.end() ? tit->second : DataType::Int64();
      spec.values = p.values;
      temp_joins.emplace_back(p.column, spec.name);
      temps.push_back(std::move(spec));
      out.used_externalization = true;
    } else {
      inline_preds.push_back(p);
    }
  }

  // --- 4. build the TQL plan ---
  using namespace vizq::tde;
  LogicalOpPtr plan = MakeScan(view_.fact_table);
  for (int j : needed_joins) {
    const ViewJoin& join = view_.joins[j];
    plan = MakeJoin(JoinType::kInner,
                    {{Col(join.fact_key), Col(join.dim_key)}}, plan,
                    MakeScan(join.dim_table), join.referential);
  }
  for (const auto& [column, temp_name] : temp_joins) {
    // The externalized enumeration acts as a semijoin filter. Values are
    // distinct by construction, so an inner join adds no duplicates.
    plan = MakeJoin(JoinType::kInner, {{Col(column), Col("v")}}, plan,
                    MakeScan(std::string(tde::kTempSchema) + "." + temp_name),
                    /*referential=*/false);
  }
  PredicateSet inline_set;
  inline_set.predicates = inline_preds;
  if (!inline_set.predicates.empty()) {
    plan = MakeSelect(inline_set.ToExpr(), plan);
  }

  std::vector<NamedExpr> groups;
  for (const std::string& d : q.dimensions) {
    groups.push_back(NamedExpr{d, Col(d)});
  }
  std::vector<LogicalAgg> aggs;
  for (const Measure& m : q.measures) {
    LogicalAgg agg;
    agg.func = m.func;
    agg.name = m.EffectiveAlias();
    if (!m.column.empty()) agg.arg = Col(m.column);
    aggs.push_back(std::move(agg));
  }
  if (groups.empty() && aggs.empty()) {
    return InvalidArgument("query has neither dimensions nor measures");
  }
  if (aggs.empty()) {
    // Domain query: distinct dimension values.
    std::vector<NamedExpr> projections = groups;
    plan = MakeDistinct(MakeProject(std::move(projections), plan));
  } else {
    plan = MakeAggregate(std::move(groups), std::move(aggs), plan);
  }

  bool topn_remote = capabilities_.supports_top_n;
  if (!q.order_by.empty() || q.has_limit()) {
    std::vector<LogicalSortKey> keys;
    for (const OrderSpec& o : q.order_by) {
      keys.push_back(LogicalSortKey{Col(o.by_alias), o.ascending});
    }
    if (topn_remote) {
      if (q.has_limit()) {
        plan = MakeTopN(q.limit, std::move(keys), plan);
      } else if (!keys.empty()) {
        plan = MakeOrder(std::move(keys), plan);
      }
    } else {
      out.requires_local_topn = q.has_limit() || !q.order_by.empty();
    }
  }

  out.plan = std::move(plan);
  out.temp_tables = std::move(temps);
  out.sql = RenderSql(q, needed_joins, inline_set, out.temp_tables,
                      topn_remote);
  return out;
}

std::string QueryCompiler::RenderSql(const AbstractQuery& q,
                                     const std::vector<int>& needed_joins,
                                     const PredicateSet& filters,
                                     const std::vector<TempTableSpec>& temps,
                                     bool include_topn) const {
  const SqlDialect& d = dialect_;
  std::string sql = "SELECT ";
  if (include_topn && q.has_limit() &&
      d.limit_style == SqlDialect::LimitStyle::kTop) {
    sql += "TOP " + std::to_string(q.limit) + " ";
  }
  bool first = true;
  auto add_item = [&](const std::string& item) {
    if (!first) sql += ", ";
    sql += item;
    first = false;
  };
  for (const std::string& dim : q.dimensions) {
    add_item(d.QuoteIdentifier(dim));
  }
  for (const Measure& m : q.measures) {
    std::string item;
    switch (m.func) {
      case AggFunc::kCountStar:
        item = "COUNT(*)";
        break;
      case AggFunc::kCountDistinct:
        item = "COUNT(DISTINCT " + d.QuoteIdentifier(m.column) + ")";
        break;
      default:
        item = std::string(AggFuncToString(m.func)) + "(" +
               d.QuoteIdentifier(m.column) + ")";
        break;
    }
    item += " AS " + d.QuoteIdentifier(m.EffectiveAlias());
    add_item(item);
  }
  if (q.dimensions.empty() && q.measures.empty()) sql += "1";

  sql += " FROM " + d.QuoteIdentifier(view_.fact_table);
  for (int j : needed_joins) {
    const ViewJoin& join = view_.joins[j];
    sql += " INNER JOIN " + d.QuoteIdentifier(join.dim_table) + " ON " +
           d.QuoteIdentifier(view_.fact_table) + "." +
           d.QuoteIdentifier(join.fact_key) + " = " +
           d.QuoteIdentifier(join.dim_table) + "." +
           d.QuoteIdentifier(join.dim_key);
  }
  for (const TempTableSpec& t : temps) {
    // Temp names are already dialect-prefixed; quote-free by convention.
    sql += " INNER JOIN " + t.name + " ON " +
           d.QuoteIdentifier(t.source_column) + " = " + t.name + ".v";
  }

  bool first_pred = true;
  auto add_pred = [&](const std::string& text) {
    sql += first_pred ? " WHERE " : " AND ";
    sql += text;
    first_pred = false;
  };
  for (const ColumnPredicate& p : filters.predicates) {
    bool as_date = false;
    auto tit = column_types_.find(p.column);
    if (tit != column_types_.end() && tit->second.kind == TypeKind::kDate) {
      as_date = true;
    }
    if (p.kind == ColumnPredicate::Kind::kInSet) {
      std::string text = d.QuoteIdentifier(p.column) + " IN (";
      for (size_t i = 0; i < p.values.size(); ++i) {
        if (i > 0) text += ", ";
        text += d.RenderLiteral(p.values[i], as_date);
      }
      text += ")";
      add_pred(text);
    } else {
      if (p.lower.has_value()) {
        add_pred(d.QuoteIdentifier(p.column) +
                 (p.lower_inclusive ? " >= " : " > ") +
                 d.RenderLiteral(*p.lower, as_date));
      }
      if (p.upper.has_value()) {
        add_pred(d.QuoteIdentifier(p.column) +
                 (p.upper_inclusive ? " <= " : " < ") +
                 d.RenderLiteral(*p.upper, as_date));
      }
    }
  }

  if (!q.dimensions.empty() && !q.measures.empty()) {
    sql += " GROUP BY ";
    for (size_t i = 0; i < q.dimensions.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += d.QuoteIdentifier(q.dimensions[i]);
    }
  }
  if (q.dimensions.empty() == false && q.measures.empty()) {
    // Domain query renders as SELECT DISTINCT.
    sql.replace(0, 6, "SELECT DISTINCT");
  }

  if (include_topn && !q.order_by.empty()) {
    sql += " ORDER BY ";
    for (size_t i = 0; i < q.order_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += d.QuoteIdentifier(q.order_by[i].by_alias);
      sql += q.order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (include_topn && q.has_limit()) {
    switch (d.limit_style) {
      case SqlDialect::LimitStyle::kLimit:
        sql += " LIMIT " + std::to_string(q.limit);
        break;
      case SqlDialect::LimitStyle::kFetchFirst:
        sql += " FETCH FIRST " + std::to_string(q.limit) + " ROWS ONLY";
        break;
      case SqlDialect::LimitStyle::kTop:
        break;  // rendered up front
      case SqlDialect::LimitStyle::kNone:
        break;
    }
  }
  return sql;
}

}  // namespace vizq::query
