// SQL dialect rendering (§3.1): "a simplified query is subsequently
// translated into a textual representation that matches the dialect of the
// underlying data source. While most supported data sources speak a variant
// of SQL ... each has their own exceptions to the standard."
//
// The rendered text is what travels to the remote connection and what keys
// the literal query cache; the simulated backends execute the equivalent
// compiled plan.

#ifndef VIZQUERY_QUERY_SQL_DIALECT_H_
#define VIZQUERY_QUERY_SQL_DIALECT_H_

#include <string>

#include "src/common/value.h"

namespace vizq::query {

struct SqlDialect {
  std::string name = "ansi";

  enum class LimitStyle : uint8_t { kLimit, kTop, kFetchFirst, kNone };

  char quote_open = '"';
  char quote_close = '"';
  LimitStyle limit_style = LimitStyle::kLimit;
  // Some dialects lack a boolean type and compare to 1/0.
  bool boolean_literals = true;
  // Temp table name prefix ("#" on MSSQL-likes, "tmp_" elsewhere).
  std::string temp_table_prefix = "#";
  // Dialects differ in date literal syntax.
  std::string date_literal_prefix = "DATE '";
  std::string date_literal_suffix = "'";

  std::string QuoteIdentifier(const std::string& ident) const;
  std::string RenderLiteral(const Value& v, bool as_date = false) const;

  static SqlDialect Ansi();
  static SqlDialect MssqlLike();   // TOP n, # temp tables
  static SqlDialect MysqlLike();   // backtick quoting, LIMIT
  static SqlDialect BigWarehouse();// FETCH FIRST, no booleans
};

}  // namespace vizq::query

#endif  // VIZQUERY_QUERY_SQL_DIALECT_H_
