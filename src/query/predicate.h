// Structured per-column predicates.
//
// The query processor keeps filters in a structured conjunction-of-column-
// constraints form rather than as free expressions, because the intelligent
// cache's applicability "is limited by proving capabilities" (§3.2):
// implication between IN-sets and ranges is decidable and fast, implication
// between arbitrary expressions is not. Dashboard interactions (quick
// filters, filter actions, range sliders) all produce exactly this shape.

#ifndef VIZQUERY_QUERY_PREDICATE_H_
#define VIZQUERY_QUERY_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/tde/exec/expression.h"

namespace vizq::query {

// A constraint on a single column: either a value set (IN) or a range.
struct ColumnPredicate {
  enum class Kind : uint8_t { kInSet, kRange };

  std::string column;
  Kind kind = Kind::kInSet;

  // kInSet
  std::vector<Value> values;

  // kRange: missing bound = unbounded.
  std::optional<Value> lower;
  bool lower_inclusive = true;
  std::optional<Value> upper;
  bool upper_inclusive = true;

  static ColumnPredicate InSet(std::string column, std::vector<Value> values);
  static ColumnPredicate Range(std::string column, std::optional<Value> lower,
                               std::optional<Value> upper,
                               bool lower_inclusive = true,
                               bool upper_inclusive = true);

  // True when every row satisfying *this also satisfies `other` (same
  // column assumed; callers match columns first).
  bool Implies(const ColumnPredicate& other) const;

  // Structural equality (after canonicalization of the value set order).
  bool EqualsPredicate(const ColumnPredicate& other) const;

  // Canonical rendering used in cache keys; value sets sorted.
  std::string ToKeyString() const;

  // Expression form, for execution (bound later against a schema).
  tde::ExprPtr ToExpr() const;

  // Sorts `values` (canonical form).
  void Canonicalize();
};

// A conjunction of column predicates (at most one per column after
// normalization; Normalize() intersects duplicates).
struct PredicateSet {
  std::vector<ColumnPredicate> predicates;

  // Merges duplicate-column predicates by intersection where possible
  // (set∩set, range∩range); returns false when an intersection cannot be
  // represented (mixed set/range stays as two entries — still a valid
  // conjunction, just weaker for proving).
  void Normalize();

  // Finds the predicate on `column`, or nullptr.
  const ColumnPredicate* Find(const std::string& column) const;

  // True when this conjunction implies `other`: every predicate of `other`
  // is implied by some predicate here on the same column.
  bool Implies(const PredicateSet& other) const;

  // Predicates of *this* that are not already guaranteed by `other` —
  // i.e. the residual filtering needed when reusing a result computed
  // under `other`. (Valid when this->Implies(other).)
  std::vector<ColumnPredicate> ResidualAgainst(const PredicateSet& other) const;

  std::string ToKeyString() const;

  // AND of all predicate expressions; nullptr when empty.
  tde::ExprPtr ToExpr() const;
};

}  // namespace vizq::query

#endif  // VIZQUERY_QUERY_PREDICATE_H_
