#include "src/query/sql_dialect.h"

#include "src/common/str_util.h"

namespace vizq::query {

std::string SqlDialect::QuoteIdentifier(const std::string& ident) const {
  std::string out;
  out += quote_open;
  for (char ch : ident) {
    out += ch;
    if (ch == quote_close) out += ch;  // double embedded quotes
  }
  out += quote_close;
  return out;
}

std::string SqlDialect::RenderLiteral(const Value& v, bool as_date) const {
  if (v.is_null()) return "NULL";
  if (v.is_bool()) {
    if (boolean_literals) return v.bool_value() ? "TRUE" : "FALSE";
    return v.bool_value() ? "1" : "0";
  }
  if (v.is_string()) {
    std::string out = "'";
    for (char ch : v.string_value()) {
      out += ch;
      if (ch == '\'') out += '\'';
    }
    out += "'";
    return out;
  }
  if (as_date && v.is_int()) {
    return date_literal_prefix + FormatDateDays(v.int_value()) +
           date_literal_suffix;
  }
  return v.ToString();
}

SqlDialect SqlDialect::Ansi() { return SqlDialect(); }

SqlDialect SqlDialect::MssqlLike() {
  SqlDialect d;
  d.name = "mssql";
  d.quote_open = '[';
  d.quote_close = ']';
  d.limit_style = LimitStyle::kTop;
  d.boolean_literals = false;
  d.temp_table_prefix = "#";
  return d;
}

SqlDialect SqlDialect::MysqlLike() {
  SqlDialect d;
  d.name = "mysql";
  d.quote_open = '`';
  d.quote_close = '`';
  d.limit_style = LimitStyle::kLimit;
  d.temp_table_prefix = "tmp_";
  return d;
}

SqlDialect SqlDialect::BigWarehouse() {
  SqlDialect d;
  d.name = "warehouse";
  d.limit_style = LimitStyle::kFetchFirst;
  d.boolean_literals = false;
  d.temp_table_prefix = "tmp_";
  return d;
}

}  // namespace vizq::query
