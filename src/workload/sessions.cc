#include "src/workload/sessions.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/workload/faa_generator.h"
#include "src/workload/flights_dashboards.h"

namespace vizq::workload {

const char* SessionActionName(SessionAction a) {
  switch (a) {
    case SessionAction::kOpen: return "open";
    case SessionAction::kFilter: return "filter";
    case SessionAction::kDrill: return "drill";
    case SessionAction::kQuickFilter: return "quick_filter";
    case SessionAction::kLeave: return "leave";
  }
  return "?";
}

double SampleThinkMs(Rng& rng, double mean_ms) {
  if (mean_ms <= 0) return 0;
  // Inverse CDF of Exp(1/mean). 1 - u keeps the argument in (0, 1].
  double u = rng.NextDouble();
  return -mean_ms * std::log(1.0 - u);
}

namespace {

std::vector<Value> StringValues(const std::vector<std::string>& in) {
  std::vector<Value> out;
  out.reserve(in.size());
  for (const std::string& s : in) out.push_back(Value(s));
  return out;
}

// The states list is index-aligned with airports and repeats; the
// selectable domain wants each state once, first-seen order (stable
// across runs).
std::vector<Value> UniqueStates() {
  std::vector<Value> out;
  std::set<std::string> seen;
  for (const std::string& s : FaaAirportStates()) {
    if (seen.insert(s).second) out.push_back(Value(s));
  }
  return out;
}

}  // namespace

std::vector<Workbook> BuildWorkbookSet(const std::string& data_source,
                                       int n) {
  const std::vector<std::string>& carriers = FaaCarrierCodes();
  const std::vector<std::string>& airports = FaaAirportCodes();
  std::vector<Value> carrier_vals = StringValues(carriers);
  std::vector<Value> state_vals = UniqueStates();
  std::vector<Value> weekday_vals;
  for (int64_t d = 0; d < 7; ++d) weekday_vals.push_back(Value(d));
  // Markets as the generator builds them: "ORIGIN-DEST" over the airport
  // codes. A fixed stride keeps the domain deterministic and mostly
  // non-empty in generated data.
  std::vector<Value> market_vals;
  for (size_t j = 0; j + 1 < airports.size() && market_vals.size() < 16;
       j += 2) {
    market_vals.push_back(Value(airports[j] + "-" + airports[j + 1]));
  }

  std::vector<Workbook> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    Workbook wb;
    const bool fig1 = (i % 2) == 0;
    wb.dash = fig1 ? BuildFigure1Dashboard(data_source)
                   : BuildFigure2Dashboard(data_source);
    wb.name = (fig1 ? "fig1-wb" : "fig2-wb") + std::to_string(i);
    if (fig1) {
      // Distinct baseline per workbook: the carrier quick filter keeps
      // all-but-one carrier, rotating which one is dropped, so every
      // workbook's zone queries carry distinct predicates (their own
      // cache keyspace) while sessions of one workbook share entries.
      std::vector<Value> subset;
      for (size_t c = 0; c < carriers.size(); ++c) {
        if (c != static_cast<size_t>(i) % carriers.size()) {
          subset.push_back(Value(carriers[c]));
        }
      }
      wb.base_state.SetQuickFilter("carrier", std::move(subset));
      wb.selectables.push_back(
          Selectable{"OriginMap", "origin_state", state_vals, false});
      wb.selectables.push_back(
          Selectable{"DestMap", "dest_state", state_vals, false});
      wb.selectables.push_back(
          Selectable{"CarrierFilter", "carrier", carrier_vals, true});
      wb.selectables.push_back(
          Selectable{"WeekdayFilter", "weekday", weekday_vals, true});
    } else {
      // Fig. 2 has no quick filters; rotate a baseline Market selection
      // instead (filters Carrier + AirlineName via the dashboard action).
      if (!market_vals.empty()) {
        wb.base_state.Select(
            "Market", "market",
            {market_vals[static_cast<size_t>(i) % market_vals.size()]});
      }
      wb.selectables.push_back(
          Selectable{"Market", "market", market_vals, false});
      wb.selectables.push_back(
          Selectable{"Carrier", "carrier", carrier_vals, false});
    }
    out.push_back(std::move(wb));
  }
  return out;
}

Session::Session(uint64_t id, const Workbook* workbook,
                 SessionProfile profile, uint64_t seed)
    : id_(id),
      workbook_(workbook),
      profile_(profile),
      rng_(HashCombine(seed, id)),
      state_(workbook->base_state) {}

std::optional<Session::Step> Session::Next() {
  if (done_) return std::nullopt;
  if (steps_taken_ == 0) {
    Step s;
    s.action = SessionAction::kOpen;
    s.think_ms = 0;
    s.dirty_zones = workbook_->dash.QueryZoneNames();
    ++steps_taken_;
    return s;
  }
  if (steps_taken_ >= profile_.max_steps) {
    done_ = true;
    return std::nullopt;
  }
  double think = SampleThinkMs(rng_, profile_.think_mean_ms);
  double wf = std::max(0.0, profile_.p_filter);
  double wd = std::max(0.0, profile_.p_drill);
  double wq = std::max(0.0, profile_.p_quick_filter);
  double wl = std::max(0.0, profile_.p_leave);
  double total = wf + wd + wq + wl;
  if (total <= 0) {
    done_ = true;
    return std::nullopt;
  }
  double u = rng_.NextDouble() * total;
  Step s;
  if (u < wf) {
    s = MakeFilterStep(/*drill=*/false);
  } else if (u < wf + wd) {
    s = MakeFilterStep(/*drill=*/true);
  } else if (u < wf + wd + wq) {
    s = MakeQuickFilterStep();
  } else {
    done_ = true;
    return std::nullopt;
  }
  s.think_ms = think;
  ++steps_taken_;
  return s;
}

Session::Step Session::MakeFilterStep(bool drill) {
  std::vector<int> sources;
  bool have_quick = false;
  for (size_t i = 0; i < workbook_->selectables.size(); ++i) {
    const Selectable& sel = workbook_->selectables[i];
    if (sel.is_quick_filter) {
      have_quick = true;
    } else if (!sel.candidates.empty()) {
      sources.push_back(static_cast<int>(i));
    }
  }
  if (sources.empty()) {
    if (have_quick) return MakeQuickFilterStep();
    Step s;  // no interaction points at all: plain refresh
    s.action = drill ? SessionAction::kDrill : SessionAction::kFilter;
    s.dirty_zones = workbook_->dash.QueryZoneNames();
    return s;
  }
  const Selectable& sel =
      workbook_->selectables[sources[rng_.Below(sources.size())]];
  size_t count =
      drill ? 1
            : 1 + rng_.Below(std::min<uint64_t>(3, sel.candidates.size()));
  size_t start = rng_.Below(sel.candidates.size());
  std::vector<Value> values;
  for (size_t k = 0; k < count; ++k) {
    values.push_back(sel.candidates[(start + k) % sel.candidates.size()]);
  }
  state_.Select(sel.zone, sel.column, values);
  Step s;
  s.action = drill ? SessionAction::kDrill : SessionAction::kFilter;
  s.zone = sel.zone;
  s.column = sel.column;
  s.dirty_zones = workbook_->dash.ActionTargets(sel.zone);
  if (s.dirty_zones.empty()) {
    s.dirty_zones = workbook_->dash.QueryZoneNames();
  }
  return s;
}

Session::Step Session::MakeQuickFilterStep() {
  std::vector<int> quick;
  for (size_t i = 0; i < workbook_->selectables.size(); ++i) {
    const Selectable& sel = workbook_->selectables[i];
    if (sel.is_quick_filter && !sel.candidates.empty()) {
      quick.push_back(static_cast<int>(i));
    }
  }
  if (quick.empty()) return MakeFilterStep(/*drill=*/false);
  const Selectable& sel =
      workbook_->selectables[quick[rng_.Below(quick.size())]];
  size_t count =
      1 + rng_.Below(std::min<uint64_t>(4, sel.candidates.size()));
  size_t start = rng_.Below(sel.candidates.size());
  std::vector<Value> values;
  for (size_t k = 0; k < count; ++k) {
    values.push_back(sel.candidates[(start + k) % sel.candidates.size()]);
  }
  state_.SetQuickFilter(sel.column, values);
  Step s;
  s.action = SessionAction::kQuickFilter;
  s.column = sel.column;
  s.dirty_zones = workbook_->dash.QuickFilterTargets(sel.column);
  if (s.dirty_zones.empty()) {
    s.dirty_zones = workbook_->dash.QueryZoneNames();
  }
  return s;
}

StatusOr<std::vector<query::AbstractQuery>> Session::BuildBatch(
    const Step& step) const {
  std::vector<query::AbstractQuery> batch;
  batch.reserve(step.dirty_zones.size());
  for (const std::string& zone_name : step.dirty_zones) {
    const dashboard::Zone* zone = workbook_->dash.FindZone(zone_name);
    if (zone == nullptr || !zone->has_query()) continue;
    VIZQ_ASSIGN_OR_RETURN(query::AbstractQuery q,
                          workbook_->dash.BuildZoneQuery(zone_name, state_));
    batch.push_back(std::move(q));
  }
  return batch;
}

StatusOr<std::vector<query::AbstractQuery>> Session::BuildBatch(
    const ExecContext& ctx, const Step& step) const {
  PhaseScope prep(ctx.timeline(), Phase::kClientPrep);
  return BuildBatch(step);
}

}  // namespace vizq::workload
