#include "src/workload/faa_generator.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/str_util.h"

namespace vizq::workload {

namespace {

const std::vector<std::string>& CarrierCodesImpl() {
  static const auto* codes = new std::vector<std::string>{
      "AA", "DL", "UA", "WN", "B6", "AS", "HA", "F9", "NK", "VX",
      "OO", "EV", "MQ", "US"};
  return *codes;
}

const std::vector<std::string>& AirlineNamesImpl() {
  static const auto* names = new std::vector<std::string>{
      "American Airlines", "Delta Air Lines",  "United Airlines",
      "Southwest Airlines", "JetBlue Airways", "Alaska Airlines",
      "Hawaiian Airlines",  "Frontier Airlines", "Spirit Airlines",
      "Virgin America",     "SkyWest Airlines", "ExpressJet",
      "Envoy Air",          "US Airways"};
  return *names;
}

const std::vector<std::string>& AirportCodesImpl() {
  static const auto* codes = new std::vector<std::string>{
      "ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "LAS", "MCO",
      "EWR", "CLT", "PHX", "IAH", "MIA", "BOS", "MSP", "FLL", "DTW", "PHL",
      "LGA", "BWI", "SLC", "SAN", "HNL", "OGG", "DCA", "MDW", "TPA", "PDX"};
  return *codes;
}

const std::vector<std::string>& AirportStatesImpl() {
  static const auto* states = new std::vector<std::string>{
      "GA", "CA", "IL", "TX", "CO", "NY", "CA", "WA", "NV", "FL",
      "NJ", "NC", "AZ", "TX", "FL", "MA", "MN", "FL", "MI", "PA",
      "NY", "MD", "UT", "CA", "HI", "HI", "DC", "IL", "FL", "OR"};
  return *states;
}

struct FlightRow {
  int carrier;
  int64_t fl_date;
  int weekday;
  int dep_hour;
  int origin;
  int dest;
  int64_t distance;
  int64_t dep_delay;
  int64_t arr_delay;
  bool cancelled;
};

std::vector<FlightRow> GenerateRows(const FaaOptions& options) {
  Rng rng(options.seed);
  int carriers = std::min<int>(options.num_carriers,
                               static_cast<int>(CarrierCodesImpl().size()));
  int airports = std::min<int>(options.num_airports,
                               static_cast<int>(AirportCodesImpl().size()));
  // 2014-01-01 as the era start.
  int64_t base_date = *ParseDateDays("2014-01-01");

  // Skew: big carriers and big airports dominate.
  ZipfDistribution carrier_dist(carriers, 0.9);
  ZipfDistribution airport_dist(airports, 0.8);

  std::vector<FlightRow> rows;
  rows.reserve(options.num_flights);
  for (int64_t i = 0; i < options.num_flights; ++i) {
    FlightRow row;
    row.carrier = static_cast<int>(carrier_dist.Sample(rng));
    row.fl_date = base_date + rng.Range(0, options.num_days - 1);
    row.weekday = DayOfWeek(row.fl_date);
    // Departures concentrate in daytime banks.
    int hour_bank = static_cast<int>(rng.Below(3));
    row.dep_hour = hour_bank == 0   ? static_cast<int>(rng.Range(6, 10))
                   : hour_bank == 1 ? static_cast<int>(rng.Range(11, 16))
                                    : static_cast<int>(rng.Range(17, 22));
    row.origin = static_cast<int>(airport_dist.Sample(rng));
    do {
      row.dest = static_cast<int>(airport_dist.Sample(rng));
    } while (row.dest == row.origin);
    row.distance = 150 + rng.Range(0, 2500);
    // Delay: mostly early/on time, heavy right tail; worse on Fridays
    // (weekday 4) and in the evening.
    int64_t base = rng.Range(-10, 15);
    if (rng.Chance(0.18)) base += rng.Range(10, 90);
    if (rng.Chance(0.03)) base += rng.Range(60, 300);
    if (row.weekday == 4) base += rng.Range(0, 12);
    if (row.dep_hour >= 17) base += rng.Range(0, 15);
    row.dep_delay = base;
    row.arr_delay = base + rng.Range(-15, 20);
    row.cancelled = rng.Chance(row.weekday == 6 ? 0.013 : 0.022);
    rows.push_back(row);
  }

  // Sort per the requested order.
  if (!options.sort_by.empty()) {
    auto key_of = [](const FlightRow& r, const std::string& name) -> int64_t {
      if (name == "carrier") return r.carrier;
      if (name == "fl_date") return r.fl_date;
      if (name == "weekday") return r.weekday;
      if (name == "dep_hour") return r.dep_hour;
      if (name == "origin") return r.origin;
      if (name == "dest") return r.dest;
      return 0;
    };
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const FlightRow& a, const FlightRow& b) {
                       for (const std::string& k : options.sort_by) {
                         // Carrier codes sort by code string to match the
                         // declared table order.
                         if (k == "carrier") {
                           const std::string& ca = CarrierCodesImpl()[a.carrier];
                           const std::string& cb = CarrierCodesImpl()[b.carrier];
                           if (ca != cb) return ca < cb;
                           continue;
                         }
                         int64_t ka = key_of(a, k);
                         int64_t kb = key_of(b, k);
                         if (ka != kb) return ka < kb;
                       }
                       return false;
                     });
  }
  return rows;
}

}  // namespace

const std::vector<std::string>& FaaCarrierCodes() { return CarrierCodesImpl(); }
const std::vector<std::string>& FaaAirlineNames() { return AirlineNamesImpl(); }
const std::vector<std::string>& FaaAirportCodes() { return AirportCodesImpl(); }
const std::vector<std::string>& FaaAirportStates() { return AirportStatesImpl(); }

StatusOr<std::shared_ptr<tde::Database>> GenerateFaaDatabase(
    const FaaOptions& options) {
  using namespace vizq::tde;
  std::vector<FlightRow> rows = GenerateRows(options);

  std::vector<ColumnInfo> schema = {
      {"carrier", DataType::String()},
      {"fl_date", DataType::Date()},
      {"weekday", DataType::Int64()},
      {"dep_hour", DataType::Int64()},
      {"origin", DataType::String()},
      {"dest", DataType::String()},
      {"origin_state", DataType::String()},
      {"dest_state", DataType::String()},
      {"market", DataType::String()},
      {"distance", DataType::Int64()},
      {"dep_delay", DataType::Int64()},
      {"arr_delay", DataType::Int64()},
      {"cancelled", DataType::Bool()},
  };
  TableBuilder builder("flights", schema);
  const auto& codes = CarrierCodesImpl();
  const auto& airports = AirportCodesImpl();
  const auto& states = AirportStatesImpl();
  for (const FlightRow& r : rows) {
    std::string market = airports[r.origin] + "-" + airports[r.dest];
    VIZQ_RETURN_IF_ERROR(builder.AddRow({
        Value(codes[r.carrier]),
        Value(r.fl_date),
        Value(static_cast<int64_t>(r.weekday)),
        Value(static_cast<int64_t>(r.dep_hour)),
        Value(airports[r.origin]),
        Value(airports[r.dest]),
        Value(states[r.origin]),
        Value(states[r.dest]),
        Value(std::move(market)),
        Value(r.distance),
        Value(r.dep_delay),
        Value(r.arr_delay),
        Value(r.cancelled),
    }));
  }
  if (!options.sort_by.empty()) {
    std::vector<int> sort_cols;
    for (const std::string& name : options.sort_by) {
      for (size_t c = 0; c < schema.size(); ++c) {
        if (schema[c].name == name) {
          sort_cols.push_back(static_cast<int>(c));
        }
      }
    }
    builder.DeclareSorted(sort_cols);
  }
  VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<Table> flights, builder.Finish());

  TableBuilder carriers("carriers", {{"code", DataType::String()},
                                     {"airline_name", DataType::String()}});
  int ncarriers = std::min<int>(options.num_carriers,
                                static_cast<int>(codes.size()));
  for (int c = 0; c < ncarriers; ++c) {
    VIZQ_RETURN_IF_ERROR(
        carriers.AddRow({Value(codes[c]), Value(AirlineNamesImpl()[c])}));
  }
  VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<Table> carriers_table,
                        carriers.Finish());

  auto db = std::make_shared<Database>("faa");
  VIZQ_RETURN_IF_ERROR(db->AddTable(std::move(flights)));
  VIZQ_RETURN_IF_ERROR(db->AddTable(std::move(carriers_table)));
  return db;
}

StatusOr<std::string> GenerateFaaCsv(const FaaOptions& options) {
  std::vector<FlightRow> rows = GenerateRows(options);
  const auto& codes = CarrierCodesImpl();
  const auto& airports = AirportCodesImpl();
  const auto& states = AirportStatesImpl();
  std::string out =
      "carrier,fl_date,weekday,dep_hour,origin,dest,origin_state,"
      "dest_state,market,distance,dep_delay,arr_delay,cancelled\n";
  for (const FlightRow& r : rows) {
    out += codes[r.carrier];
    out += ',';
    out += FormatDateDays(r.fl_date);
    out += ',';
    out += std::to_string(r.weekday);
    out += ',';
    out += std::to_string(r.dep_hour);
    out += ',';
    out += airports[r.origin];
    out += ',';
    out += airports[r.dest];
    out += ',';
    out += states[r.origin];
    out += ',';
    out += states[r.dest];
    out += ',';
    out += airports[r.origin] + "-" + airports[r.dest];
    out += ',';
    out += std::to_string(r.distance);
    out += ',';
    out += std::to_string(r.dep_delay);
    out += ',';
    out += std::to_string(r.arr_delay);
    out += ',';
    out += r.cancelled ? "true" : "false";
    out += '\n';
  }
  return out;
}

}  // namespace vizq::workload
