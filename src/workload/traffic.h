// Multi-user traffic generation (§3.2): "In a multi-user scenario, it is
// even more common to get identical or similar requests, since different
// users are working with the same shared dashboards. An extreme example of
// this is seen in Tableau Public ... The user-generated traffic is
// saturated by initial load requests, as many viewers just read content
// with the initial state of a dashboard and make further interactions
// rarely."

#ifndef VIZQUERY_WORKLOAD_TRAFFIC_H_
#define VIZQUERY_WORKLOAD_TRAFFIC_H_

#include <string>
#include <vector>

#include "src/dashboard/dashboard.h"

namespace vizq::workload {

// One step of a user's session.
struct TrafficEvent {
  enum class Kind : uint8_t {
    kInitialLoad,    // render the whole dashboard with default state
    kSelect,         // select a value in a source zone (filter action)
    kQuickFilter,    // change a quick-filter selection
  };
  Kind kind = Kind::kInitialLoad;
  int user = 0;
  std::string zone;      // kSelect
  std::string column;    // kSelect / kQuickFilter
  std::vector<Value> values;
};

struct TrafficOptions {
  int num_users = 50;
  // Probability a user interacts at all after the initial load
  // (Tableau-Public-style traffic keeps this small).
  double interaction_probability = 0.1;
  // Interactions per interacting user.
  int max_interactions = 3;
  uint64_t seed = 99;
};

// Generates a session trace for `dashboard`. Selection values are drawn
// from `selectable`: (zone, column, candidate values) triples the caller
// derives from the dashboard's actions and data.
struct Selectable {
  std::string zone;
  std::string column;
  std::vector<Value> candidates;
  bool is_quick_filter = false;
};

std::vector<TrafficEvent> GenerateTraffic(
    const TrafficOptions& options, const std::vector<Selectable>& selectable);

}  // namespace vizq::workload

#endif  // VIZQUERY_WORKLOAD_TRAFFIC_H_
