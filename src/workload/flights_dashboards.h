// The paper's example dashboards over the FAA data.
//
// Figure 1: two state maps (origins / destinations) that also act as
// filters, plus airline, destination-airport, cancellations-by-weekday and
// delay-by-hour charts, a record-count readout and quick filters.
//
// Figure 2: three zones — Market, Carrier (top 5 by flights, with a
// flights-per-day floor) and Airline Name — linked by two filter actions:
// Market filters Carrier and Airline Name; Carrier filters Airline Name.

#ifndef VIZQUERY_WORKLOAD_FLIGHTS_DASHBOARDS_H_
#define VIZQUERY_WORKLOAD_FLIGHTS_DASHBOARDS_H_

#include "src/dashboard/dashboard.h"
#include "src/query/compiler.h"

namespace vizq::workload {

// The view name both dashboards query ("flights" joined to "carriers").
inline constexpr char kFlightsView[] = "flights_star";

// The star view definition registering flights ⋈ carriers.
query::ViewDefinition FlightsStarView();

// Builds the Fig. 1 dashboard ("FAA Flights On-Time").
dashboard::Dashboard BuildFigure1Dashboard(const std::string& data_source);

// Builds the Fig. 2 dashboard (Market / Carrier / Airline Name).
dashboard::Dashboard BuildFigure2Dashboard(const std::string& data_source);

}  // namespace vizq::workload

#endif  // VIZQUERY_WORKLOAD_FLIGHTS_DASHBOARDS_H_
