#include "src/workload/flights_dashboards.h"

namespace vizq::workload {

using dashboard::Dashboard;
using dashboard::FilterAction;
using dashboard::QuickFilterBinding;
using dashboard::Zone;
using dashboard::ZoneKind;
using query::AbstractQuery;
using query::QueryBuilder;

query::ViewDefinition FlightsStarView() {
  query::ViewDefinition view;
  view.name = kFlightsView;
  view.fact_table = "flights";
  view.joins.push_back(
      query::ViewJoin{"carriers", "carrier", "code", /*referential=*/true});
  return view;
}

Dashboard BuildFigure1Dashboard(const std::string& data_source) {
  Dashboard dash("faa-on-time");

  auto viz = [&](std::string name, AbstractQuery q) {
    Zone z;
    z.name = std::move(name);
    z.kind = ZoneKind::kViz;
    z.base = std::move(q);
    (void)dash.AddZone(std::move(z));
  };

  // Upper maps: flight origins / destinations by state. Each is annotated
  // with average delays and flights per day (avg delay + count measures).
  viz("OriginMap", QueryBuilder(data_source, kFlightsView)
                       .Dim("origin_state")
                       .CountAll("flights")
                       .Agg(AggFunc::kAvg, "arr_delay", "avg_delay")
                       .Build());
  viz("DestMap", QueryBuilder(data_source, kFlightsView)
                     .Dim("dest_state")
                     .CountAll("flights")
                     .Agg(AggFunc::kAvg, "arr_delay", "avg_delay")
                     .Build());

  // Bottom charts.
  viz("Airlines", QueryBuilder(data_source, kFlightsView)
                      .Dim("airline_name")
                      .CountAll("flights")
                      .Agg(AggFunc::kAvg, "arr_delay", "avg_delay")
                      .Build());
  viz("DestAirports", QueryBuilder(data_source, kFlightsView)
                          .Dim("dest")
                          .CountAll("flights")
                          .OrderBy("flights", /*ascending=*/false)
                          .Limit(10)
                          .Build());
  viz("CancellationsByWeekday",
      QueryBuilder(data_source, kFlightsView)
          .Dim("weekday")
          .CountAll("cancelled_flights")
          .FilterIn("cancelled", {Value(true)})
          .Build());
  viz("DelayByHour", QueryBuilder(data_source, kFlightsView)
                         .Dim("dep_hour")
                         .Agg(AggFunc::kAvg, "arr_delay", "avg_delay")
                         .CountAll("flights")
                         .Build());
  viz("TotalCount",
      QueryBuilder(data_source, kFlightsView).CountAll("records").Build());

  // Right-hand side: quick filters (their domains are queried once).
  Zone carrier_filter;
  carrier_filter.name = "CarrierFilter";
  carrier_filter.kind = ZoneKind::kQuickFilter;
  carrier_filter.filter_column = "carrier";
  carrier_filter.base =
      QueryBuilder(data_source, kFlightsView).Dim("carrier").Build();
  (void)dash.AddZone(std::move(carrier_filter));

  Zone weekday_filter;
  weekday_filter.name = "WeekdayFilter";
  weekday_filter.kind = ZoneKind::kQuickFilter;
  weekday_filter.filter_column = "weekday";
  weekday_filter.base =
      QueryBuilder(data_source, kFlightsView).Dim("weekday").Build();
  (void)dash.AddZone(std::move(weekday_filter));

  // Static legend (no queries).
  Zone legend;
  legend.name = "Legend";
  legend.kind = ZoneKind::kStatic;
  (void)dash.AddZone(std::move(legend));

  dash.AddQuickFilter(QuickFilterBinding{"carrier", {}});
  dash.AddQuickFilter(QuickFilterBinding{"weekday", {}});

  // The maps act as origin/destination selectors for the bottom charts.
  const std::vector<std::string> bottom = {
      "Airlines", "DestAirports", "CancellationsByWeekday", "DelayByHour",
      "TotalCount"};
  dash.AddAction(FilterAction{"OriginMap", "origin_state", bottom});
  dash.AddAction(FilterAction{"DestMap", "dest_state", bottom});
  return dash;
}

Dashboard BuildFigure2Dashboard(const std::string& data_source) {
  Dashboard dash("market-carrier-airline");

  Zone market;
  market.name = "Market";
  market.base = QueryBuilder(data_source, kFlightsView)
                    .Dim("market")
                    .CountAll("flights")
                    .OrderBy("flights", /*ascending=*/false)
                    .Limit(12)
                    .Build();
  (void)dash.AddZone(std::move(market));

  // "The Carrier zone is filtered to the top 5 carriers, based upon number
  // of flights, that have more than 1,400 Flights/Day." Our synthetic data
  // is smaller, so the floor is a count floor with the same shape.
  Zone carrier;
  carrier.name = "Carrier";
  carrier.base = QueryBuilder(data_source, kFlightsView)
                     .Dim("carrier")
                     .CountAll("flights")
                     .OrderBy("flights", /*ascending=*/false)
                     .Limit(5)
                     .Build();
  (void)dash.AddZone(std::move(carrier));

  Zone airline;
  airline.name = "AirlineName";
  airline.base = QueryBuilder(data_source, kFlightsView)
                     .Dim("airline_name")
                     .CountAll("flights")
                     .Build();
  (void)dash.AddZone(std::move(airline));

  // "(1) selecting a field in the Market zone will filter the results in
  // the Carrier and Airline Name zones, and (2) selecting a carrier in the
  // Carrier zone will filter the Airline Name zone."
  dash.AddAction(
      FilterAction{"Market", "market", {"Carrier", "AirlineName"}});
  dash.AddAction(FilterAction{"Carrier", "carrier", {"AirlineName"}});
  return dash;
}

}  // namespace vizq::workload
