#include "src/workload/traffic.h"

#include "src/common/rng.h"

namespace vizq::workload {

std::vector<TrafficEvent> GenerateTraffic(
    const TrafficOptions& options, const std::vector<Selectable>& selectable) {
  Rng rng(options.seed);
  std::vector<TrafficEvent> events;
  for (int user = 0; user < options.num_users; ++user) {
    TrafficEvent load;
    load.kind = TrafficEvent::Kind::kInitialLoad;
    load.user = user;
    events.push_back(std::move(load));

    if (selectable.empty() || !rng.Chance(options.interaction_probability)) {
      continue;
    }
    int interactions =
        static_cast<int>(rng.Range(1, options.max_interactions));
    for (int i = 0; i < interactions; ++i) {
      const Selectable& s = selectable[rng.Below(selectable.size())];
      TrafficEvent e;
      e.kind = s.is_quick_filter ? TrafficEvent::Kind::kQuickFilter
                                 : TrafficEvent::Kind::kSelect;
      e.user = user;
      e.zone = s.zone;
      e.column = s.column;
      // Pick 1..3 candidate values.
      int k = static_cast<int>(rng.Range(1, 3));
      for (int v = 0; v < k && !s.candidates.empty(); ++v) {
        e.values.push_back(s.candidates[rng.Below(s.candidates.size())]);
      }
      events.push_back(std::move(e));
    }
  }
  return events;
}

}  // namespace vizq::workload
