// Closed-loop interactive sessions for the traffic harness (ROADMAP item
// 3, grounded in IDEBench's think-time/workflow benchmark shape).
//
// A Session walks a dashboard-open -> filter -> drill navigation graph
// with exponential think time between steps:
//
//     kOpen ──► explore ──► kFilter       (select values in a source zone)
//                  │   ╲──► kDrill        (narrow a selection to one value)
//                  │   ╲──► kQuickFilter  (change a quick-filter subset)
//                  └──────► kLeave
//
// Workbooks give sessions a shared keyspace with Zipfian popularity: each
// workbook is one of the paper's FAA dashboards (Fig. 1 / Fig. 2) plus a
// per-workbook baseline interaction state, so two workbooks over the same
// layout still have distinct cache keys — the way distinct published
// workbooks do — while sessions of ONE workbook share each other's cache
// entries.
//
// Everything is deterministic per seed (Rng/ZipfDistribution), so tests
// can assert exact navigation traces and popularity histograms.

#ifndef VIZQUERY_WORKLOAD_SESSIONS_H_
#define VIZQUERY_WORKLOAD_SESSIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/rng.h"
#include "src/dashboard/dashboard.h"
#include "src/workload/traffic.h"

namespace vizq::workload {

enum class SessionAction : uint8_t {
  kOpen,         // initial load: every query zone renders
  kFilter,       // filter action: select 1-3 values in a source zone
  kDrill,        // drill: narrow a source-zone selection to one value
  kQuickFilter,  // change a quick-filter selection subset
  kLeave,        // session over
};
const char* SessionActionName(SessionAction a);

// Transition weights out of the exploring state (normalized at use) and
// the think-time distribution between steps.
struct SessionProfile {
  double think_mean_ms = 800.0;  // exponential think-time mean
  double p_filter = 0.40;
  double p_drill = 0.22;
  double p_quick_filter = 0.18;
  double p_leave = 0.20;
  // Hard cap on steps (including the open); the navigation graph leaves
  // by itself with probability p_leave per step before that.
  int max_steps = 10;
};

// One published workbook: a dashboard plus the baseline interaction state
// every session of this workbook starts from.
struct Workbook {
  std::string name;
  dashboard::Dashboard dash{""};
  dashboard::InteractionState base_state;
  // Candidate interaction points (filter-action sources and quick
  // filters) with their value domains; what Session samples from.
  std::vector<Selectable> selectables;
};

// Builds `n` workbooks over the FAA dashboards, alternating the Fig. 1
// and Fig. 2 layouts, each with a distinct baseline quick-filter /
// selection subset (distinct cache keyspaces per workbook).
std::vector<Workbook> BuildWorkbookSet(const std::string& data_source,
                                       int n);

// Exponential think time with the given mean (inverse-CDF sampling).
double SampleThinkMs(Rng& rng, double mean_ms);

class Session {
 public:
  struct Step {
    SessionAction action = SessionAction::kOpen;
    double think_ms = 0;  // pause that preceded this step
    // Zones whose queries must rerun (the action's dirty set).
    std::vector<std::string> dirty_zones;
    std::string zone;    // source zone (kFilter/kDrill)
    std::string column;  // filtered column
  };

  // `workbook` must outlive the session.
  Session(uint64_t id, const Workbook* workbook, SessionProfile profile,
          uint64_t seed);

  // Advances the navigation graph; nullopt once the user has left (or the
  // step cap is reached). Deterministic per seed.
  std::optional<Step> Next();

  // The dirty zones' queries under the session's current interaction
  // state (what the harness submits as one batch).
  StatusOr<std::vector<query::AbstractQuery>> BuildBatch(
      const Step& step) const;

  // Same, charging the construction time to the request's client_prep
  // phase (the client-side share of end-to-end latency the timeline
  // attributes; see src/common/phase_timeline.h). A context without a
  // timeline degrades to the plain overload.
  StatusOr<std::vector<query::AbstractQuery>> BuildBatch(
      const ExecContext& ctx, const Step& step) const;

  uint64_t id() const { return id_; }
  int steps_taken() const { return steps_taken_; }
  bool done() const { return done_; }
  const dashboard::InteractionState& state() const { return state_; }

 private:
  Step MakeFilterStep(bool drill);
  Step MakeQuickFilterStep();

  uint64_t id_;
  const Workbook* workbook_;
  SessionProfile profile_;
  Rng rng_;
  dashboard::InteractionState state_;
  int steps_taken_ = 0;
  bool done_ = false;
};

}  // namespace vizq::workload

#endif  // VIZQUERY_WORKLOAD_SESSIONS_H_
