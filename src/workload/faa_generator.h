// Synthetic FAA Flights On-Time data (the paper's running example, Figs.
// 1-2). Deterministic for a given seed; cardinalities, skew and delay
// distributions are shaped like the real data set: a few dominant
// carriers, Zipf-distributed market popularity, mostly-small delays with a
// heavy tail, ~2% cancellations, weekday and hour-of-day effects.
//
// Schema of Extract.flights (sorted by carrier, fl_date by default, which
// the TDE records and the §4.2.3 range-partitioning rule exploits):
//   carrier        string   operating carrier code
//   fl_date        date
//   weekday        int64    0 = Monday .. 6 = Sunday (materialized)
//   dep_hour       int64    scheduled departure hour 0..23
//   origin         string   airport code
//   dest           string
//   origin_state   string
//   dest_state     string
//   market         string   "ORIGIN-DEST"
//   distance       int64    miles
//   dep_delay      int64    minutes (negative = early)
//   arr_delay      int64
//   cancelled      bool
//
// Extract.carriers is the airline dimension: carrier -> airline_name.

#ifndef VIZQUERY_WORKLOAD_FAA_GENERATOR_H_
#define VIZQUERY_WORKLOAD_FAA_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/tde/storage/database.h"

namespace vizq::workload {

struct FaaOptions {
  int64_t num_flights = 100000;
  uint64_t seed = 2015;
  int num_carriers = 10;   // <= 14
  int num_airports = 24;   // <= 30
  int num_days = 365;
  // Sort order of the fact table (column names); empty = unsorted.
  std::vector<std::string> sort_by = {"carrier", "fl_date"};
};

// Builds a database holding Extract.flights and Extract.carriers.
StatusOr<std::shared_ptr<tde::Database>> GenerateFaaDatabase(
    const FaaOptions& options);

// The same data as CSV text (header + rows), for the shadow-extract
// pipeline and examples.
StatusOr<std::string> GenerateFaaCsv(const FaaOptions& options);

// Carrier codes / airline names used by the generator (index-aligned).
const std::vector<std::string>& FaaCarrierCodes();
const std::vector<std::string>& FaaAirlineNames();
const std::vector<std::string>& FaaAirportCodes();
const std::vector<std::string>& FaaAirportStates();

}  // namespace vizq::workload

#endif  // VIZQUERY_WORKLOAD_FAA_GENERATOR_H_
