#include "src/cache/persistence.h"

#include <fstream>

#include "src/common/binary_io.h"

namespace vizq::cache {

namespace {
// v1 ('VQCH'): entries only. v2 ('VQC2') appends both caches' hit/miss
// statistics — including the per-MissReason breakdown — so a restored
// cache reports the same hit rates it had when saved. v1 files remain
// readable (stats restore as zero).
constexpr uint32_t kMagicV1 = 0x56514348;  // 'VQCH'
constexpr uint32_t kMagicV2 = 0x56514332;  // 'VQC2'
}  // namespace

std::string SerializeCaches(const IntelligentCache& intelligent,
                            const LiteralCache& literal) {
  BinaryWriter w;
  w.U32(kMagicV2);
  auto iq = intelligent.TakeSnapshot();
  w.U32(static_cast<uint32_t>(iq.size()));
  for (const IntelligentCache::Snapshot& s : iq) {
    w.Str(s.descriptor.Serialize());
    w.Str(s.result.Serialize());
    w.F64(s.eval_cost_ms);
  }
  auto lq = literal.TakeSnapshot();
  w.U32(static_cast<uint32_t>(lq.size()));
  for (const LiteralCache::Snapshot& s : lq) {
    w.Str(s.query_text);
    w.Str(s.data_source);
    w.Str(s.result.Serialize());
    w.F64(s.eval_cost_ms);
  }
  // v2 stats block. The miss-reason array is length-prefixed so adding
  // reasons stays forward-compatible within v2.
  CacheStats is = intelligent.stats();
  w.I64(is.exact_hits);
  w.I64(is.derived_hits);
  w.I64(is.misses);
  w.I64(is.evictions);
  w.I64(is.inserts);
  w.I64(is.invalidations);
  w.U32(static_cast<uint32_t>(is.miss_reasons.size()));
  for (int64_t count : is.miss_reasons) w.I64(count);
  w.I64(literal.hits());
  w.I64(literal.misses());
  w.I64(literal.invalidations());
  return w.TakeBytes();
}

Status DeserializeCaches(const std::string& bytes,
                         IntelligentCache* intelligent,
                         LiteralCache* literal) {
  BinaryReader r(bytes);
  uint32_t magic;
  if (!r.U32(&magic) || (magic != kMagicV1 && magic != kMagicV2)) {
    return DataLoss("not a VizQuery cache file");
  }
  const bool has_stats = magic == kMagicV2;
  uint32_t n;
  if (!r.U32(&n)) return DataLoss("truncated cache file");
  std::vector<IntelligentCache::Snapshot> iq;
  for (uint32_t i = 0; i < n; ++i) {
    std::string desc_bytes, result_bytes;
    double cost;
    if (!r.Str(&desc_bytes) || !r.Str(&result_bytes) || !r.F64(&cost)) {
      return DataLoss("truncated intelligent-cache entry");
    }
    VIZQ_ASSIGN_OR_RETURN(query::AbstractQuery desc,
                          query::AbstractQuery::Deserialize(desc_bytes));
    VIZQ_ASSIGN_OR_RETURN(ResultTable result,
                          ResultTable::Deserialize(result_bytes));
    iq.push_back(
        IntelligentCache::Snapshot{std::move(desc), std::move(result), cost});
  }
  if (!r.U32(&n)) return DataLoss("truncated cache file");
  std::vector<LiteralCache::Snapshot> lq;
  for (uint32_t i = 0; i < n; ++i) {
    LiteralCache::Snapshot s;
    std::string result_bytes;
    if (!r.Str(&s.query_text) || !r.Str(&s.data_source) ||
        !r.Str(&result_bytes) || !r.F64(&s.eval_cost_ms)) {
      return DataLoss("truncated literal-cache entry");
    }
    VIZQ_ASSIGN_OR_RETURN(s.result, ResultTable::Deserialize(result_bytes));
    lq.push_back(std::move(s));
  }
  CacheStats istats;
  int64_t lit_hits = 0, lit_misses = 0, lit_invalidations = 0;
  if (has_stats) {
    uint32_t num_reasons;
    if (!r.I64(&istats.exact_hits) || !r.I64(&istats.derived_hits) ||
        !r.I64(&istats.misses) || !r.I64(&istats.evictions) ||
        !r.I64(&istats.inserts) || !r.I64(&istats.invalidations) ||
        !r.U32(&num_reasons)) {
      return DataLoss("truncated cache-stats block");
    }
    for (uint32_t i = 0; i < num_reasons; ++i) {
      int64_t count;
      if (!r.I64(&count)) return DataLoss("truncated miss-reason counts");
      // A newer writer may know more reasons than we do; drop the extras.
      if (i < istats.miss_reasons.size()) istats.miss_reasons[i] = count;
    }
    if (!r.I64(&lit_hits) || !r.I64(&lit_misses) ||
        !r.I64(&lit_invalidations)) {
      return DataLoss("truncated literal-cache stats");
    }
  }
  if (!r.AtEnd()) return DataLoss("trailing bytes in cache file");
  if (intelligent != nullptr) {
    intelligent->Restore(std::move(iq));
    // Restore() inserts through Put(), which counts insert attempts; the
    // saved counters overwrite that so round-trips are exact.
    if (has_stats) intelligent->SetStatsForRestore(istats);
  }
  if (literal != nullptr) {
    literal->Restore(std::move(lq));
    if (has_stats) {
      literal->SetStatsForRestore(lit_hits, lit_misses, lit_invalidations);
    }
  }
  return OkStatus();
}

Status SaveCachesToFile(const IntelligentCache& intelligent,
                        const LiteralCache& literal,
                        const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return InvalidArgument("cannot open '" + path + "' for writing");
  std::string bytes = SerializeCaches(intelligent, literal);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) return Internal("write to '" + path + "' failed");
  return OkStatus();
}

Status LoadCachesFromFile(const std::string& path,
                          IntelligentCache* intelligent,
                          LiteralCache* literal) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return NotFound("cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return DeserializeCaches(bytes, intelligent, literal);
}

}  // namespace vizq::cache
