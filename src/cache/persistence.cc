#include "src/cache/persistence.h"

#include <fstream>

#include "src/common/binary_io.h"

namespace vizq::cache {

namespace {
constexpr uint32_t kMagic = 0x56514348;  // 'VQCH'
}  // namespace

std::string SerializeCaches(const IntelligentCache& intelligent,
                            const LiteralCache& literal) {
  BinaryWriter w;
  w.U32(kMagic);
  auto iq = intelligent.TakeSnapshot();
  w.U32(static_cast<uint32_t>(iq.size()));
  for (const IntelligentCache::Snapshot& s : iq) {
    w.Str(s.descriptor.Serialize());
    w.Str(s.result.Serialize());
    w.F64(s.eval_cost_ms);
  }
  auto lq = literal.TakeSnapshot();
  w.U32(static_cast<uint32_t>(lq.size()));
  for (const LiteralCache::Snapshot& s : lq) {
    w.Str(s.query_text);
    w.Str(s.data_source);
    w.Str(s.result.Serialize());
    w.F64(s.eval_cost_ms);
  }
  return w.TakeBytes();
}

Status DeserializeCaches(const std::string& bytes,
                         IntelligentCache* intelligent,
                         LiteralCache* literal) {
  BinaryReader r(bytes);
  uint32_t magic;
  if (!r.U32(&magic) || magic != kMagic) {
    return DataLoss("not a VizQuery cache file");
  }
  uint32_t n;
  if (!r.U32(&n)) return DataLoss("truncated cache file");
  std::vector<IntelligentCache::Snapshot> iq;
  for (uint32_t i = 0; i < n; ++i) {
    std::string desc_bytes, result_bytes;
    double cost;
    if (!r.Str(&desc_bytes) || !r.Str(&result_bytes) || !r.F64(&cost)) {
      return DataLoss("truncated intelligent-cache entry");
    }
    VIZQ_ASSIGN_OR_RETURN(query::AbstractQuery desc,
                          query::AbstractQuery::Deserialize(desc_bytes));
    VIZQ_ASSIGN_OR_RETURN(ResultTable result,
                          ResultTable::Deserialize(result_bytes));
    iq.push_back(
        IntelligentCache::Snapshot{std::move(desc), std::move(result), cost});
  }
  if (!r.U32(&n)) return DataLoss("truncated cache file");
  std::vector<LiteralCache::Snapshot> lq;
  for (uint32_t i = 0; i < n; ++i) {
    LiteralCache::Snapshot s;
    std::string result_bytes;
    if (!r.Str(&s.query_text) || !r.Str(&s.data_source) ||
        !r.Str(&result_bytes) || !r.F64(&s.eval_cost_ms)) {
      return DataLoss("truncated literal-cache entry");
    }
    VIZQ_ASSIGN_OR_RETURN(s.result, ResultTable::Deserialize(result_bytes));
    lq.push_back(std::move(s));
  }
  if (!r.AtEnd()) return DataLoss("trailing bytes in cache file");
  if (intelligent != nullptr) intelligent->Restore(std::move(iq));
  if (literal != nullptr) literal->Restore(std::move(lq));
  return OkStatus();
}

Status SaveCachesToFile(const IntelligentCache& intelligent,
                        const LiteralCache& literal,
                        const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return InvalidArgument("cannot open '" + path + "' for writing");
  std::string bytes = SerializeCaches(intelligent, literal);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) return Internal("write to '" + path + "' failed");
  return OkStatus();
}

Status LoadCachesFromFile(const std::string& path,
                          IntelligentCache* intelligent,
                          LiteralCache* literal) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return NotFound("cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return DeserializeCaches(bytes, intelligent, literal);
}

}  // namespace vizq::cache
