// Cache eviction (§3.2): "cache entries ... are purged based upon a
// combination of entry age, usage, and the expense of re-evaluating the
// query." Both query caches share this scoring policy; the bench
// bench_eviction ablates it against plain LRU.

#ifndef VIZQUERY_CACHE_EVICTION_H_
#define VIZQUERY_CACHE_EVICTION_H_

#include <cstdint>

namespace vizq::cache {

// Bookkeeping carried by every cache entry.
struct EntryUsage {
  int64_t inserted_tick = 0;   // logical clock at insertion
  int64_t last_used_tick = 0;  // logical clock at last hit
  int64_t hits = 0;
  double eval_cost_ms = 0;     // how expensive the query was to evaluate
  int64_t bytes = 0;
};

struct EvictionConfig {
  // Higher score = evicted first.
  double age_weight = 1.0;     // per logical tick since last use
  double usage_weight = 4.0;   // per hit (reduces score)
  double cost_weight = 0.5;    // per ms of re-evaluation cost (reduces)

  // Plain LRU for ablation: score = ticks since last use only.
  static EvictionConfig Lru() { return EvictionConfig{1.0, 0.0, 0.0}; }
  static EvictionConfig CostAware() { return EvictionConfig{}; }
};

// Time-invariant part of the eviction score. Because every entry in a
// cache shares one EvictionConfig, EvictionScore(e, now) differs from
// EvictionPriority(e) only by the entry-independent term
// `age_weight * now` — so the entry with the highest *priority* is the
// entry with the highest *score* at any instant. This is what lets the
// sharded caches keep victims in a max-heap ordered once at insert time
// instead of rescoring every entry per eviction.
inline double EvictionPriority(const EntryUsage& entry,
                               const EvictionConfig& config) {
  return -config.age_weight * static_cast<double>(entry.last_used_tick) -
         config.usage_weight * static_cast<double>(entry.hits) -
         config.cost_weight * entry.eval_cost_ms;
}

// Eviction priority of `entry` at logical time `now` (higher evicts first).
inline double EvictionScore(const EntryUsage& entry, int64_t now,
                            const EvictionConfig& config) {
  return config.age_weight * static_cast<double>(now) +
         EvictionPriority(entry, config);
}

}  // namespace vizq::cache

#endif  // VIZQUERY_CACHE_EVICTION_H_
