// The intelligent query cache (§3.2).
//
// "The intelligent cache maps the internal query structure to a key that is
// associated with the query results. ... When looking for matches, we
// attempt to prove that results of the stored query subsume the requested
// data" — database view matching, with local post-processing limited to
// roll-up, filtering, calculation projection and column restriction.
//
// Matching rules implemented here (stored = S, requested = R):
//   * same data source and view;
//   * dims(R) ⊆ dims(S) — missing granularity can be rolled up;
//   * filters(R) must imply filters(S) (S retained every row R wants), and
//     every *residual* predicate of R must be over a column in dims(S)
//     (post-filtering is only possible on grouped columns);
//   * every measure of R must be derivable from S's columns: identical
//     measure when no roll-up/filter is needed; otherwise via
//     re-aggregation (SUM/MIN/MAX roll up as themselves, COUNT rolls up by
//     summation, AVG needs SUM+COUNT in S, COUNTD needs its column in
//     dims(S));
//   * a stored top-n result is truncated, so it only serves byte-identical
//     requests; a requested top-n is applied locally.
//
// Two match strategies: first match (what shipped in Tableau 9.0) and
// least post-processing (the paper's stated future work), ablated in
// bench_intelligent_cache.

#ifndef VIZQUERY_CACHE_INTELLIGENT_CACHE_H_
#define VIZQUERY_CACHE_INTELLIGENT_CACHE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/eviction.h"
#include "src/cache/sharding.h"
#include "src/common/exec_context.h"
#include "src/common/result_table.h"
#include "src/query/abstract_query.h"

namespace vizq::cache {

// How a requested measure is computed from a stored result's columns.
struct MeasureDerivation {
  enum class Kind : uint8_t {
    kDirect,    // copy column `column_a`
    kReagg,     // re-aggregate column `column_a` with `func`
    kAvgPair,   // sum(column_a) / sum(column_b)
    kCountDistinctDim,  // COUNTD of dimension column `column_a`
  };
  Kind kind = Kind::kDirect;
  AggFunc func = AggFunc::kSum;  // for kReagg
  int column_a = -1;             // index into the stored result
  int column_b = -1;             // for kAvgPair (count column)
};

// A proof that a stored entry answers a request, plus the post-processing
// recipe (§3.2: roll-up, filtering, projection, column restriction).
struct MatchPlan {
  bool exact = false;                 // no post-processing at all
  bool needs_rollup = false;
  std::vector<int> dim_columns;       // stored column index per R dimension
  std::vector<MeasureDerivation> measures;  // per R measure
  std::vector<query::ColumnPredicate> residual_filters;
  bool apply_order_limit = false;
  // Rough cost of post-processing (stored rows to touch); used by the
  // least-post-processing strategy.
  int64_t post_cost = 0;
};

// Why a lookup (or one candidate within it) failed the subsumption proof.
// Ordered by how far the proof progressed before failing: aggregating the
// max across a bucket's candidates reports the *closest* near-miss, which
// is the actionable one ("only the measure wasn't derivable" suggests
// AdjustForReuse; "wrong view" suggests nothing).
enum class MissReason : uint8_t {
  kNone = 0,             // not a miss
  kNoCandidate,          // nothing stored for this (source, view)
  kStoredTopN,           // candidate was a truncated top-n result
  kDimensionNotStored,   // requested dim absent from stored granularity
  kFiltersNotImplied,    // request not at least as restrictive as stored
  kResidualNotGrouped,   // residual predicate on a non-grouped column
  kMeasureNotDerivable,  // a measure could not be derived / re-aggregated
  kEntryStale,           // proof succeeded but the entry is older than the
                         // freshness TTL (and the lookup did not opt into
                         // stale answers covering that age)
  kPostProcessFailed,    // the match plan failed while being applied
};
inline constexpr int kNumMissReasons = 9;

// Short stable token, e.g. "measure_not_derivable"; used as the
// cache.intelligent.miss.<reason> metric suffix and in breadcrumbs.
const char* MissReasonToString(MissReason r);

// Attempts the subsumption proof. Returns nullopt when `stored` cannot
// answer `requested`. `stored_columns` is the stored result's schema.
// When `reason` is non-null and the proof fails, it receives which check
// rejected the candidate (untouched on success).
std::optional<MatchPlan> MatchQueries(
    const query::AbstractQuery& stored,
    const std::vector<ResultColumn>& stored_columns,
    const query::AbstractQuery& requested, MissReason* reason = nullptr);

// Executes the post-processing recipe over the stored rows.
StatusOr<ResultTable> ApplyMatchPlan(const ResultTable& stored,
                                     const MatchPlan& plan,
                                     const query::AbstractQuery& requested);

// §3.2: "The query processor might choose to adjust queries before
// sending, in order to make the results more useful for future reuse."
struct AdjustOptions {
  // AVG(c) is sent as SUM(c) + COUNT(c) so the result stays re-aggregable.
  bool decompose_avg = true;
  // Filtered columns are added as extra dimensions so later interactions
  // that change the filter selection post-process instead of re-querying
  // (the Fig. 1 discussion: "as long as the filtering columns are
  // included").
  bool add_filter_dimensions = false;
};

// Returns the adjusted query to send. The original request is then always
// answerable from the adjusted result via MatchQueries/ApplyMatchPlan.
query::AbstractQuery AdjustForReuse(const query::AbstractQuery& q,
                                    const AdjustOptions& options);

enum class MatchStrategy : uint8_t { kFirstMatch, kLeastPostProcessing };

struct IntelligentCacheOptions {
  int64_t max_bytes = 256 << 20;
  // Results whose evaluation took less than this are not worth caching
  // (§3.2: "we cache all the query results unless computation time is
  // comparable with a cache lookup time"), and results bigger than
  // max_result_bytes are excessively large.
  double min_eval_cost_ms = 0.0;
  int64_t max_result_bytes = 64 << 20;
  MatchStrategy strategy = MatchStrategy::kFirstMatch;
  // Entries older than this are no longer "fresh": a default lookup treats
  // them as misses (kEntryStale) so the stack recomputes, while a lookup
  // that opts in via LookupOptions::max_age_ms may still be served from
  // them — labeled stale, with the actual age attached. 0 = entries never
  // go stale (the historical behavior; data sources here are immutable, so
  // staleness is a freshness policy, not a correctness one).
  double fresh_ttl_ms = 0.0;
  EvictionConfig eviction;
  // Lock striping width; normalized to a power of two in [1, 256], 0 =
  // default (16). One shard degenerates to the old single-mutex cache.
  int num_shards = 0;
};

struct CacheStats {
  int64_t exact_hits = 0;
  int64_t derived_hits = 0;  // answered via post-processing
  int64_t stale_hits = 0;    // served past the freshness TTL (opt-in only)
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t inserts = 0;
  int64_t invalidations = 0;  // entries purged by InvalidateDataSource
  // Misses broken down by the closest-progress MissReason across the
  // bucket's candidates; indexed by static_cast<int>(MissReason).
  // Invariant: sum(miss_reasons) == misses.
  std::array<int64_t, kNumMissReasons> miss_reasons{};
  // Every served answer, fresh or stale.
  int64_t hits() const { return exact_hits + derived_hits + stale_hits; }
};

// An intelligent-cache hit. `table` is an immutable snapshot shared with
// the cache (exact hits) or freshly post-processed (derived hits); either
// way it is safe to hold without copying and never mutated by the cache.
struct CacheHit {
  std::shared_ptr<const ResultTable> table;
  bool exact = false;
  // Age of the serving entry at lookup time and whether it was past the
  // freshness TTL (only possible for lookups that opted into stale
  // answers). Stale answers are always correctly *labeled*: callers that
  // surface them must carry age_ms along (the load-shed ladder does).
  double age_ms = 0.0;
  bool stale = false;
};

// Per-lookup freshness policy (the load-shed ladder's knob).
struct LookupOptions {
  // < 0: fresh answers only — entries older than the cache's fresh TTL
  // are treated as misses (kEntryStale). >= 0: accept entries up to this
  // old, labeling the hit stale when it is past the TTL.
  double max_age_ms = -1.0;
  // Restrict the lookup to the exact-key probe; the subsumption scan is
  // skipped. Rung 1 of the shed ladder serves exact stale answers before
  // falling back to derived ones.
  bool exact_only = false;
};

// Thread-safe, lock-striped. Shards are selected by the hash of the
// (data_source, view) bucket key, so one lookup — exact probe plus
// subsumption scan — touches exactly one shard mutex. Under the shard
// lock only metadata work happens (map probes, MatchQueries over
// descriptors, usage bumps); exact hits hand back a refcounted snapshot
// and the expensive derived-hit roll-up (ApplyMatchPlan) runs on a
// snapshotted entry after the lock is released.
class IntelligentCache {
 public:
  explicit IntelligentCache(IntelligentCacheOptions options = {});

  // Looks up `q`; on a hit returns the shared (exact) or freshly
  // post-processed (derived) result without copying row data. Counts the
  // outcome on `ctx` (cache.intelligent.exact_hit / derived_hit / miss)
  // and observes cache.intelligent.lock_wait_us / derived_apply_us.
  std::optional<CacheHit> LookupHit(
      const query::AbstractQuery& q,
      const ExecContext& ctx = ExecContext::Background(),
      const LookupOptions& lookup = {});

  // Copying convenience wrapper over LookupHit; the copy happens outside
  // any shard lock.
  std::optional<ResultTable> Lookup(
      const query::AbstractQuery& q,
      const ExecContext& ctx = ExecContext::Background());

  // Stores a result. `eval_cost_ms` drives both the admission decision and
  // the eviction score.
  void Put(const query::AbstractQuery& q, ResultTable result,
           double eval_cost_ms,
           const ExecContext& ctx = ExecContext::Background());

  // §3.2: entries are purged when a connection to a data source is closed
  // or refreshed.
  void InvalidateDataSource(const std::string& data_source);
  // Drops every entry AND resets stats: the cache is as-new, so hit-rate
  // reporting starts from zero instead of mixing epochs.
  void Clear();

  CacheStats stats() const;
  int64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  int64_t num_entries() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  // Live entries per shard; lets tests and benches quantify imbalance.
  std::vector<int64_t> ShardOccupancy() const;

  // Persistence support: snapshot / restore every live entry. The
  // snapshot is per-shard sequentially consistent (each shard is copied
  // atomically; concurrent writers may land between shards).
  struct Snapshot {
    query::AbstractQuery descriptor;
    ResultTable result;
    double eval_cost_ms;
  };
  std::vector<Snapshot> TakeSnapshot() const;
  void Restore(std::vector<Snapshot> entries);
  // Persistence: overwrite the hit/miss counters after a Restore() (SET
  // semantics), so round-tripped stats do not double-count the inserts
  // that Restore issues through Put().
  void SetStatsForRestore(const CacheStats& stats);

 private:
  struct Entry {
    query::AbstractQuery descriptor;
    std::shared_ptr<const ResultTable> result;
    // Wall-free insertion instant; an entry's age at lookup decides fresh
    // vs stale under the fresh_ttl_ms policy.
    std::chrono::steady_clock::time_point stored_at{};
    EntryUsage usage;
    uint64_t heap_seq = 0;  // bumped per usage change (lazy heap deletion)
    bool evicted = false;   // left the maps; heap nodes must skip it
    std::string key;        // descriptor.ToKeyString(), cached
    std::string bucket_key;
  };

  struct Shard {
    mutable std::mutex mu;
    // Exact-key fast path.
    std::map<std::string, std::shared_ptr<Entry>> by_key;
    // Bucketed by (data_source, view): the index that keeps subsumption
    // scans from touching unrelated entries.
    std::map<std::string, std::vector<std::shared_ptr<Entry>>> buckets;
    EvictionHeap<Entry> heap;
    int64_t bytes = 0;
  };

  Shard& ShardFor(const std::string& bucket_key) {
    return *shards_[ShardIndexFor(bucket_key,
                                  static_cast<int>(shards_.size()))];
  }

  // Unlinks `entry` from the shard maps (shard lock held by caller).
  void RemoveLocked(Shard& shard, const std::shared_ptr<Entry>& entry);
  // Evicts shard-local victims round-robin until under budget. Must be
  // called with NO shard lock held.
  void EvictIfNeeded(const ExecContext& ctx);

  IntelligentCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> total_bytes_{0};
  std::atomic<int64_t> tick_{0};
  std::atomic<size_t> evict_cursor_{0};

  struct AtomicStats {
    std::atomic<int64_t> exact_hits{0};
    std::atomic<int64_t> derived_hits{0};
    std::atomic<int64_t> stale_hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> inserts{0};
    std::atomic<int64_t> invalidations{0};
    std::array<std::atomic<int64_t>, kNumMissReasons> miss_reasons{};
  };
  AtomicStats stats_;

  // Counts the miss (total + per-reason + ctx metric + breadcrumb).
  void CountMiss(MissReason reason, const query::AbstractQuery& q,
                 const ExecContext& ctx);
};

}  // namespace vizq::cache

#endif  // VIZQUERY_CACHE_INTELLIGENT_CACHE_H_
