#include "src/cache/literal_cache.h"

namespace vizq::cache {

std::optional<ResultTable> LiteralCache::Lookup(const std::string& query_text,
                                                const ExecContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  auto it = entries_.find(query_text);
  if (it == entries_.end()) {
    ++misses_;
    ctx.Count("cache.literal.miss");
    return std::nullopt;
  }
  it->second.usage.last_used_tick = tick_;
  ++it->second.usage.hits;
  ++hits_;
  ctx.Count("cache.literal.hit");
  return it->second.result;
}

void LiteralCache::Put(const std::string& query_text, ResultTable result,
                       double eval_cost_ms, const std::string& data_source,
                       const ExecContext& ctx) {
  ctx.Count("cache.literal.insert_attempts");
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  if (eval_cost_ms < options_.min_eval_cost_ms) return;
  int64_t bytes = result.ApproxBytes();
  if (bytes > options_.max_result_bytes) return;
  if (entries_.find(query_text) != entries_.end()) return;

  Entry entry;
  entry.result = std::move(result);
  entry.data_source = data_source;
  entry.usage.inserted_tick = tick_;
  entry.usage.last_used_tick = tick_;
  entry.usage.eval_cost_ms = eval_cost_ms;
  entry.usage.bytes = bytes;
  total_bytes_ += bytes;
  entries_.emplace(query_text, std::move(entry));
  EvictIfNeeded();
}

void LiteralCache::EvictIfNeeded() {
  while (total_bytes_ > options_.max_bytes && !entries_.empty()) {
    auto victim = entries_.begin();
    double victim_score =
        EvictionScore(victim->second.usage, tick_, options_.eviction);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      double score = EvictionScore(it->second.usage, tick_, options_.eviction);
      if (score > victim_score) {
        victim = it;
        victim_score = score;
      }
    }
    total_bytes_ -= victim->second.usage.bytes;
    entries_.erase(victim);
  }
}

void LiteralCache::InvalidateDataSource(const std::string& data_source) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.data_source == data_source) {
      total_bytes_ -= it->second.usage.bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void LiteralCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  total_bytes_ = 0;
}

int64_t LiteralCache::num_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

std::vector<LiteralCache::Snapshot> LiteralCache::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Snapshot> out;
  out.reserve(entries_.size());
  for (const auto& [text, entry] : entries_) {
    out.push_back(Snapshot{text, entry.data_source, entry.result,
                           entry.usage.eval_cost_ms});
  }
  return out;
}

void LiteralCache::Restore(std::vector<Snapshot> entries) {
  for (Snapshot& s : entries) {
    Put(s.query_text, std::move(s.result), s.eval_cost_ms, s.data_source);
  }
}

}  // namespace vizq::cache
