#include "src/cache/literal_cache.h"

namespace vizq::cache {

namespace {

// Breadcrumbs carry a recognizable prefix of the query text, not the
// whole statement (texts run to kilobytes).
std::string TextPreview(const std::string& text) {
  constexpr size_t kMax = 60;
  if (text.size() <= kMax) return text;
  return text.substr(0, kMax) + "...";
}

}  // namespace

LiteralCache::LiteralCache(LiteralCacheOptions options) : options_(options) {
  int n = NormalizeShardCount(options_.num_shards);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const ResultTable> LiteralCache::LookupShared(
    const std::string& query_text, const ExecContext& ctx) {
  int64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = ShardFor(query_text);
  std::shared_ptr<const ResultTable> found;
  {
    TimedLockGuard lock(shard.mu, ctx, "cache.literal.lock_wait_us");
    auto it = shard.entries.find(query_text);
    if (it != shard.entries.end()) {
      Entry& e = *it->second;
      e.usage.last_used_tick = tick;
      ++e.usage.hits;
      ++e.heap_seq;
      found = e.result;
    }
  }
  // Counting and breadcrumbs happen after the shard lock is released.
  if (found != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    ctx.Count("cache.literal.hit");
    if (ctx.log_enabled()) {
      ctx.LogEvent("cache.literal", "hit text=" + TextPreview(query_text));
    }
    return found;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  ctx.Count("cache.literal.miss");
  if (ctx.log_enabled()) {
    ctx.LogEvent("cache.literal", "miss text=" + TextPreview(query_text));
  }
  return nullptr;
}

std::optional<ResultTable> LiteralCache::Lookup(const std::string& query_text,
                                                const ExecContext& ctx) {
  auto hit = LookupShared(query_text, ctx);
  if (hit == nullptr) return std::nullopt;
  return *hit;  // copy happens outside any shard lock
}

void LiteralCache::Put(const std::string& query_text, ResultTable result,
                       double eval_cost_ms, const std::string& data_source,
                       const ExecContext& ctx) {
  ctx.Count("cache.literal.insert_attempts");
  if (eval_cost_ms < options_.min_eval_cost_ms) return;
  int64_t bytes = result.ApproxBytes();
  if (bytes > options_.max_result_bytes) return;
  int64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;

  auto entry = std::make_shared<Entry>();
  entry->result = std::make_shared<const ResultTable>(std::move(result));
  entry->data_source = data_source;
  entry->usage.inserted_tick = tick;
  entry->usage.last_used_tick = tick;
  entry->usage.eval_cost_ms = eval_cost_ms;
  entry->usage.bytes = bytes;
  entry->text = query_text;

  Shard& shard = ShardFor(query_text);
  {
    TimedLockGuard lock(shard.mu, ctx, "cache.literal.lock_wait_us");
    if (shard.entries.find(query_text) != shard.entries.end()) return;
    shard.entries.emplace(query_text, entry);
    shard.bytes += bytes;
    shard.heap.Push(entry, options_.eviction);
    if (ctx.metrics_enabled()) {
      ctx.Observe("cache.literal.shard_occupancy",
                  static_cast<double>(shard.entries.size()));
    }
  }
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  EvictIfNeeded(ctx);
}

void LiteralCache::EvictIfNeeded(const ExecContext& ctx) {
  // One shard lock at a time; see IntelligentCache::EvictIfNeeded for the
  // round-robin rationale.
  while (total_bytes_.load(std::memory_order_relaxed) > options_.max_bytes) {
    bool evicted_any = false;
    size_t start = evict_cursor_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0;
         i < shards_.size() &&
         total_bytes_.load(std::memory_order_relaxed) > options_.max_bytes;
         ++i) {
      Shard& shard = *shards_[(start + i) % shards_.size()];
      TimedLockGuard lock(shard.mu, ctx, "cache.literal.lock_wait_us");
      while (total_bytes_.load(std::memory_order_relaxed) >
             options_.max_bytes) {
        std::shared_ptr<Entry> victim = shard.heap.PopVictim(options_.eviction);
        if (victim == nullptr) break;
        victim->evicted = true;
        shard.entries.erase(victim->text);
        shard.bytes -= victim->usage.bytes;
        total_bytes_.fetch_sub(victim->usage.bytes,
                               std::memory_order_relaxed);
        evicted_any = true;
      }
    }
    if (!evicted_any) break;
  }
}

void LiteralCache::InvalidateDataSource(const std::string& data_source) {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->second->data_source == data_source) {
        it->second->evicted = true;
        shard.bytes -= it->second->usage.bytes;
        total_bytes_.fetch_sub(it->second->usage.bytes,
                               std::memory_order_relaxed);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        it = shard.entries.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void LiteralCache::Clear() {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [text, entry] : shard.entries) entry->evicted = true;
    total_bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.entries.clear();
    shard.heap.Clear();
    shard.bytes = 0;
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
}

int64_t LiteralCache::num_entries() const {
  int64_t n = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->entries.size());
  }
  return n;
}

std::vector<int64_t> LiteralCache::ShardOccupancy() const {
  std::vector<int64_t> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.push_back(static_cast<int64_t>(shard->entries.size()));
  }
  return out;
}

std::vector<LiteralCache::Snapshot> LiteralCache::TakeSnapshot() const {
  std::vector<Snapshot> out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [text, entry] : shard->entries) {
      out.push_back(Snapshot{text, entry->data_source, *entry->result,
                             entry->usage.eval_cost_ms});
    }
  }
  return out;
}

void LiteralCache::Restore(std::vector<Snapshot> entries) {
  for (Snapshot& s : entries) {
    Put(s.query_text, std::move(s.result), s.eval_cost_ms, s.data_source);
  }
}

void LiteralCache::SetStatsForRestore(int64_t hits, int64_t misses,
                                      int64_t invalidations) {
  hits_.store(hits, std::memory_order_relaxed);
  misses_.store(misses, std::memory_order_relaxed);
  invalidations_.store(invalidations, std::memory_order_relaxed);
}

}  // namespace vizq::cache
