#include "src/cache/intelligent_cache.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace vizq::cache {

using query::AbstractQuery;
using query::ColumnPredicate;
using query::Measure;

namespace {

// Index of the stored measure with this func/column, or -1.
int FindStoredMeasure(const AbstractQuery& stored, AggFunc func,
                      const std::string& column) {
  for (size_t i = 0; i < stored.measures.size(); ++i) {
    if (stored.measures[i].func == func && stored.measures[i].column == column) {
      return static_cast<int>(stored.dimensions.size() + i);
    }
  }
  return -1;
}

int FindStoredDimension(const AbstractQuery& stored, const std::string& name) {
  for (size_t i = 0; i < stored.dimensions.size(); ++i) {
    if (stored.dimensions[i] == name) return static_cast<int>(i);
  }
  return -1;
}

bool SameDimensionSet(const AbstractQuery& a, const AbstractQuery& b) {
  if (a.dimensions.size() != b.dimensions.size()) return false;
  std::set<std::string> sa(a.dimensions.begin(), a.dimensions.end());
  std::set<std::string> sb(b.dimensions.begin(), b.dimensions.end());
  return sa == sb;
}

bool RowPassesPredicate(const Value& v, const ColumnPredicate& p) {
  // SQL comparison semantics: NULL matches nothing — not even a NULL
  // literal in an IN-set (the TDE engine's kIn yields NULL for NULL
  // inputs, which the filter rejects). The null test must precede the
  // set scan or Value::Equals(null, null) would admit the row.
  if (v.is_null()) return false;
  if (p.kind == ColumnPredicate::Kind::kInSet) {
    for (const Value& allowed : p.values) {
      if (v.Equals(allowed)) return true;
    }
    return false;
  }
  if (p.lower.has_value()) {
    int cmp = v.Compare(*p.lower);
    if (cmp < 0 || (cmp == 0 && !p.lower_inclusive)) return false;
  }
  if (p.upper.has_value()) {
    int cmp = v.Compare(*p.upper);
    if (cmp > 0 || (cmp == 0 && !p.upper_inclusive)) return false;
  }
  return true;
}

}  // namespace

const char* MissReasonToString(MissReason r) {
  switch (r) {
    case MissReason::kNone: return "none";
    case MissReason::kNoCandidate: return "no_candidate";
    case MissReason::kStoredTopN: return "stored_topn";
    case MissReason::kDimensionNotStored: return "dimension_not_stored";
    case MissReason::kFiltersNotImplied: return "filters_not_implied";
    case MissReason::kResidualNotGrouped: return "residual_not_grouped";
    case MissReason::kMeasureNotDerivable: return "measure_not_derivable";
    case MissReason::kEntryStale: return "entry_stale";
    case MissReason::kPostProcessFailed: return "post_process_failed";
  }
  return "unknown";
}

namespace {

// `return Fail(reason, out)` from MatchQueries: records why and misses.
std::nullopt_t Fail(MissReason r, MissReason* out) {
  if (out != nullptr) *out = r;
  return std::nullopt;
}

}  // namespace

std::optional<MatchPlan> MatchQueries(
    const AbstractQuery& stored,
    const std::vector<ResultColumn>& stored_columns,
    const AbstractQuery& requested, MissReason* reason) {
  if (stored.data_source != requested.data_source ||
      stored.view != requested.view) {
    return Fail(MissReason::kNoCandidate, reason);
  }

  // Byte-identical request: zero post-processing.
  if (stored.ToKeyString() == requested.ToKeyString()) {
    MatchPlan plan;
    plan.exact = true;
    return plan;
  }

  // A truncated (top-n) stored result cannot answer anything else.
  if (stored.has_limit()) return Fail(MissReason::kStoredTopN, reason);

  // Dimensions of the request must exist in the stored granularity.
  MatchPlan plan;
  for (const std::string& dim : requested.dimensions) {
    int idx = FindStoredDimension(stored, dim);
    if (idx < 0) return Fail(MissReason::kDimensionNotStored, reason);
    plan.dim_columns.push_back(idx);
  }
  plan.needs_rollup = !SameDimensionSet(stored, requested);

  // Filters: the request must be at least as restrictive as the stored
  // query, and residual predicates must be post-filterable (grouped cols).
  if (!requested.filters.Implies(stored.filters)) {
    return Fail(MissReason::kFiltersNotImplied, reason);
  }
  plan.residual_filters = requested.filters.ResidualAgainst(stored.filters);
  for (const ColumnPredicate& p : plan.residual_filters) {
    if (FindStoredDimension(stored, p.column) < 0) {
      return Fail(MissReason::kResidualNotGrouped, reason);
    }
  }

  // Measures.
  for (const Measure& m : requested.measures) {
    MeasureDerivation d;
    if (!plan.needs_rollup) {
      int direct = FindStoredMeasure(stored, m.func, m.column);
      if (direct >= 0) {
        d.kind = MeasureDerivation::Kind::kDirect;
        d.column_a = direct;
        plan.measures.push_back(d);
        continue;
      }
      if (m.func == AggFunc::kAvg) {
        int sum = FindStoredMeasure(stored, AggFunc::kSum, m.column);
        int cnt = FindStoredMeasure(stored, AggFunc::kCount, m.column);
        if (sum >= 0 && cnt >= 0) {
          d.kind = MeasureDerivation::Kind::kAvgPair;
          d.column_a = sum;
          d.column_b = cnt;
          plan.measures.push_back(d);
          continue;
        }
      }
      return Fail(MissReason::kMeasureNotDerivable, reason);
    }
    // Roll-up derivations.
    switch (m.func) {
      case AggFunc::kSum: {
        int src = FindStoredMeasure(stored, AggFunc::kSum, m.column);
        if (src < 0) return Fail(MissReason::kMeasureNotDerivable, reason);
        d.kind = MeasureDerivation::Kind::kReagg;
        d.func = AggFunc::kSum;
        d.column_a = src;
        break;
      }
      case AggFunc::kCount: {
        int src = FindStoredMeasure(stored, AggFunc::kCount, m.column);
        if (src < 0) return Fail(MissReason::kMeasureNotDerivable, reason);
        d.kind = MeasureDerivation::Kind::kReagg;
        d.func = AggFunc::kSum;  // counts combine by summation
        d.column_a = src;
        break;
      }
      case AggFunc::kCountStar: {
        int src = FindStoredMeasure(stored, AggFunc::kCountStar, "");
        if (src < 0) return Fail(MissReason::kMeasureNotDerivable, reason);
        d.kind = MeasureDerivation::Kind::kReagg;
        d.func = AggFunc::kSum;
        d.column_a = src;
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        int src = FindStoredMeasure(stored, m.func, m.column);
        if (src < 0) return Fail(MissReason::kMeasureNotDerivable, reason);
        d.kind = MeasureDerivation::Kind::kReagg;
        d.func = m.func;
        d.column_a = src;
        break;
      }
      case AggFunc::kAvg: {
        int sum = FindStoredMeasure(stored, AggFunc::kSum, m.column);
        int cnt = FindStoredMeasure(stored, AggFunc::kCount, m.column);
        if (sum < 0 || cnt < 0) {
          return Fail(MissReason::kMeasureNotDerivable, reason);
        }
        d.kind = MeasureDerivation::Kind::kAvgPair;
        d.column_a = sum;
        d.column_b = cnt;
        break;
      }
      case AggFunc::kCountDistinct: {
        int dim = FindStoredDimension(stored, m.column);
        if (dim < 0) return Fail(MissReason::kMeasureNotDerivable, reason);
        d.kind = MeasureDerivation::Kind::kCountDistinctDim;
        d.column_a = dim;
        break;
      }
    }
    plan.measures.push_back(d);
  }

  plan.apply_order_limit =
      !requested.order_by.empty() || requested.has_limit();
  plan.post_cost = plan.needs_rollup || !plan.residual_filters.empty() ||
                           plan.apply_order_limit
                       ? 1
                       : 0;
  (void)stored_columns;
  return plan;
}

StatusOr<ResultTable> ApplyMatchPlan(const ResultTable& stored,
                                     const MatchPlan& plan,
                                     const AbstractQuery& requested) {
  if (plan.exact) return stored;

  // Output schema.
  std::vector<ResultColumn> out_cols;
  for (size_t i = 0; i < requested.dimensions.size(); ++i) {
    int src = plan.dim_columns[i];
    out_cols.push_back(
        ResultColumn{requested.dimensions[i], stored.columns()[src].type});
  }
  for (size_t i = 0; i < requested.measures.size(); ++i) {
    const Measure& m = requested.measures[i];
    const MeasureDerivation& d = plan.measures[i];
    DataType type;
    switch (d.kind) {
      case MeasureDerivation::Kind::kDirect:
        type = stored.columns()[d.column_a].type;
        break;
      case MeasureDerivation::Kind::kReagg:
        type = AggResultType(d.func, stored.columns()[d.column_a].type);
        break;
      case MeasureDerivation::Kind::kAvgPair:
        type = DataType::Float64();
        break;
      case MeasureDerivation::Kind::kCountDistinctDim:
        type = DataType::Int64();
        break;
    }
    out_cols.push_back(ResultColumn{m.EffectiveAlias(), type});
  }
  ResultTable out(std::move(out_cols));

  // Residual filter column resolution.
  std::vector<std::pair<int, const ColumnPredicate*>> residual;
  for (const ColumnPredicate& p : plan.residual_filters) {
    auto idx = stored.FindColumn(p.column);
    if (!idx.has_value()) {
      return Internal("residual filter column missing from stored result");
    }
    residual.emplace_back(*idx, &p);
  }

  auto row_passes = [&](int64_t r) {
    for (const auto& [col, pred] : residual) {
      if (!RowPassesPredicate(stored.at(r, col), *pred)) return false;
    }
    return true;
  };

  size_t ndims = requested.dimensions.size();

  if (!plan.needs_rollup) {
    // Filter + project, group rows stay intact.
    for (int64_t r = 0; r < stored.num_rows(); ++r) {
      if (!row_passes(r)) continue;
      ResultTable::Row row;
      row.reserve(ndims + plan.measures.size());
      for (size_t i = 0; i < ndims; ++i) {
        row.push_back(stored.at(r, plan.dim_columns[i]));
      }
      for (const MeasureDerivation& d : plan.measures) {
        if (d.kind == MeasureDerivation::Kind::kAvgPair) {
          const Value& sum = stored.at(r, d.column_a);
          const Value& cnt = stored.at(r, d.column_b);
          if (cnt.is_null() || cnt.AsDouble() == 0 || sum.is_null()) {
            row.push_back(Value::Null());
          } else {
            row.push_back(Value(sum.AsDouble() / cnt.AsDouble()));
          }
        } else {
          row.push_back(stored.at(r, d.column_a));
        }
      }
      out.AddRow(std::move(row));
    }
  } else {
    // Roll up: hash-group by the requested dimensions.
    struct Group {
      ResultTable::Row dims;
      std::vector<double> sum_d;
      std::vector<int64_t> sum_i;
      std::vector<Value> extreme;
      std::vector<char> has_value;
      std::vector<std::set<Value>> distinct;
      std::vector<double> pair_sum;
      std::vector<int64_t> pair_cnt;
    };
    std::map<std::string, Group> groups;  // canonical dim key -> group

    for (int64_t r = 0; r < stored.num_rows(); ++r) {
      if (!row_passes(r)) continue;
      std::string key;
      for (size_t i = 0; i < ndims; ++i) {
        const Value& v = stored.at(r, plan.dim_columns[i]);
        // Tag nulls out-of-band: ToString renders NULL as "NULL", which a
        // genuine string value can collide with.
        key += v.is_null() ? '\x00' : '\x01';
        key += v.ToString();
        key += '\x1f';
      }
      auto [it, inserted] = groups.try_emplace(key);
      Group& g = it->second;
      if (inserted) {
        for (size_t i = 0; i < ndims; ++i) {
          g.dims.push_back(stored.at(r, plan.dim_columns[i]));
        }
        size_t nm = plan.measures.size();
        g.sum_d.assign(nm, 0);
        g.sum_i.assign(nm, 0);
        g.extreme.assign(nm, Value());
        g.has_value.assign(nm, 0);
        g.distinct.resize(nm);
        g.pair_sum.assign(nm, 0);
        g.pair_cnt.assign(nm, 0);
      }
      for (size_t mi = 0; mi < plan.measures.size(); ++mi) {
        const MeasureDerivation& d = plan.measures[mi];
        switch (d.kind) {
          case MeasureDerivation::Kind::kDirect:
            return Internal("direct measure under roll-up");
          case MeasureDerivation::Kind::kReagg: {
            const Value& v = stored.at(r, d.column_a);
            if (v.is_null()) break;
            if (d.func == AggFunc::kSum) {
              if (v.is_double()) {
                g.sum_d[mi] += v.double_value();
              } else {
                g.sum_i[mi] += v.int_value();
              }
              g.has_value[mi] = 1;
            } else {
              if (g.has_value[mi] == 0) {
                g.extreme[mi] = v;
                g.has_value[mi] = 1;
              } else {
                int cmp = v.Compare(g.extreme[mi]);
                if ((d.func == AggFunc::kMin && cmp < 0) ||
                    (d.func == AggFunc::kMax && cmp > 0)) {
                  g.extreme[mi] = v;
                }
              }
            }
            break;
          }
          case MeasureDerivation::Kind::kAvgPair: {
            const Value& sum = stored.at(r, d.column_a);
            const Value& cnt = stored.at(r, d.column_b);
            if (!sum.is_null()) g.pair_sum[mi] += sum.AsDouble();
            if (!cnt.is_null()) g.pair_cnt[mi] += cnt.int_value();
            break;
          }
          case MeasureDerivation::Kind::kCountDistinctDim: {
            // COUNTD ignores NULLs (SQL semantics; the engine's
            // aggregator skips them) — counting the null group would
            // over-count by one whenever the dimension has nulls.
            const Value& v = stored.at(r, d.column_a);
            if (!v.is_null()) g.distinct[mi].insert(v);
            break;
          }
        }
      }
    }

    if (ndims == 0 && groups.empty()) {
      // Scalar aggregate over an empty (or fully filtered-out) input still
      // produces exactly one row: counts are 0, everything else is NULL —
      // matching the engine's scalar-aggregation rule.
      ResultTable::Row row;
      for (size_t mi = 0; mi < plan.measures.size(); ++mi) {
        AggFunc f = requested.measures[mi].func;
        bool is_count = f == AggFunc::kCount || f == AggFunc::kCountStar ||
                        f == AggFunc::kCountDistinct;
        row.push_back(is_count ? Value(static_cast<int64_t>(0))
                               : Value::Null());
      }
      out.AddRow(std::move(row));
    }

    for (auto& [key, g] : groups) {
      ResultTable::Row row = g.dims;
      for (size_t mi = 0; mi < plan.measures.size(); ++mi) {
        const MeasureDerivation& d = plan.measures[mi];
        switch (d.kind) {
          case MeasureDerivation::Kind::kDirect:
            break;  // unreachable
          case MeasureDerivation::Kind::kReagg:
            if (d.func == AggFunc::kSum) {
              // COUNT roll-ups and integral sums surface as ints.
              DataType t = out.columns()[ndims + mi].type;
              if (g.has_value[mi] == 0) {
                // COUNT of nothing is 0; SUM of nothing is null. COUNT
                // sources are never null in stored rows, so has_value==0
                // means no source rows at all — which cannot happen for a
                // created group. Null-sum groups keep null.
                row.push_back(t.kind == TypeKind::kFloat64
                                  ? Value::Null()
                                  : Value::Null());
              } else if (t.kind == TypeKind::kFloat64) {
                row.push_back(Value(g.sum_d[mi] +
                                    static_cast<double>(g.sum_i[mi])));
              } else {
                row.push_back(Value(g.sum_i[mi]));
              }
            } else {
              row.push_back(g.has_value[mi] ? g.extreme[mi] : Value::Null());
            }
            break;
          case MeasureDerivation::Kind::kAvgPair:
            if (g.pair_cnt[mi] == 0) {
              row.push_back(Value::Null());
            } else {
              row.push_back(
                  Value(g.pair_sum[mi] / static_cast<double>(g.pair_cnt[mi])));
            }
            break;
          case MeasureDerivation::Kind::kCountDistinctDim:
            row.push_back(Value(static_cast<int64_t>(g.distinct[mi].size())));
            break;
        }
      }
      out.AddRow(std::move(row));
    }
  }

  // Local ordering / top-n.
  if (plan.apply_order_limit) {
    if (!requested.order_by.empty()) {
      std::vector<std::pair<int, bool>> keys;  // column, ascending
      for (const query::OrderSpec& o : requested.order_by) {
        auto idx = out.FindColumn(o.by_alias);
        if (!idx.has_value()) {
          return InvalidArgument("order-by alias '" + o.by_alias +
                                 "' is not an output column");
        }
        keys.emplace_back(*idx, o.ascending);
      }
      // Stable sort honoring per-key direction.
      ResultTable sorted(std::vector<ResultColumn>(out.columns()));
      std::vector<int64_t> order(out.num_rows());
      for (int64_t i = 0; i < out.num_rows(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](int64_t a, int64_t b) {
                         for (const auto& [col, asc] : keys) {
                           int cmp = out.at(a, col).Compare(out.at(b, col));
                           if (cmp != 0) return asc ? cmp < 0 : cmp > 0;
                         }
                         return false;
                       });
      for (int64_t i : order) {
        sorted.AddRow(out.row(i));
      }
      out = std::move(sorted);
    }
    if (requested.has_limit() && out.num_rows() > requested.limit) {
      ResultTable limited(std::vector<ResultColumn>(out.columns()));
      for (int64_t i = 0; i < requested.limit; ++i) {
        limited.AddRow(out.row(i));
      }
      out = std::move(limited);
    }
  }

  return out;
}

query::AbstractQuery AdjustForReuse(const query::AbstractQuery& q,
                                    const AdjustOptions& options) {
  query::AbstractQuery adjusted = q;
  if (options.decompose_avg) {
    std::vector<Measure> measures;
    for (const Measure& m : adjusted.measures) {
      if (m.func == AggFunc::kAvg) {
        bool have_sum = false, have_cnt = false;
        for (const Measure& other : adjusted.measures) {
          if (other.column == m.column) {
            have_sum |= other.func == AggFunc::kSum;
            have_cnt |= other.func == AggFunc::kCount;
          }
        }
        if (!have_sum) {
          measures.push_back(Measure{AggFunc::kSum, m.column, ""});
        }
        if (!have_cnt) {
          measures.push_back(Measure{AggFunc::kCount, m.column, ""});
        }
      } else {
        measures.push_back(m);
      }
    }
    // Keep existing non-avg measures plus the decomposition pieces; the
    // original AVG disappears from the sent query.
    adjusted.measures = std::move(measures);
    // A decomposed query no longer produces the requested ordering column
    // when ordering by the avg alias; drop remote order/limit so the full
    // re-aggregable result comes back.
    bool ordered_by_avg = false;
    for (const query::OrderSpec& o : q.order_by) {
      for (const Measure& m : q.measures) {
        if (m.func == AggFunc::kAvg && m.EffectiveAlias() == o.by_alias) {
          ordered_by_avg = true;
        }
      }
    }
    if (ordered_by_avg) {
      adjusted.order_by.clear();
      adjusted.limit = 0;
    }
  }
  if (options.add_filter_dimensions) {
    bool widened = false;
    for (const query::ColumnPredicate& p : adjusted.filters.predicates) {
      bool present = false;
      for (const std::string& d : adjusted.dimensions) {
        if (d == p.column) present = true;
      }
      if (!present) {
        adjusted.dimensions.push_back(p.column);
        widened = true;
      }
    }
    if (widened) {
      // The widened result serves the original through a roll-up. Every
      // re-aggregable measure survives that, but COUNTD does not — distinct
      // counts cannot be re-aggregated across groups — so its column must
      // also be kept as a dimension for the kCountDistinctDim derivation.
      for (const Measure& m : q.measures) {
        if (m.func != AggFunc::kCountDistinct) continue;
        bool present = false;
        for (const std::string& d : adjusted.dimensions) {
          if (d == m.column) present = true;
        }
        if (!present) adjusted.dimensions.push_back(m.column);
      }
    }
    // Extra dimensions make a top-n meaningless remotely; fetch untruncated.
    adjusted.order_by.clear();
    adjusted.limit = 0;
  } else if (adjusted.has_limit() &&
             !(adjusted.ToKeyString() == q.ToKeyString())) {
    // Any adjustment invalidates a remote top-n (the result would be
    // truncated at the wrong granularity).
    adjusted.order_by.clear();
    adjusted.limit = 0;
  }
  adjusted.Canonicalize();
  return adjusted;
}

IntelligentCache::IntelligentCache(IntelligentCacheOptions options)
    : options_(options) {
  int n = NormalizeShardCount(options_.num_shards);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::optional<CacheHit> IntelligentCache::LookupHit(
    const AbstractQuery& q, const ExecContext& ctx,
    const LookupOptions& lookup) {
  // Attribute the probe to the request's cache_lookup phase. Nesting
  // under a caller's own kCacheLookup scope is free: the same-phase
  // child goes inert and the parent's running clock keeps charging the
  // same bucket.
  PhaseScope phase(ctx.timeline(), Phase::kCacheLookup);
  int64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string key = q.ToKeyString();
  std::string bucket_key = q.data_source + "\x1f" + q.view;
  Shard& shard = ShardFor(bucket_key);

  auto now = std::chrono::steady_clock::now();
  double ttl = options_.fresh_ttl_ms;
  auto age_of = [&](const Entry& e) {
    return std::chrono::duration<double, std::milli>(now - e.stored_at)
        .count();
  };
  // Whether an entry of `age` may serve this lookup; `*is_stale` labels
  // past-TTL answers (only reachable when the lookup opted in).
  auto admissible = [&](double age, bool* is_stale) {
    bool past_ttl = ttl > 0 && age > ttl;
    *is_stale = past_ttl;
    if (!past_ttl) return true;
    return lookup.max_age_ms >= 0 && age <= lookup.max_age_ms;
  };

  // Under the shard lock: metadata only. The exact probe returns a
  // refcounted snapshot; the subsumption scan compares descriptors and
  // snapshots the winning entry so ApplyMatchPlan can run lock-free.
  std::shared_ptr<Entry> best;
  std::shared_ptr<const ResultTable> best_table;
  MatchPlan best_plan;
  double best_age = 0.0;
  bool best_stale = false;
  // Closest-progress rejection across the bucket's candidates; reasons
  // are ordered by proof progress, so max is "the nearest near-miss".
  MissReason miss_reason = MissReason::kNoCandidate;
  {
    TimedLockGuard lock(shard.mu, ctx, "cache.intelligent.lock_wait_us");
    auto kit = shard.by_key.find(key);
    if (kit != shard.by_key.end()) {
      Entry& e = *kit->second;
      double age = age_of(e);
      bool is_stale = false;
      if (admissible(age, &is_stale)) {
        e.usage.last_used_tick = tick;
        ++e.usage.hits;
        ++e.heap_seq;
        if (is_stale) {
          stats_.stale_hits.fetch_add(1, std::memory_order_relaxed);
          ctx.Count("cache.intelligent.stale_hit");
          if (ctx.metrics_enabled()) {
            ctx.Observe("cache.intelligent.stale_age_ms", age);
          }
        } else {
          stats_.exact_hits.fetch_add(1, std::memory_order_relaxed);
          ctx.Count("cache.intelligent.exact_hit");
        }
        CacheHit hit{e.result, /*exact=*/true, age, is_stale};
        lock.Release();  // breadcrumb formatting happens outside the lock
        if (ctx.log_enabled()) {
          ctx.LogEvent("cache.intelligent",
                       std::string(is_stale ? "stale-" : "") +
                           "exact-hit view=" + q.view + " rows=" +
                           std::to_string(hit.table->num_rows()) +
                           (is_stale ? " age_ms=" + std::to_string(age)
                                     : std::string()));
        }
        return hit;
      }
      // The exact entry exists but is too old for this lookup; the scan
      // below may still find a fresher derivable candidate.
      miss_reason = MissReason::kEntryStale;
    }
    auto bit = lookup.exact_only ? shard.buckets.end()
                                 : shard.buckets.find(bucket_key);
    if (bit != shard.buckets.end()) {
      for (const std::shared_ptr<Entry>& entry : bit->second) {
        double age = age_of(*entry);
        bool is_stale = false;
        if (!admissible(age, &is_stale)) {
          miss_reason = std::max(miss_reason, MissReason::kEntryStale);
          continue;
        }
        MissReason candidate_reason = MissReason::kNone;
        auto plan = MatchQueries(entry->descriptor, entry->result->columns(),
                                 q, &candidate_reason);
        if (!plan.has_value()) {
          miss_reason = std::max(miss_reason, candidate_reason);
          continue;
        }
        // Weight the post-processing estimate by the stored row count.
        plan->post_cost = (plan->post_cost + 1) * entry->result->num_rows();
        // Among admissible candidates a fresh one always beats a stale
        // one; post_cost only breaks ties within the same freshness.
        bool better =
            best == nullptr ||
            (best_stale && !is_stale) ||
            (best_stale == is_stale && plan->post_cost < best_plan.post_cost);
        if (options_.strategy == MatchStrategy::kFirstMatch) {
          if (best == nullptr || (best_stale && !is_stale)) {
            best = entry;
            best_plan = std::move(*plan);
            best_age = age;
            best_stale = is_stale;
          }
          if (!best_stale) break;
          continue;
        }
        if (better) {
          best = entry;
          best_plan = std::move(*plan);
          best_age = age;
          best_stale = is_stale;
        }
      }
    }
    if (best != nullptr) best_table = best->result;
  }

  if (best == nullptr) {
    CountMiss(miss_reason, q, ctx);
    return std::nullopt;
  }

  // Derived hit: the roll-up/filter/top-n recipe runs outside the lock on
  // the immutable snapshot, so concurrent lookups in this shard proceed.
  auto apply_start = std::chrono::steady_clock::now();
  auto result = ApplyMatchPlan(*best_table, best_plan, q);
  if (ctx.metrics_enabled()) {
    ctx.Observe("cache.intelligent.derived_apply_us",
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - apply_start)
                    .count());
  }
  if (!result.ok()) {
    CountMiss(MissReason::kPostProcessFailed, q, ctx);
    return std::nullopt;
  }
  {
    // Re-acquire briefly to credit the source entry; it may have been
    // evicted while we post-processed — then there is nothing to credit.
    TimedLockGuard lock(shard.mu, ctx, "cache.intelligent.lock_wait_us");
    if (!best->evicted) {
      best->usage.last_used_tick = tick;
      ++best->usage.hits;
      ++best->heap_seq;
    }
  }
  if (best_stale) {
    stats_.stale_hits.fetch_add(1, std::memory_order_relaxed);
    ctx.Count("cache.intelligent.stale_hit");
    if (ctx.metrics_enabled()) {
      ctx.Observe("cache.intelligent.stale_age_ms", best_age);
    }
  } else {
    stats_.derived_hits.fetch_add(1, std::memory_order_relaxed);
    ctx.Count("cache.intelligent.derived_hit");
  }
  if (ctx.log_enabled()) {
    // Match-plan summary: which post-processing steps ran.
    std::string summary = std::string(best_stale ? "stale-" : "") +
                          "derived-hit view=" + q.view;
    if (best_stale) summary += " age_ms=" + std::to_string(best_age);
    if (best_plan.needs_rollup) summary += " rollup";
    if (!best_plan.residual_filters.empty()) {
      summary += " residual_filters=" +
                 std::to_string(best_plan.residual_filters.size());
    }
    if (best_plan.apply_order_limit) summary += " order_limit";
    summary +=
        " stored_rows=" + std::to_string(best_table->num_rows()) +
        " rows=" + std::to_string(result->num_rows());
    ctx.LogEvent("cache.intelligent", std::move(summary));
  }
  return CacheHit{std::make_shared<const ResultTable>(*std::move(result)),
                  /*exact=*/false, best_age, best_stale};
}

void IntelligentCache::CountMiss(MissReason reason, const AbstractQuery& q,
                                 const ExecContext& ctx) {
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  stats_.miss_reasons[static_cast<int>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  ctx.Count("cache.intelligent.miss");
  if (ctx.metrics_enabled()) {
    ctx.Count(std::string("cache.intelligent.miss.") +
              MissReasonToString(reason));
  }
  if (ctx.log_enabled()) {
    ctx.LogEvent("cache.intelligent",
                 std::string("miss view=") + q.view + " reason=" +
                     MissReasonToString(reason));
  }
}

std::optional<ResultTable> IntelligentCache::Lookup(const AbstractQuery& q,
                                                    const ExecContext& ctx) {
  auto hit = LookupHit(q, ctx);
  if (!hit.has_value()) return std::nullopt;
  return *hit->table;  // copy happens outside any shard lock
}

void IntelligentCache::Put(const AbstractQuery& q, ResultTable result,
                           double eval_cost_ms, const ExecContext& ctx) {
  ctx.Count("cache.intelligent.insert_attempts");
  if (eval_cost_ms < options_.min_eval_cost_ms) return;
  int64_t bytes = result.ApproxBytes();
  if (bytes > options_.max_result_bytes) return;
  int64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;

  auto entry = std::make_shared<Entry>();
  entry->descriptor = q;
  entry->result = std::make_shared<const ResultTable>(std::move(result));
  entry->stored_at = std::chrono::steady_clock::now();
  entry->usage.inserted_tick = tick;
  entry->usage.last_used_tick = tick;
  entry->usage.eval_cost_ms = eval_cost_ms;
  entry->usage.bytes = bytes;
  entry->key = q.ToKeyString();
  entry->bucket_key = q.data_source + "\x1f" + q.view;

  Shard& shard = ShardFor(entry->bucket_key);
  {
    TimedLockGuard lock(shard.mu, ctx, "cache.intelligent.lock_wait_us");
    if (shard.by_key.find(entry->key) != shard.by_key.end()) {
      return;  // already cached
    }
    shard.buckets[entry->bucket_key].push_back(entry);
    shard.by_key[entry->key] = entry;
    shard.bytes += bytes;
    shard.heap.Push(entry, options_.eviction);
    if (ctx.metrics_enabled()) {
      ctx.Observe("cache.intelligent.shard_occupancy",
                  static_cast<double>(shard.by_key.size()));
    }
  }
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  EvictIfNeeded(ctx);
}

void IntelligentCache::RemoveLocked(Shard& shard,
                                    const std::shared_ptr<Entry>& entry) {
  entry->evicted = true;
  shard.by_key.erase(entry->key);
  auto bit = shard.buckets.find(entry->bucket_key);
  if (bit != shard.buckets.end()) {
    auto& bucket = bit->second;
    bucket.erase(std::remove(bucket.begin(), bucket.end(), entry),
                 bucket.end());
    if (bucket.empty()) shard.buckets.erase(bit);
  }
  shard.bytes -= entry->usage.bytes;
}

void IntelligentCache::EvictIfNeeded(const ExecContext& ctx) {
  // Round-robin over shards, holding one lock at a time; within a shard
  // the lazy-deletion heap yields the shard-local best victim in O(log n).
  // (Victim selection is best-in-shard, not best-overall — the standard
  // sharded-LRU trade; uniform hashing keeps shards statistically alike.)
  while (total_bytes_.load(std::memory_order_relaxed) > options_.max_bytes) {
    bool evicted_any = false;
    size_t start = evict_cursor_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0;
         i < shards_.size() &&
         total_bytes_.load(std::memory_order_relaxed) > options_.max_bytes;
         ++i) {
      Shard& shard = *shards_[(start + i) % shards_.size()];
      TimedLockGuard lock(shard.mu, ctx, "cache.intelligent.lock_wait_us");
      while (total_bytes_.load(std::memory_order_relaxed) >
             options_.max_bytes) {
        std::shared_ptr<Entry> victim = shard.heap.PopVictim(options_.eviction);
        if (victim == nullptr) break;  // shard drained
        RemoveLocked(shard, victim);
        total_bytes_.fetch_sub(victim->usage.bytes,
                               std::memory_order_relaxed);
        stats_.evictions.fetch_add(1, std::memory_order_relaxed);
        evicted_any = true;
      }
    }
    if (!evicted_any) break;  // every shard empty; nothing left to drop
  }
}

void IntelligentCache::InvalidateDataSource(const std::string& data_source) {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto bit = shard.buckets.begin(); bit != shard.buckets.end();) {
      const std::string& key = bit->first;
      std::string src = key.substr(0, key.find('\x1f'));
      if (src == data_source) {
        for (const std::shared_ptr<Entry>& entry : bit->second) {
          entry->evicted = true;
          shard.by_key.erase(entry->key);
          shard.bytes -= entry->usage.bytes;
          total_bytes_.fetch_sub(entry->usage.bytes,
                                 std::memory_order_relaxed);
          stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
        }
        bit = shard.buckets.erase(bit);
      } else {
        ++bit;
      }
    }
  }
}

void IntelligentCache::Clear() {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.by_key) entry->evicted = true;
    total_bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.by_key.clear();
    shard.buckets.clear();
    shard.heap.Clear();
    shard.bytes = 0;
  }
  SetStatsForRestore(CacheStats{});
}

CacheStats IntelligentCache::stats() const {
  CacheStats out;
  out.exact_hits = stats_.exact_hits.load(std::memory_order_relaxed);
  out.derived_hits = stats_.derived_hits.load(std::memory_order_relaxed);
  out.stale_hits = stats_.stale_hits.load(std::memory_order_relaxed);
  out.misses = stats_.misses.load(std::memory_order_relaxed);
  out.evictions = stats_.evictions.load(std::memory_order_relaxed);
  out.inserts = stats_.inserts.load(std::memory_order_relaxed);
  out.invalidations = stats_.invalidations.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumMissReasons; ++i) {
    out.miss_reasons[i] =
        stats_.miss_reasons[i].load(std::memory_order_relaxed);
  }
  return out;
}

void IntelligentCache::SetStatsForRestore(const CacheStats& stats) {
  stats_.exact_hits.store(stats.exact_hits, std::memory_order_relaxed);
  stats_.derived_hits.store(stats.derived_hits, std::memory_order_relaxed);
  stats_.stale_hits.store(stats.stale_hits, std::memory_order_relaxed);
  stats_.misses.store(stats.misses, std::memory_order_relaxed);
  stats_.evictions.store(stats.evictions, std::memory_order_relaxed);
  stats_.inserts.store(stats.inserts, std::memory_order_relaxed);
  stats_.invalidations.store(stats.invalidations, std::memory_order_relaxed);
  for (int i = 0; i < kNumMissReasons; ++i) {
    stats_.miss_reasons[i].store(stats.miss_reasons[i],
                                 std::memory_order_relaxed);
  }
}

int64_t IntelligentCache::num_entries() const {
  int64_t n = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->by_key.size());
  }
  return n;
}

std::vector<int64_t> IntelligentCache::ShardOccupancy() const {
  std::vector<int64_t> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.push_back(static_cast<int64_t>(shard->by_key.size()));
  }
  return out;
}

std::vector<IntelligentCache::Snapshot> IntelligentCache::TakeSnapshot()
    const {
  std::vector<Snapshot> out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->by_key) {
      out.push_back(Snapshot{entry->descriptor, *entry->result,
                             entry->usage.eval_cost_ms});
    }
  }
  return out;
}

void IntelligentCache::Restore(std::vector<Snapshot> entries) {
  for (Snapshot& s : entries) {
    Put(s.descriptor, std::move(s.result), s.eval_cost_ms);
  }
}

}  // namespace vizq::cache
