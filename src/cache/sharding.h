// Shared machinery for the sharded query caches (§3.2 under multi-user
// load): shard-count normalization, key-to-shard hashing, a mutex guard
// that reports lock-wait time to the request's ExecContext, and the
// lazy-deletion eviction heap both caches use.
//
// Locking protocol (see DESIGN.md "Cache sharding"):
//   * every public cache operation holds at most ONE shard mutex at a
//     time — cross-shard work (invalidation, clears, snapshots, eviction
//     sweeps) locks shards strictly sequentially, so lock-order deadlock
//     is impossible by construction;
//   * cross-shard totals (bytes, stats, the logical tick) are plain
//     atomics, never guarded by shard mutexes.

#ifndef VIZQUERY_CACHE_SHARDING_H_
#define VIZQUERY_CACHE_SHARDING_H_

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cache/eviction.h"
#include "src/common/exec_context.h"

namespace vizq::cache {

// Clamps a requested shard count to a power of two in [1, 256]; 0 picks
// the default. Power-of-two counts make shard selection a mask.
inline int NormalizeShardCount(int requested) {
  if (requested <= 0) requested = 16;
  requested = std::min(requested, 256);
  int pow2 = 1;
  while (pow2 < requested) pow2 <<= 1;
  return pow2;
}

inline size_t ShardIndexFor(const std::string& key, int num_shards) {
  return std::hash<std::string>{}(key) & static_cast<size_t>(num_shards - 1);
}

// std::lock_guard that optionally times the acquisition and reports it as
// a microsecond histogram on the context (e.g. cache.intelligent.
// lock_wait_us). The clock is only read when the context has metrics, so
// benchmark hot paths running under ExecContext::Background() pay nothing.
// Only waits of at least 1 µs are reported: the metric is a contention
// signal, and recording every uncontended ~20 ns acquire would both
// drown it in noise and put two metric updates on the cache hot path.
class TimedLockGuard {
 public:
  TimedLockGuard(std::mutex& mu, const ExecContext& ctx,
                 const char* wait_metric)
      : mu_(mu) {
    if (ctx.metrics_enabled()) {
      auto start = std::chrono::steady_clock::now();
      mu_.lock();
      double us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (us >= 1.0) ctx.Observe(wait_metric, us);
    } else {
      mu_.lock();
    }
  }
  TimedLockGuard(const TimedLockGuard&) = delete;
  TimedLockGuard& operator=(const TimedLockGuard&) = delete;
  ~TimedLockGuard() {
    if (!released_) mu_.unlock();
  }

  // Unlocks before scope exit (idempotent) — lets a hit path drop the
  // shard lock before formatting breadcrumbs.
  void Release() {
    if (!released_) {
      mu_.unlock();
      released_ = true;
    }
  }

 private:
  std::mutex& mu_;
  bool released_ = false;
};

// A max-heap of eviction candidates with lazy deletion. Entries carry a
// `heap_seq` bumped on every usage change and an `evicted` flag set when
// they leave the cache; heap nodes remember the seq they were pushed
// with. PopVictim discards nodes whose entry died and *re-pushes* nodes
// whose priority went stale (a hit made the entry less evictable), so the
// heap holds at most one node per live entry and eviction stays O(log n)
// amortized. EntryT must expose: `EntryUsage usage`, `uint64_t heap_seq`,
// `bool evicted`. All calls must hold the owning shard's mutex.
template <typename EntryT>
class EvictionHeap {
 public:
  void Push(const std::shared_ptr<EntryT>& entry,
            const EvictionConfig& config) {
    nodes_.push_back(Node{EvictionPriority(entry->usage, config),
                          entry->heap_seq, entry});
    std::push_heap(nodes_.begin(), nodes_.end());
  }

  // Highest-priority live entry, removed from the heap; nullptr when no
  // live entry remains. The caller evicts it (and sets entry->evicted).
  std::shared_ptr<EntryT> PopVictim(const EvictionConfig& config) {
    while (!nodes_.empty()) {
      std::pop_heap(nodes_.begin(), nodes_.end());
      Node node = std::move(nodes_.back());
      nodes_.pop_back();
      std::shared_ptr<EntryT> entry = node.entry.lock();
      if (entry == nullptr || entry->evicted) continue;  // lazy deletion
      if (node.seq != entry->heap_seq) {
        // Stale priority (the entry was touched since this node was
        // pushed): reinsert at its current, lower priority.
        Push(entry, config);
        continue;
      }
      return entry;
    }
    return nullptr;
  }

  void Clear() { nodes_.clear(); }
  size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    double priority = 0;  // higher pops first
    uint64_t seq = 0;
    std::weak_ptr<EntryT> entry;  // weak: must not pin evicted results
    bool operator<(const Node& other) const {
      return priority < other.priority;
    }
  };
  std::vector<Node> nodes_;
};

}  // namespace vizq::cache

#endif  // VIZQUERY_CACHE_SHARDING_H_
