// Cache persistence (§3.2): "In Tableau Desktop query caches get persisted
// to enable fast response times across different sessions with the
// application." Serializes both caches into a single file and restores
// them at startup.

#ifndef VIZQUERY_CACHE_PERSISTENCE_H_
#define VIZQUERY_CACHE_PERSISTENCE_H_

#include <string>

#include "src/cache/intelligent_cache.h"
#include "src/cache/literal_cache.h"

namespace vizq::cache {

// Serializes both caches' live entries into a byte image / file.
std::string SerializeCaches(const IntelligentCache& intelligent,
                            const LiteralCache& literal);
Status SaveCachesToFile(const IntelligentCache& intelligent,
                        const LiteralCache& literal, const std::string& path);

// Restores entries into the given caches (admission/eviction policies of
// the receiving caches still apply).
Status DeserializeCaches(const std::string& bytes,
                         IntelligentCache* intelligent, LiteralCache* literal);
Status LoadCachesFromFile(const std::string& path,
                          IntelligentCache* intelligent,
                          LiteralCache* literal);

}  // namespace vizq::cache

#endif  // VIZQUERY_CACHE_PERSISTENCE_H_
