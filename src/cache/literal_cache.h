// The literal query cache (§3.2): keyed on the final query text, it
// catches internal queries that end up with the same textual
// representation "where a match could not be proven upfront without
// performing complete query compilation" — e.g. two structurally different
// queries that collapse to the same SQL after predicate simplification or
// join culling.

#ifndef VIZQUERY_CACHE_LITERAL_CACHE_H_
#define VIZQUERY_CACHE_LITERAL_CACHE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/eviction.h"
#include "src/common/exec_context.h"
#include "src/common/result_table.h"

namespace vizq::cache {

struct LiteralCacheOptions {
  int64_t max_bytes = 128 << 20;
  double min_eval_cost_ms = 0.0;
  int64_t max_result_bytes = 64 << 20;
  EvictionConfig eviction;
};

class LiteralCache {
 public:
  explicit LiteralCache(LiteralCacheOptions options = {})
      : options_(options) {}

  // Counts the outcome on `ctx` (cache.literal.hit / miss).
  std::optional<ResultTable> Lookup(
      const std::string& query_text,
      const ExecContext& ctx = ExecContext::Background());
  void Put(const std::string& query_text, ResultTable result,
           double eval_cost_ms, const std::string& data_source = "",
           const ExecContext& ctx = ExecContext::Background());

  // Purges entries recorded against `data_source` (connection close /
  // refresh semantics, §3.2).
  void InvalidateDataSource(const std::string& data_source);
  void Clear();

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t num_entries() const;
  int64_t total_bytes() const { return total_bytes_; }

  struct Snapshot {
    std::string query_text;
    std::string data_source;
    ResultTable result;
    double eval_cost_ms;
  };
  std::vector<Snapshot> TakeSnapshot() const;
  void Restore(std::vector<Snapshot> entries);

 private:
  struct Entry {
    ResultTable result;
    std::string data_source;
    EntryUsage usage;
  };

  void EvictIfNeeded();

  LiteralCacheOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  int64_t total_bytes_ = 0;
  int64_t tick_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace vizq::cache

#endif  // VIZQUERY_CACHE_LITERAL_CACHE_H_
