// The literal query cache (§3.2): keyed on the final query text, it
// catches internal queries that end up with the same textual
// representation "where a match could not be proven upfront without
// performing complete query compilation" — e.g. two structurally different
// queries that collapse to the same SQL after predicate simplification or
// join culling.
//
// Thread-safe, lock-striped by the hash of the query text. Hits return a
// refcounted snapshot of the stored result (no row copies under any
// lock); eviction uses the shared lazy-deletion heap (sharding.h).

#ifndef VIZQUERY_CACHE_LITERAL_CACHE_H_
#define VIZQUERY_CACHE_LITERAL_CACHE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/eviction.h"
#include "src/cache/sharding.h"
#include "src/common/exec_context.h"
#include "src/common/result_table.h"

namespace vizq::cache {

struct LiteralCacheOptions {
  int64_t max_bytes = 128 << 20;
  double min_eval_cost_ms = 0.0;
  int64_t max_result_bytes = 64 << 20;
  EvictionConfig eviction;
  // Lock striping width; normalized to a power of two in [1, 256], 0 =
  // default (16).
  int num_shards = 0;
};

class LiteralCache {
 public:
  explicit LiteralCache(LiteralCacheOptions options = {});

  // Shared-snapshot lookup: a hit bumps a refcount instead of copying the
  // rows. Counts the outcome on `ctx` (cache.literal.hit / miss) and
  // observes cache.literal.lock_wait_us.
  std::shared_ptr<const ResultTable> LookupShared(
      const std::string& query_text,
      const ExecContext& ctx = ExecContext::Background());

  // Copying convenience wrapper; the copy happens outside any shard lock.
  std::optional<ResultTable> Lookup(
      const std::string& query_text,
      const ExecContext& ctx = ExecContext::Background());

  void Put(const std::string& query_text, ResultTable result,
           double eval_cost_ms, const std::string& data_source = "",
           const ExecContext& ctx = ExecContext::Background());

  // Purges entries recorded against `data_source` (connection close /
  // refresh semantics, §3.2).
  void InvalidateDataSource(const std::string& data_source);
  // Drops every entry AND resets hit/miss/invalidation counters.
  void Clear();

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  int64_t num_entries() const;
  int64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::vector<int64_t> ShardOccupancy() const;

  struct Snapshot {
    std::string query_text;
    std::string data_source;
    ResultTable result;
    double eval_cost_ms;
  };
  std::vector<Snapshot> TakeSnapshot() const;
  void Restore(std::vector<Snapshot> entries);
  // Persistence: overwrite the counters after a Restore() (SET
  // semantics) so round-tripped stats survive the reload intact.
  void SetStatsForRestore(int64_t hits, int64_t misses,
                          int64_t invalidations);

 private:
  struct Entry {
    std::shared_ptr<const ResultTable> result;
    std::string data_source;
    EntryUsage usage;
    uint64_t heap_seq = 0;
    bool evicted = false;
    std::string text;  // owning copy of the key, for map removal
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<Entry>> entries;
    EvictionHeap<Entry> heap;
    int64_t bytes = 0;
  };

  Shard& ShardFor(const std::string& text) {
    return *shards_[ShardIndexFor(text, static_cast<int>(shards_.size()))];
  }

  // Must be called with NO shard lock held.
  void EvictIfNeeded(const ExecContext& ctx);

  LiteralCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> total_bytes_{0};
  std::atomic<int64_t> tick_{0};
  std::atomic<size_t> evict_cursor_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> invalidations_{0};
};

}  // namespace vizq::cache

#endif  // VIZQUERY_CACHE_LITERAL_CACHE_H_
