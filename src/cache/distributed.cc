#include "src/cache/distributed.h"

namespace vizq::cache {

DistributedCacheTier::DistributedCacheTier()
    : DistributedCacheTier(Options()) {}

std::optional<std::string> DistributedCacheTier::Get(const std::string& key) {
  std::string value;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++gets_;
    auto it = store_.find(key);
    if (it != store_.end()) {
      value = it->second;
      found = true;
      ++hits_;
    }
  }
  net_.Charge(found ? static_cast<int64_t>(value.size()) : 0);
  if (!found) return std::nullopt;
  return value;
}

void DistributedCacheTier::Put(const std::string& key, std::string value) {
  int64_t payload = static_cast<int64_t>(value.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++puts_;
    auto it = store_.find(key);
    if (it != store_.end()) {
      total_bytes_ -= static_cast<int64_t>(it->second.size());
      it->second = std::move(value);
      total_bytes_ += payload;
    } else {
      store_.emplace(key, std::move(value));
      total_bytes_ += payload;
    }
    // Crude capacity control: drop arbitrary entries when over budget
    // (Redis-style maxmemory eviction).
    while (total_bytes_ > options_.max_bytes && !store_.empty()) {
      auto victim = store_.begin();
      total_bytes_ -= static_cast<int64_t>(victim->second.size());
      store_.erase(victim);
    }
  }
  net_.Charge(payload);
}

void DistributedCacheTier::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  if (it != store_.end()) {
    total_bytes_ -= static_cast<int64_t>(it->second.size());
    store_.erase(it);
  }
}

int64_t DistributedCacheTier::EraseNamespace(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  // std::map is ordered, so the namespace is one contiguous key range.
  auto it = store_.lower_bound(prefix);
  while (it != store_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    total_bytes_ -= static_cast<int64_t>(it->second.size());
    it = store_.erase(it);
    ++dropped;
  }
  return dropped;
}

void DistributedCacheTier::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  store_.clear();
  total_bytes_ = 0;
}

std::string SharedKey(const query::AbstractQuery& q) {
  return SharedKeyPrefix(q.view) + q.ToKeyString();
}

std::string SharedKeyPrefix(const std::string& view) {
  return view + '\x1f';
}

std::optional<ResultTable> NodeCacheLayer::Lookup(
    const query::AbstractQuery& q) {
  auto local_hit = local_.Lookup(q);
  if (local_hit.has_value()) return local_hit;
  if (shared_ == nullptr) return std::nullopt;
  auto remote = shared_->Get(SharedKey(q));
  if (!remote.has_value()) return std::nullopt;
  auto table = ResultTable::Deserialize(*remote);
  if (!table.ok()) return std::nullopt;
  ++shared_hits_;
  // Warm the local tier; the remote entry is known-expensive enough to
  // have been cached once already.
  local_.Put(q, *table, /*eval_cost_ms=*/1.0);
  return *std::move(table);
}

void NodeCacheLayer::Put(const query::AbstractQuery& q, ResultTable result,
                         double eval_cost_ms) {
  if (shared_ != nullptr) {
    shared_->Put(SharedKey(q), result.Serialize());
  }
  local_.Put(q, std::move(result), eval_cost_ms);
}

}  // namespace vizq::cache
