#include "src/cache/distributed.h"

#include <chrono>
#include <thread>

namespace vizq::cache {

DistributedCacheTier::DistributedCacheTier()
    : DistributedCacheTier(Options()) {}

void DistributedCacheTier::ChargeLatency(int64_t payload_bytes) {
  double ms = options_.rtt_ms +
              options_.per_kb_ms * static_cast<double>(payload_bytes) / 1024.0;
  simulated_ms_ += ms;
  if (options_.simulate_latency) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
  }
}

std::optional<std::string> DistributedCacheTier::Get(const std::string& key) {
  std::string value;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++gets_;
    auto it = store_.find(key);
    if (it != store_.end()) {
      value = it->second;
      found = true;
      ++hits_;
    }
  }
  ChargeLatency(found ? static_cast<int64_t>(value.size()) : 0);
  if (!found) return std::nullopt;
  return value;
}

void DistributedCacheTier::Put(const std::string& key, std::string value) {
  int64_t payload = static_cast<int64_t>(value.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++puts_;
    auto it = store_.find(key);
    if (it != store_.end()) {
      total_bytes_ -= static_cast<int64_t>(it->second.size());
      it->second = std::move(value);
      total_bytes_ += payload;
    } else {
      store_.emplace(key, std::move(value));
      total_bytes_ += payload;
    }
    // Crude capacity control: drop arbitrary entries when over budget
    // (Redis-style maxmemory eviction).
    while (total_bytes_ > options_.max_bytes && !store_.empty()) {
      auto victim = store_.begin();
      total_bytes_ -= static_cast<int64_t>(victim->second.size());
      store_.erase(victim);
    }
  }
  ChargeLatency(payload);
}

void DistributedCacheTier::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  if (it != store_.end()) {
    total_bytes_ -= static_cast<int64_t>(it->second.size());
    store_.erase(it);
  }
}

void DistributedCacheTier::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  store_.clear();
  total_bytes_ = 0;
}

std::optional<ResultTable> NodeCacheLayer::Lookup(
    const query::AbstractQuery& q) {
  auto local_hit = local_.Lookup(q);
  if (local_hit.has_value()) return local_hit;
  if (shared_ == nullptr) return std::nullopt;
  auto remote = shared_->Get(q.ToKeyString());
  if (!remote.has_value()) return std::nullopt;
  auto table = ResultTable::Deserialize(*remote);
  if (!table.ok()) return std::nullopt;
  ++shared_hits_;
  // Warm the local tier; the remote entry is known-expensive enough to
  // have been cached once already.
  local_.Put(q, *table, /*eval_cost_ms=*/1.0);
  return *std::move(table);
}

void NodeCacheLayer::Put(const query::AbstractQuery& q, ResultTable result,
                         double eval_cost_ms) {
  if (shared_ != nullptr) {
    shared_->Put(q.ToKeyString(), result.Serialize());
  }
  local_.Put(q, std::move(result), eval_cost_ms);
}

}  // namespace vizq::cache
