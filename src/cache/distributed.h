// The distributed cache layer (§3.2): "Tableau Server does not persist the
// caches but it utilizes a distributed layer based on REDIS or Cassandra
// ... This allows sharing data across nodes in the cluster and keeping
// data warm regardless of which node handles particular requests. For
// efficiency, recent entries are also stored in memory on the nodes."
//
// DistributedCacheTier substitutes for Redis/Cassandra: a shared,
// thread-safe KV store whose operations pay a modeled network cost
// (rpc::NetworkCostModel — the same model the in-process RPC transport
// charges, so the two remote hops cannot drift apart; really slept, so
// end-to-end benches see genuine latency). NodeCacheLayer is one worker
// node's view: an in-memory IntelligentCache in front of the shared tier.
//
// Keys are namespaced per published source (SharedKey): a query's entry
// lives under "<view>\x1f<query key>", so a cluster rebalance can
// invalidate everything a moved source ever published with one
// EraseNamespace(SharedKeyPrefix(view)) — the no-stale-owner guarantee
// cluster_test checks.

#ifndef VIZQUERY_CACHE_DISTRIBUTED_H_
#define VIZQUERY_CACHE_DISTRIBUTED_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/cache/intelligent_cache.h"
#include "src/rpc/netmodel.h"

namespace vizq::cache {

class DistributedCacheTier {
 public:
  struct Options {
    // Latency/bandwidth knobs shared with the RPC layer (src/rpc/).
    rpc::NetworkCostOptions net;
    int64_t max_bytes = 1LL << 30;
  };

  DistributedCacheTier();  // default Options
  explicit DistributedCacheTier(Options options)
      : options_(options), net_(options.net) {}

  std::optional<std::string> Get(const std::string& key);
  void Put(const std::string& key, std::string value);
  void Erase(const std::string& key);
  // Drops every entry whose key starts with `prefix` and returns how many
  // were dropped. Rebalance invalidation: erase a moved source's whole
  // namespace so no node can serve its pre-move entries.
  int64_t EraseNamespace(const std::string& prefix);
  void Clear();

  int64_t gets() const { return gets_; }
  int64_t hits() const { return hits_; }
  int64_t puts() const { return puts_; }
  // Total simulated network time spent against this tier.
  double simulated_ms() const { return net_.simulated_ms(); }

 private:
  Options options_;
  rpc::NetworkCostModel net_;
  std::mutex mu_;
  std::map<std::string, std::string> store_;
  int64_t total_bytes_ = 0;
  int64_t gets_ = 0;
  int64_t hits_ = 0;
  int64_t puts_ = 0;
};

// The shared-tier key for one query's cached result: the owning view's
// namespace followed by the query's canonical key. \x1f (unit separator)
// cannot appear in a view name, so namespaces cannot collide by prefix.
std::string SharedKey(const query::AbstractQuery& q);
// Every key of `view` starts with this prefix (and no other view's does).
std::string SharedKeyPrefix(const std::string& view);

// One cluster node's cache stack: local in-memory intelligent cache backed
// by the shared tier. The shared tier stores exact-key entries (it is a
// plain KV store); subsumption matching happens against the local cache.
class NodeCacheLayer {
 public:
  NodeCacheLayer(std::string node_name,
                 std::shared_ptr<DistributedCacheTier> shared,
                 IntelligentCacheOptions local_options = {})
      : node_name_(std::move(node_name)),
        shared_(std::move(shared)),
        local_(local_options) {}

  // Local lookup (incl. subsumption), then shared-tier exact lookup. A
  // shared hit is pulled into the local cache ("recent entries are also
  // stored in memory on the nodes").
  std::optional<ResultTable> Lookup(const query::AbstractQuery& q);

  // Stores locally and publishes to the shared tier.
  void Put(const query::AbstractQuery& q, ResultTable result,
           double eval_cost_ms);

  IntelligentCache& local() { return local_; }
  int64_t shared_hits() const { return shared_hits_; }

 private:
  std::string node_name_;
  std::shared_ptr<DistributedCacheTier> shared_;
  IntelligentCache local_;
  int64_t shared_hits_ = 0;
};

}  // namespace vizq::cache

#endif  // VIZQUERY_CACHE_DISTRIBUTED_H_
