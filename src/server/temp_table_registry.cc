#include "src/server/temp_table_registry.h"

namespace vizq::server {

std::string TempTableRegistry::ContentKey(const query::TempTableSpec& spec,
                                          const std::string& node_scope) {
  std::string key = node_scope + "\x1e" + spec.source_column + "\x1f" +
                    spec.column + "\x1f" +
                    std::to_string(static_cast<int>(spec.type.kind)) + "\x1f";
  for (const Value& v : spec.values) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

std::shared_ptr<const query::TempTableSpec> TempTableRegistry::Acquire(
    const query::TempTableSpec& spec, const std::string& node_scope) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = ContentKey(spec, node_scope);
  auto it = definitions_.find(key);
  if (it != definitions_.end()) {
    ++it->second.refs;
    ++shared_;
    return it->second.def;
  }
  Shared shared;
  shared.def = std::make_shared<const query::TempTableSpec>(spec);
  shared.refs = 1;
  auto def = shared.def;
  definitions_.emplace(std::move(key), std::move(shared));
  return def;
}

void TempTableRegistry::Release(
    const std::shared_ptr<const query::TempTableSpec>& def) {
  if (def == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = definitions_.begin(); it != definitions_.end(); ++it) {
    if (it->second.def == def) {
      if (--it->second.refs <= 0) definitions_.erase(it);
      return;
    }
  }
}

int64_t TempTableRegistry::num_definitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(definitions_.size());
}

int64_t TempTableRegistry::total_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, shared] : definitions_) {
    total += static_cast<int64_t>(shared.def->values.size());
  }
  return total;
}

}  // namespace vizq::server
