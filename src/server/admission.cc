#include "src/server/admission.h"

#include <algorithm>

namespace vizq::server {

void AdmissionController::Ticket::Release() {
  if (ctrl_ != nullptr) {
    ctrl_->Release(session_);
    ctrl_ = nullptr;
  }
}

AdmissionDecision AdmissionController::Admit(uint64_t session_id,
                                             Ticket* ticket,
                                             std::string* reason) {
  auto set_reason = [&](const char* r) {
    if (reason != nullptr) *reason = r;
  };
  std::lock_guard<std::mutex> lock(mu_);
  if (!opts_.enabled) {
    ++stats_.admitted;
    ++stats_.inflight;
    stats_.peak_inflight = std::max(stats_.peak_inflight, stats_.inflight);
    PerSession& s = sessions_[session_id];
    ++s.inflight;
    stats_.peak_session_inflight =
        std::max(stats_.peak_session_inflight, s.inflight);
    *ticket = Ticket(this, session_id);
    return AdmissionDecision::kAdmit;
  }
  if (opts_.max_global_inflight >= 0 &&
      stats_.inflight >= opts_.max_global_inflight) {
    ++stats_.degraded;
    ++stats_.degraded_global;
    set_reason("global_inflight");
    return AdmissionDecision::kDegrade;
  }
  PerSession& s = sessions_[session_id];
  if (opts_.fair && session_id != 0) {
    if (opts_.max_session_inflight > 0 &&
        s.inflight >= opts_.max_session_inflight) {
      ++stats_.degraded;
      ++stats_.degraded_session;
      set_reason("session_inflight");
      return AdmissionDecision::kDegrade;
    }
    if (opts_.credits_per_s > 0) {
      auto now = std::chrono::steady_clock::now();
      if (!s.credits_init) {
        s.credits = opts_.credit_burst;
        s.credits_init = true;
      } else {
        double dt = std::chrono::duration<double>(now - s.last_refill).count();
        s.credits = std::min(opts_.credit_burst,
                             s.credits + dt * opts_.credits_per_s);
      }
      s.last_refill = now;
      if (s.credits < 1.0) {
        ++stats_.degraded;
        ++stats_.degraded_credits;
        set_reason("credits");
        return AdmissionDecision::kDegrade;
      }
      s.credits -= 1.0;
    }
  }
  ++stats_.admitted;
  ++stats_.inflight;
  stats_.peak_inflight = std::max(stats_.peak_inflight, stats_.inflight);
  ++s.inflight;
  stats_.peak_session_inflight =
      std::max(stats_.peak_session_inflight, s.inflight);
  *ticket = Ticket(this, session_id);
  return AdmissionDecision::kAdmit;
}

void AdmissionController::Release(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.inflight;
  auto it = sessions_.find(session);
  if (it != sessions_.end()) {
    if (--it->second.inflight <= 0 && it->second.credits_init == false) {
      sessions_.erase(it);
    }
  }
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AdmissionController::set_fair(bool fair) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.fair = fair;
}

}  // namespace vizq::server
