// Fair admission control for interactive request serving.
//
// With thousands of sessions sharing one server process, a handful of
// greedy clients (dashboards auto-refreshing in a loop, runaway scripted
// tenants) can queue enough work to starve everyone else. The admission
// controller sits in front of the query pipeline and decides, per request:
//
//   * kAdmit   — run the full pipeline; the caller holds an RAII Ticket
//                that releases the in-flight claim when the request ends.
//   * kDegrade — the server is saturated (global cap), the session is
//                hogging (per-session cap), or the session has spent its
//                credit allowance. The caller should fall down the
//                load-shed ladder (stale / derived cache answers, then a
//                typed shed) instead of queueing more backend work.
//
// Fairness is two mechanisms, independently toggleable:
//   * per-session in-flight cap: one session can hold at most
//     `max_session_inflight` admitted requests concurrently;
//   * per-session credit bucket: `credits_per_s` tokens refill up to
//     `credit_burst`; each admission spends one. A polite session with
//     human think times never exhausts it, a tight-loop client does.
//
// Everything is a pure in-memory decision — no blocking, no timers — so
// it can sit on the request hot path.

#ifndef VIZQUERY_SERVER_ADMISSION_H_
#define VIZQUERY_SERVER_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace vizq::server {

struct AdmissionOptions {
  // Master switch: disabled admits everything (the ablation baseline).
  bool enabled = true;
  // Per-session fairness (in-flight cap + credit bucket). Off leaves only
  // the global cap — the "unfair" configuration the fairness test reverts
  // to, to prove the mechanism is what bounds the polite session's tail.
  bool fair = true;
  // Global concurrent-admission cap. < 0 = unlimited; 0 admits nothing,
  // which forces every request down the shed ladder (the stale_shed fuzz
  // lane's overload injection).
  int max_global_inflight = 64;
  int max_session_inflight = 4;  // 0 = unlimited; needs `fair`
  // Credit bucket per session; 0 disables the credit throttle.
  double credits_per_s = 0.0;
  double credit_burst = 8.0;
};

enum class AdmissionDecision : uint8_t { kAdmit, kDegrade };

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions opts = {}) : opts_(opts) {}

  // RAII in-flight claim. Default-constructed = not admitted. Destruction
  // (or Release) returns the claim; safe to destroy after the controller
  // only if Release was called first, so keep tickets inside the
  // controller's lifetime (the frontend owns both).
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : ctrl_(o.ctrl_), session_(o.session_) {
      o.ctrl_ = nullptr;
    }
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        Release();
        ctrl_ = o.ctrl_;
        session_ = o.session_;
        o.ctrl_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool admitted() const { return ctrl_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* c, uint64_t session)
        : ctrl_(c), session_(session) {}
    AdmissionController* ctrl_ = nullptr;
    uint64_t session_ = 0;
  };

  // Decides for one request of `session_id` (0 = sessionless, exempt from
  // per-session fairness). On kAdmit fills `*ticket`; on kDegrade leaves
  // it empty and, when `reason` is non-null, names the binding limit
  // ("global_inflight" / "session_inflight" / "credits").
  AdmissionDecision Admit(uint64_t session_id, Ticket* ticket,
                          std::string* reason = nullptr);

  struct Stats {
    int64_t admitted = 0;
    int64_t degraded = 0;
    int64_t degraded_global = 0;
    int64_t degraded_session = 0;
    int64_t degraded_credits = 0;
    int64_t inflight = 0;       // currently admitted
    int64_t peak_inflight = 0;  // high-water mark, global
    // High-water mark of any single session's concurrent admissions; with
    // `fair` on this never exceeds max_session_inflight (the invariant
    // bench_traffic --selftest checks).
    int64_t peak_session_inflight = 0;
  };
  Stats stats() const;

  const AdmissionOptions& options() const { return opts_; }

  // Test hook: flips fairness at runtime (revert-verify in tests).
  void set_fair(bool fair);

 private:
  struct PerSession {
    int64_t inflight = 0;
    double credits = 0;
    bool credits_init = false;
    std::chrono::steady_clock::time_point last_refill{};
  };

  void Release(uint64_t session);

  AdmissionOptions opts_;
  mutable std::mutex mu_;
  std::map<uint64_t, PerSession> sessions_;
  Stats stats_;
};

}  // namespace vizq::server

#endif  // VIZQUERY_SERVER_ADMISSION_H_
