#include "src/server/data_server.h"

namespace vizq::server {

using dashboard::BatchReport;
using query::AbstractQuery;

// --- ServerSession ---

ServerSession::~ServerSession() { Close(); }

Status ServerSession::CreateTempTable(const std::string& name,
                                      const std::string& column,
                                      DataType type,
                                      std::vector<Value> values) {
  if (closed_) return FailedPrecondition("session is closed");
  if (temps_.find(name) != temps_.end()) {
    return AlreadyExists("temp table '" + name + "' exists in this session");
  }
  if (!server_->options_.enable_in_memory_temp_tables) {
    return Unimplemented("in-memory temp tables are disabled on this server");
  }
  query::TempTableSpec spec;
  spec.name = name;
  spec.column = "v";
  spec.source_column = column;
  spec.type = type;
  spec.values = std::move(values);
  temps_[name] =
      server_->temp_registry_.Acquire(spec, server_->options_.node_id);
  return OkStatus();
}

Status ServerSession::DropTempTable(const std::string& name) {
  auto it = temps_.find(name);
  if (it == temps_.end()) {
    return NotFound("temp table '" + name + "' not found");
  }
  server_->temp_registry_.Release(it->second);
  temps_.erase(it);
  return OkStatus();
}

bool ServerSession::HasTempTable(const std::string& name) const {
  return temps_.find(name) != temps_.end();
}

StatusOr<ResultTable> ServerSession::Query(const ExecContext& ctx,
                                           const ClientQuery& q,
                                           BatchReport* report) {
  if (closed_) return FailedPrecondition("session is closed");
  return server_->ExecuteForSession(ctx, this, q, report);
}

StatusOr<std::vector<ResultTable>> ServerSession::QueryBatch(
    const ExecContext& ctx, const std::vector<ClientQuery>& batch,
    BatchReport* report) {
  if (closed_) return FailedPrecondition("session is closed");
  return server_->ExecuteBatchForSession(ctx, this, batch, report);
}

void ServerSession::Close() {
  if (closed_) return;
  closed_ = true;
  for (auto& [name, def] : temps_) {
    server_->temp_registry_.Release(def);
  }
  temps_.clear();
}

// --- DataServer ---

Status DataServer::Publish(PublishedDataSource source,
                           std::shared_ptr<federation::DataSource> backend) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sources_.find(source.name) != sources_.end()) {
    return AlreadyExists("data source '" + source.name +
                         "' is already published");
  }
  Published published;
  published.caches = std::make_shared<dashboard::CacheStack>();
  published.service = std::make_unique<dashboard::QueryService>(
      backend, published.caches);
  // The published view is registered under the published source's name so
  // client queries address it uniformly.
  query::ViewDefinition view = source.view;
  view.name = source.name;
  VIZQ_RETURN_IF_ERROR(published.service->RegisterView(view));
  published.source = std::move(source);
  sources_.emplace(published.source.name, std::move(published));
  return OkStatus();
}

StatusOr<std::unique_ptr<ServerSession>> DataServer::Connect(
    const std::string& user, const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source);
  if (it == sources_.end()) {
    return NotFound("published data source '" + source + "' not found");
  }
  const PublishedDataSource& pds = it->second.source;
  if (pds.permissions.deny_unlisted_users() &&
      !pds.permissions.HasUser(user)) {
    return FailedPrecondition("user '" + user + "' has no access to '" +
                              source + "'");
  }
  SourceMetadata metadata;
  metadata.source_name = source;
  const query::QueryCompiler* compiler =
      it->second.service->FindCompiler(source);
  if (compiler != nullptr) {
    for (const auto& [name, type] : compiler->view_columns()) {
      metadata.columns.push_back(ResultColumn{name, type});
    }
    metadata.supports_temp_tables =
        options_.enable_in_memory_temp_tables;
  }
  for (const auto& [name, calc] : pds.calculations) {
    metadata.calculation_names.push_back(name);
  }
  // Connect has no per-request context; session churn is a process-level
  // fact, so it goes straight to the global registry.
  if (GlobalMetricsSink* sink = GetGlobalMetricsSink(); sink != nullptr) {
    sink->Add("server.connects", 1);
  }
  return std::unique_ptr<ServerSession>(
      new ServerSession(this, source, user, std::move(metadata)));
}

std::vector<std::string> DataServer::ListSources() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, published] : sources_) out.push_back(name);
  return out;
}

dashboard::QueryService* DataServer::ServiceForTesting(
    const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source);
  return it == sources_.end() ? nullptr : it->second.service.get();
}

StatusOr<AbstractQuery> DataServer::ResolveClientQuery(ServerSession* session,
                                                       const ClientQuery& q) {
  AbstractQuery resolved = q.query;
  resolved.view = session->source_;
  resolved.data_source = session->source_;

  // Expand temp-table references into their server-held enumerations
  // (§5.3: the client sends the name, not the values, "reduced network
  // traffic between the client and the Data Server").
  for (const auto& [column, temp_name] : q.temp_filters) {
    auto it = session->temps_.find(temp_name);
    if (it == session->temps_.end()) {
      return NotFound("session has no temp table '" + temp_name + "'");
    }
    resolved.filters.predicates.push_back(
        query::ColumnPredicate::InSet(column, it->second->values));
    {
      std::lock_guard<std::mutex> lock(mu_);
      values_saved_ += static_cast<int64_t>(it->second->values.size());
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto sit = sources_.find(session->source_);
  if (sit == sources_.end()) {
    return NotFound("published data source vanished");
  }
  const PublishedDataSource& pds = sit->second.source;

  // Expand shared calculations referenced by name.
  for (query::Measure& m : resolved.measures) {
    if (m.column.empty() && m.func == AggFunc::kCountStar) continue;
    auto cit = pds.calculations.find(m.column);
    if (cit != pds.calculations.end()) {
      std::string alias = m.alias.empty() ? m.column : m.alias;
      m = cit->second;
      m.alias = std::move(alias);
    }
  }

  // Row-level permissions merge into the filters; the user cannot weaken
  // them (Normalize() intersects same-column predicates).
  const query::PredicateSet* user_filter =
      pds.permissions.FilterFor(session->user_);
  if (user_filter != nullptr) {
    for (const query::ColumnPredicate& p : user_filter->predicates) {
      resolved.filters.predicates.push_back(p);
    }
  }
  resolved.Canonicalize();
  return resolved;
}

StatusOr<ResultTable> DataServer::ExecuteForSession(const ExecContext& ctx,
                                                    ServerSession* session,
                                                    const ClientQuery& q,
                                                    BatchReport* report) {
  VIZQ_ASSIGN_OR_RETURN(std::vector<ResultTable> results,
                        ExecuteBatchForSession(ctx, session, {q}, report));
  return std::move(results[0]);
}

StatusOr<std::vector<ResultTable>> DataServer::ExecuteBatchForSession(
    const ExecContext& ctx, ServerSession* session,
    const std::vector<ClientQuery>& batch, BatchReport* report) {
  VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("server batch"));
  ctx.Count("server.batches");
  ctx.Count("server.queries", static_cast<int64_t>(batch.size()));
  if (ctx.log_enabled()) {
    ctx.LogEvent("server", "batch source=" + session->source_ + " user=" +
                               session->user_ + " queries=" +
                               std::to_string(batch.size()));
  }
  std::vector<AbstractQuery> resolved;
  resolved.reserve(batch.size());
  int64_t temp_values = 0;
  for (const ClientQuery& q : batch) {
    for (const auto& [column, temp_name] : q.temp_filters) {
      (void)column;
      (void)temp_name;
      ++temp_values;
    }
    VIZQ_ASSIGN_OR_RETURN(AbstractQuery r, ResolveClientQuery(session, q));
    resolved.push_back(std::move(r));
  }
  if (temp_values > 0) {
    ctx.Count("server.temp_filter_expansions", temp_values);
  }
  dashboard::QueryService* service;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sources_.find(session->source_);
    if (it == sources_.end()) {
      return NotFound("published data source vanished");
    }
    service = it->second.service.get();
  }
  return service->ExecuteBatch(ctx, resolved, options_.batch, report);
}

}  // namespace vizq::server
