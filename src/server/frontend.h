// Frontend: the per-request serving path that million-user traffic hits.
//
// Serve(session, ctx, batch) applies fair admission and, when the server
// is saturated, walks a graceful load-shed ladder instead of queueing:
//
//   rung 0  admitted        full pipeline (QueryService::ExecuteBatch)
//   rung 1  stale-exact     cache-only, exact entries up to stale_serve_ms
//   rung 2  stale-derived   cache-only, subsumption roll-ups allowed too
//   rung 3  typed shed      kResourceExhausted — client backs off
//
// The content contract under overload: every response is exact-correct,
// or correctly LABELED stale with a bounded age (ServedFrom::
// kIntelligentCacheStale + QueryReport::age_ms <= stale_serve_ms), or a
// typed shed. Nothing silently wrong, nothing unboundedly old — the
// property the stale_shed fuzz lane checks.
//
// An admitted request that then fails with kResourceExhausted or
// kDeadlineExceeded (scheduler queue shed, pool saturation, deadline past)
// also falls down the ladder: the degraded rungs cost a cache probe, so
// they are still worth trying after the expensive path lost its budget.

#ifndef VIZQUERY_SERVER_FRONTEND_H_
#define VIZQUERY_SERVER_FRONTEND_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/dashboard/query_service.h"
#include "src/server/admission.h"

namespace vizq::server {

struct FrontendOptions {
  AdmissionOptions admission;
  // Freshness bound of the degraded rungs: how old a cache answer may be
  // and still be served (labeled) instead of shed. <= 0 disables the
  // stale rungs — overload goes straight to the typed shed.
  double stale_serve_ms = 15000.0;
  // Base pipeline options for the admitted path; Serve overrides
  // session_id and the ladder fields per call.
  dashboard::BatchOptions batch;
};

// What one Serve call amounted to (the ladder rung that answered).
enum class ServeOutcome : uint8_t {
  kFresh,           // admitted, full pipeline, fresh results
  kStale,           // degraded rung: stale-tolerant exact cache answers
  kDegradedDerived, // degraded rung: at least one derived/roll-up answer
  kShed,            // typed kResourceExhausted, no content
  kError,           // non-shed failure (bad query, backend error)
};
const char* ServeOutcomeName(ServeOutcome o);

struct ServeReport {
  ServeOutcome outcome = ServeOutcome::kError;
  // Why the request left rung 0 (admission reason or the admitted
  // failure's message). Empty for kFresh.
  std::string degrade_reason;
  double wall_ms = 0;
  // Oldest age among served answers (0 when all fresh).
  double max_age_ms = 0;
  dashboard::BatchReport batch;
};

class Frontend {
 public:
  // `service` must outlive the frontend.
  Frontend(dashboard::QueryService* service, FrontendOptions opts = {})
      : service_(service), opts_(opts), admission_(opts.admission) {}

  // Serves one interaction batch for `session_id`. On the shed rung the
  // status is kResourceExhausted and the report outcome is kShed.
  StatusOr<std::vector<ResultTable>> Serve(
      uint64_t session_id, const ExecContext& ctx,
      const std::vector<query::AbstractQuery>& batch,
      ServeReport* report = nullptr);

  AdmissionController& admission() { return admission_; }
  const FrontendOptions& options() const { return opts_; }

  struct Stats {
    int64_t fresh = 0;
    int64_t stale = 0;
    int64_t derived = 0;
    int64_t shed = 0;
    int64_t errors = 0;
  };
  Stats stats() const;

 private:
  // Rungs 1-2; fills `*outcome` with what actually served.
  StatusOr<std::vector<ResultTable>> ServeDegraded(
      uint64_t session_id, const ExecContext& ctx,
      const std::vector<query::AbstractQuery>& batch, ServeReport* report,
      ServeOutcome* outcome);

  dashboard::QueryService* service_;
  FrontendOptions opts_;
  AdmissionController admission_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace vizq::server

#endif  // VIZQUERY_SERVER_FRONTEND_H_
