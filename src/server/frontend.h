// Frontend: the per-request serving path that million-user traffic hits.
//
// Serve(session, ctx, batch) applies fair admission and, when the server
// is saturated, walks a graceful load-shed ladder instead of queueing:
//
//   rung 0  admitted        full pipeline (QueryService::ExecuteBatch)
//   rung 1  stale-exact     cache-only, exact entries up to stale_serve_ms
//   rung 2  stale-derived   cache-only, subsumption roll-ups allowed too
//   rung 3  typed shed      kResourceExhausted — client backs off
//
// The content contract under overload: every response is exact-correct,
// or correctly LABELED stale with a bounded age (ServedFrom::
// kIntelligentCacheStale + QueryReport::age_ms <= stale_serve_ms), or a
// typed shed. Nothing silently wrong, nothing unboundedly old — the
// property the stale_shed fuzz lane checks.
//
// An admitted request that then fails with kResourceExhausted or
// kDeadlineExceeded (scheduler queue shed, pool saturation, deadline past)
// also falls down the ladder: the degraded rungs cost a cache probe, so
// they are still worth trying after the expensive path lost its budget.

#ifndef VIZQUERY_SERVER_FRONTEND_H_
#define VIZQUERY_SERVER_FRONTEND_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/phase_timeline.h"
#include "src/dashboard/query_service.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/server/admission.h"

namespace vizq::server {

struct FrontendOptions {
  AdmissionOptions admission;
  // Freshness bound of the degraded rungs: how old a cache answer may be
  // and still be served (labeled) instead of shed. <= 0 disables the
  // stale rungs — overload goes straight to the typed shed.
  double stale_serve_ms = 15000.0;
  // Deadline-aware admission bypass: a request with less than this much
  // of its deadline left skips the full pipeline (rung 0) and goes
  // straight to the degraded rungs — starting backend work the deadline
  // cannot pay for wastes a slot and still fails the user. At <= 0 only
  // already-expired requests bypass. Sized to cover a typical admitted
  // pipeline pass.
  double min_admit_headroom_ms = 250.0;
  // The interactive SLO this frontend is judged by. Content responses
  // (fresh/stale/derived) within slo.threshold_ms count as good; errors
  // are bad; typed sheds are tracked outside the objective (see
  // obs/slo.h for why). Defaults to the 500 ms interactive budget.
  obs::SloMonitorOptions slo;
  // Base pipeline options for the admitted path; Serve overrides
  // session_id and the ladder fields per call.
  dashboard::BatchOptions batch;
};

// What one Serve call amounted to (the ladder rung that answered).
enum class ServeOutcome : uint8_t {
  kFresh,           // admitted, full pipeline, fresh results
  kStale,           // degraded rung: stale-tolerant exact cache answers
  kDegradedDerived, // degraded rung: at least one derived/roll-up answer
  kShed,            // typed kResourceExhausted, no content
  kError,           // non-shed failure (bad query, backend error)
};
const char* ServeOutcomeName(ServeOutcome o);

struct ServeReport {
  ServeOutcome outcome = ServeOutcome::kError;
  // Why the request left rung 0 (admission reason or the admitted
  // failure's message). Empty for kFresh.
  std::string degrade_reason;
  double wall_ms = 0;
  // Oldest age among served answers (0 when all fresh).
  double max_age_ms = 0;
  dashboard::BatchReport batch;
};

class Frontend {
 public:
  // `service` must outlive the frontend. Any BatchExecutor works: the
  // single-node QueryService or the cluster scatter/gather coordinator —
  // admission and the ladder don't care where execution happens.
  Frontend(dashboard::BatchExecutor* service, FrontendOptions opts = {})
      : service_(service),
        opts_(opts),
        admission_(opts.admission),
        slo_(opts.slo) {}

  // Serves one interaction batch for `session_id`. On the shed rung the
  // status is kResourceExhausted and the report outcome is kShed.
  StatusOr<std::vector<ResultTable>> Serve(
      uint64_t session_id, const ExecContext& ctx,
      const std::vector<query::AbstractQuery>& batch,
      ServeReport* report = nullptr);

  AdmissionController& admission() { return admission_; }
  const FrontendOptions& options() const { return opts_; }
  // Burn-rate view of the interactive SLO, fed by every Serve call.
  obs::SloMonitor& slo() { return slo_; }
  const obs::SloMonitor& slo() const { return slo_; }

  struct Stats {
    int64_t fresh = 0;
    int64_t stale = 0;
    int64_t derived = 0;
    int64_t shed = 0;
    int64_t errors = 0;
  };
  Stats stats() const;

 private:
  // Rungs 1-2; fills `*outcome` with what actually served and `*rung`
  // with the ladder rung (1 exact, 2 derived) that answered.
  StatusOr<std::vector<ResultTable>> ServeDegraded(
      uint64_t session_id, const ExecContext& ctx,
      const std::vector<query::AbstractQuery>& batch, ServeReport* report,
      ServeOutcome* outcome, int* rung);

  dashboard::BatchExecutor* service_;
  FrontendOptions opts_;
  AdmissionController admission_;
  obs::SloMonitor slo_;
  // Per-phase histograms resolved once (the registry endorses caching on
  // hot paths); a string-keyed Observe per phase per request costs more
  // than the timeline itself. Lazily initialized on the first finished
  // request so construction order vs GlobalMetrics() doesn't matter.
  std::once_flag phase_hist_once_;
  obs::Histogram* phase_hist_[kNumPhases] = {};
  obs::Histogram* phase_total_hist_ = nullptr;
  obs::Histogram* phase_unattributed_hist_ = nullptr;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace vizq::server

#endif  // VIZQUERY_SERVER_FRONTEND_H_
