#include "src/server/workbook.h"

namespace vizq::server {

Status WorkbookRepository::PublishExtract(const std::string& source_name,
                                          ExtractRefreshFn refresh) {
  if (published_.find(source_name) != published_.end()) {
    return AlreadyExists("published extract '" + source_name + "' exists");
  }
  PublishedExtract p;
  p.refresh = std::move(refresh);
  VIZQ_ASSIGN_OR_RETURN(p.current, p.refresh());
  published_.emplace(source_name, std::move(p));
  return OkStatus();
}

Status WorkbookRepository::AddSelfContainedWorkbook(const std::string& name,
                                                    ExtractRefreshFn refresh) {
  if (FindWorkbook(name) != nullptr) {
    return AlreadyExists("workbook '" + name + "' exists");
  }
  Workbook wb;
  wb.name = name;
  VIZQ_ASSIGN_OR_RETURN(wb.embedded_extract, refresh());
  workbooks_.push_back(std::move(wb));
  embedded_refreshers_[name] = EmbeddedRefresh{std::move(refresh)};
  return OkStatus();
}

Status WorkbookRepository::AddPublishedWorkbook(
    const std::string& name, const std::string& source_name) {
  if (FindWorkbook(name) != nullptr) {
    return AlreadyExists("workbook '" + name + "' exists");
  }
  if (published_.find(source_name) == published_.end()) {
    return NotFound("published extract '" + source_name + "' not found");
  }
  Workbook wb;
  wb.name = name;
  wb.published_source = source_name;
  workbooks_.push_back(std::move(wb));
  return OkStatus();
}

StatusOr<int> WorkbookRepository::RefreshAll() {
  int workloads = 0;
  // One refresh per published extract, shared by all referencing
  // workbooks (§5.2: "Refreshing a single extract daily — rather than all
  // copies of it — significantly reduces the query load").
  for (auto& [name, p] : published_) {
    VIZQ_ASSIGN_OR_RETURN(p.current, p.refresh());
    ++workloads;
  }
  // One refresh per self-contained workbook: the redundant load.
  for (Workbook& wb : workbooks_) {
    if (!wb.is_self_contained()) continue;
    auto it = embedded_refreshers_.find(wb.name);
    if (it == embedded_refreshers_.end()) continue;
    VIZQ_ASSIGN_OR_RETURN(wb.embedded_extract, it->second.refresh());
    ++workloads;
  }
  return workloads;
}

int64_t WorkbookRepository::TotalExtractBytes() const {
  int64_t bytes = 0;
  for (const auto& [name, p] : published_) {
    if (p.current != nullptr) bytes += p.current->ApproxBytes();
  }
  for (const Workbook& wb : workbooks_) {
    if (wb.embedded_extract != nullptr) {
      bytes += wb.embedded_extract->ApproxBytes();
    }
  }
  return bytes;
}

const Workbook* WorkbookRepository::FindWorkbook(
    const std::string& name) const {
  for (const Workbook& wb : workbooks_) {
    if (wb.name == name) return &wb;
  }
  return nullptr;
}

StatusOr<std::shared_ptr<tde::Database>> WorkbookRepository::ExtractFor(
    const std::string& workbook) const {
  const Workbook* wb = FindWorkbook(workbook);
  if (wb == nullptr) return NotFound("workbook '" + workbook + "' not found");
  if (wb->is_self_contained()) return wb->embedded_extract;
  auto it = published_.find(wb->published_source);
  if (it == published_.end()) {
    return NotFound("published extract vanished");
  }
  return it->second.current;
}

}  // namespace vizq::server
