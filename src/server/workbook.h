// Workbooks and extract sharing (§5.1–5.2).
//
// "Except for their connections to live data sources, Tableau workbooks
// are self-contained. ... Bundling all data source definitions and
// extracts within a workbook makes sharing a workbook simple, but
// prevents other workbooks from sharing the contained calculations and
// extracts. ... If hundreds of workbooks all use the same large extract,
// considerable disk resources are consumed by redundant data. Refreshing
// the workbooks' extracts daily ... incurs a significant and redundant
// load on the underlying database." Publishing the data source to the
// Data Server fixes both: one extract, one refresh.
//
// This module models exactly that trade-off so it can be asserted and
// measured: a workbook either embeds its own extract copy or references a
// published data source; the repository reports total extract bytes and
// executes scheduled refreshes, counting the load they put on the
// underlying ("live") source.

#ifndef VIZQUERY_SERVER_WORKBOOK_H_
#define VIZQUERY_SERVER_WORKBOOK_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/tde/storage/database.h"

namespace vizq::server {

struct Workbook {
  std::string name;
  // Exactly one of the two is set:
  std::shared_ptr<tde::Database> embedded_extract;  // self-contained copy
  std::string published_source;  // reference to a shared published extract

  bool is_self_contained() const { return embedded_extract != nullptr; }
};

// Re-extracts from the live source, producing a fresh extract database.
// Each invocation represents one full extraction workload on the backing
// database.
using ExtractRefreshFn = std::function<StatusOr<std::shared_ptr<tde::Database>>()>;

class WorkbookRepository {
 public:
  // Registers a shared published extract refreshed by `refresh`.
  Status PublishExtract(const std::string& source_name,
                        ExtractRefreshFn refresh);

  // Adds a self-contained workbook with its own embedded extract copy,
  // refreshed independently by `refresh`.
  Status AddSelfContainedWorkbook(const std::string& name,
                                  ExtractRefreshFn refresh);

  // Adds a workbook referencing a published extract.
  Status AddPublishedWorkbook(const std::string& name,
                              const std::string& source_name);

  // The scheduled refresh (§2: "a schedule can be created to
  // automatically refresh the extracts"): refreshes every embedded
  // extract and every published extract exactly once. Returns the number
  // of extraction workloads executed against the underlying database.
  StatusOr<int> RefreshAll();

  // Total bytes held in extracts (embedded copies + published ones).
  int64_t TotalExtractBytes() const;

  int num_workbooks() const { return static_cast<int>(workbooks_.size()); }
  const Workbook* FindWorkbook(const std::string& name) const;

  // The current extract database a workbook's queries would run against.
  StatusOr<std::shared_ptr<tde::Database>> ExtractFor(
      const std::string& workbook) const;

 private:
  struct PublishedExtract {
    ExtractRefreshFn refresh;
    std::shared_ptr<tde::Database> current;
  };
  struct EmbeddedRefresh {
    ExtractRefreshFn refresh;
  };

  std::map<std::string, PublishedExtract> published_;
  std::vector<Workbook> workbooks_;
  std::map<std::string, EmbeddedRefresh> embedded_refreshers_;
};

}  // namespace vizq::server

#endif  // VIZQUERY_SERVER_WORKBOOK_H_
