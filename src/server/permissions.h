// Row-level permissions on published data sources (§5.2): "Data Server
// also allows filters to be applied to a published data source to restrict
// individual users' access to the data. For example, an individual
// salesperson may only be able to see customers in their region, while
// their manager can see customers in all regions."

#ifndef VIZQUERY_SERVER_PERMISSIONS_H_
#define VIZQUERY_SERVER_PERMISSIONS_H_

#include <map>
#include <string>

#include "src/query/predicate.h"

namespace vizq::server {

class PermissionPolicy {
 public:
  // Grants `user` access only to rows satisfying `filter`. Users without
  // an entry see everything (subject to deny_unlisted_users()).
  void SetUserFilter(const std::string& user, query::PredicateSet filter) {
    user_filters_[user] = std::move(filter);
  }

  void set_deny_unlisted_users(bool deny) { deny_unlisted_ = deny; }
  bool deny_unlisted_users() const { return deny_unlisted_; }

  bool HasUser(const std::string& user) const {
    return user_filters_.find(user) != user_filters_.end();
  }

  // The predicates to merge into every query `user` issues (empty set =
  // unrestricted).
  const query::PredicateSet* FilterFor(const std::string& user) const {
    auto it = user_filters_.find(user);
    return it == user_filters_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, query::PredicateSet> user_filters_;
  bool deny_unlisted_ = false;
};

}  // namespace vizq::server

#endif  // VIZQUERY_SERVER_PERMISSIONS_H_
