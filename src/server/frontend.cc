#include "src/server/frontend.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/obs/exemplar.h"

namespace vizq::server {

const char* ServeOutcomeName(ServeOutcome o) {
  switch (o) {
    case ServeOutcome::kFresh: return "fresh";
    case ServeOutcome::kStale: return "stale";
    case ServeOutcome::kDegradedDerived: return "derived";
    case ServeOutcome::kShed: return "shed";
    case ServeOutcome::kError: return "error";
  }
  return "?";
}

namespace {

// True for the failure codes the degraded rungs can still help with:
// resource exhaustion anywhere below (scheduler shed, pool saturation)
// and a spent deadline. A bad query or backend error stays an error.
bool Degradable(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted ||
         s.code() == StatusCode::kDeadlineExceeded;
}

double MaxAge(const dashboard::BatchReport& r) {
  double m = 0;
  for (const auto& q : r.queries) m = std::max(m, q.age_ms);
  return m;
}

bool AnyDerived(const dashboard::BatchReport& r) {
  for (const auto& q : r.queries) {
    if (q.served_from == dashboard::ServedFrom::kIntelligentCacheDerived) {
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<std::vector<ResultTable>> Frontend::Serve(
    uint64_t session_id, const ExecContext& ctx,
    const std::vector<query::AbstractQuery>& batch, ServeReport* report) {
  auto started = std::chrono::steady_clock::now();
  ScopedSpan serve_span(ctx.StartSpan("frontend.serve"));
  ServeReport local;
  // Which ladder rung answered: 0 admitted path, 1 stale-exact,
  // 2 derived, 3 typed shed.
  int rung = 0;
  auto finish = [&](ServeOutcome outcome,
                    StatusOr<std::vector<ResultTable>> result)
      -> StatusOr<std::vector<ResultTable>> {
    local.outcome = outcome;
    local.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();
    local.max_age_ms = MaxAge(local.batch);
    ctx.Count(std::string("frontend.serve_") + ServeOutcomeName(outcome));
    if (local.max_age_ms > 0) {
      ctx.Observe("frontend.served_age_ms", local.max_age_ms);
    }

    // Timeline roll-up: stamp the verdict on the request's timeline,
    // export each phase into the registry's per-phase histograms, and
    // feed the SLO monitor. phase.unattributed.ms is the serve-side wall
    // time no scope claimed (client phases accrue before Serve and are
    // excluded here). The SLO judges the *user's* response time, so the
    // client-side phases the timeline carries (queue wait before a
    // serving thread picked the request up, batch construction) count
    // toward the threshold — under overload the queue is exactly where
    // the user's time goes, and a serve-side-only view would keep the
    // burn rate green while users wait seconds.
    double user_latency_ms = local.wall_ms;
    if (PhaseTimeline* tl = ctx.timeline()) {
      tl->SetRung(rung);
      tl->SetOutcome(ServeOutcomeName(outcome));
      std::call_once(phase_hist_once_, [this] {
        obs::MetricsRegistry& registry = obs::GlobalMetrics();
        for (int p = 0; p < kNumPhases; ++p) {
          phase_hist_[p] = &registry.GetHistogram(
              std::string("phase.") + PhaseName(static_cast<Phase>(p)) +
              ".ms");
        }
        phase_total_hist_ = &registry.GetHistogram("phase.total.ms");
        phase_unattributed_hist_ =
            &registry.GetHistogram("phase.unattributed.ms");
      });
      double server_attributed = 0;
      for (int p = 0; p < kNumPhases; ++p) {
        Phase phase = static_cast<Phase>(p);
        double ms = tl->phase_ms(phase);
        if (ms <= 0) continue;
        phase_hist_[p]->Observe(ms);
        if (phase == Phase::kClientQueue || phase == Phase::kClientPrep) {
          user_latency_ms += ms;
        } else if (IsRootPhase(phase)) {
          server_attributed += ms;
        }
      }
      phase_total_hist_->Observe(local.wall_ms);
      phase_unattributed_hist_->Observe(
          std::max(0.0, local.wall_ms - server_attributed));
      // The flight recorder copies attachments into its ring, so recorded
      // requests carry their rendered timeline. Skipped for log-less
      // contexts; the tail-exemplar store renders its own copy either way.
      if (ctx.log() != nullptr) ctx.Attach("phase.timeline", tl->ToString());
    }
    switch (outcome) {
      case ServeOutcome::kFresh:
      case ServeOutcome::kStale:
      case ServeOutcome::kDegradedDerived:
        slo_.Record(user_latency_ms);
        break;
      case ServeOutcome::kError:
        slo_.RecordBad();
        break;
      case ServeOutcome::kShed:
        // A shed only honors the protection contract when the server
        // declined the work up front. Accepting a request and then
        // failing to deliver (admitted_failed: deadline burned, backend
        // saturated mid-flight) is an SLO miss like any other.
        if (local.degrade_reason.rfind("admitted_failed", 0) == 0) {
          slo_.RecordBad();
        } else {
          slo_.RecordShed();
        }
        break;
    }
    if (outcome == ServeOutcome::kShed) {
      // Retain the shed for postmortems: what the request had done by the
      // time the ladder gave up, and why (timeline text rides along).
      serve_span.End();
      obs::GlobalExemplars().Offer(
          ctx, serve_span.get(),
          "shed:" + (batch.empty() ? std::string("?") : batch[0].view),
          local.wall_ms, ServeOutcomeName(outcome), /*shed=*/true);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      switch (outcome) {
        case ServeOutcome::kFresh: ++stats_.fresh; break;
        case ServeOutcome::kStale: ++stats_.stale; break;
        case ServeOutcome::kDegradedDerived: ++stats_.derived; break;
        case ServeOutcome::kShed: ++stats_.shed; break;
        case ServeOutcome::kError: ++stats_.errors; break;
      }
    }
    if (report != nullptr) *report = std::move(local);
    return result;
  };

  AdmissionController::Ticket ticket;
  std::string reason;
  AdmissionDecision decision = AdmissionDecision::kDegrade;
  {
    PhaseScope admission_phase(ctx.timeline(), Phase::kAdmission);
    // Deadline-aware bypass: a request whose remaining budget cannot pay
    // for the full pipeline is not worth admitting — an admitted request
    // that times out mid-flight burned a backend slot AND still failed
    // the user. The degraded rungs cost a cache probe and answer (or
    // crisply shed) within whatever budget is left. Fail fast over fail
    // slow: under a queue spike this converts admitted_failed timeouts
    // into bounded-stale answers and typed sheds.
    if (ctx.has_deadline() &&
        ctx.remaining_ms() < opts_.min_admit_headroom_ms) {
      reason = "deadline_low: remaining budget under admit headroom";
      ctx.Count("frontend.deadline_bypass");
    } else {
      decision = admission_.Admit(session_id, &ticket, &reason);
    }
  }
  if (decision == AdmissionDecision::kAdmit) {
    ctx.Count("frontend.admit");
    dashboard::BatchOptions opts = opts_.batch;
    opts.session_id = session_id;
    opts.cache_only = false;
    opts.cache_exact_only = false;
    opts.max_result_age_ms = -1.0;
    auto result = service_->ExecuteBatch(ctx, batch, opts, &local.batch);
    ticket.Release();
    if (result.ok()) return finish(ServeOutcome::kFresh, std::move(result));
    if (!Degradable(result.status())) {
      local.degrade_reason = result.status().message();
      return finish(ServeOutcome::kError, std::move(result));
    }
    reason = "admitted_failed: " + result.status().message();
  }
  // --- degraded rungs ---
  // Ladder bookkeeping accrues to `ladder`; the cache probes inside the
  // rungs open their own nested scopes and are charged to cache_lookup.
  PhaseScope ladder_phase(ctx.timeline(), Phase::kLadder);
  ctx.Count("frontend.degrade");
  ctx.LogEvent("frontend", "degrade session=" + std::to_string(session_id) +
                               " reason=" + reason);
  local.degrade_reason = reason;
  if (opts_.stale_serve_ms > 0) {
    ServeOutcome outcome = ServeOutcome::kShed;
    auto degraded =
        ServeDegraded(session_id, ctx, batch, &local, &outcome, &rung);
    if (degraded.ok()) {
      ladder_phase.End();
      return finish(outcome, std::move(degraded));
    }
  }
  rung = 3;
  ctx.Count("frontend.shed");
  ctx.LogEvent("frontend", "shed session=" + std::to_string(session_id));
  ladder_phase.End();
  return finish(ServeOutcome::kShed,
                ResourceExhausted("server overloaded (" + reason +
                                  "); no cache answer within " +
                                  std::to_string(opts_.stale_serve_ms) +
                                  "ms freshness bound — retry with backoff"));
}

StatusOr<std::vector<ResultTable>> Frontend::ServeDegraded(
    uint64_t session_id, const ExecContext& ctx,
    const std::vector<query::AbstractQuery>& batch, ServeReport* report,
    ServeOutcome* outcome, int* rung) {
  ScopedSpan span(ctx.StartSpan("frontend.degraded"));
  dashboard::BatchOptions opts = opts_.batch;
  opts.session_id = session_id;
  opts.cache_only = true;
  opts.max_result_age_ms = opts_.stale_serve_ms;
  // Rung 1: exact entries only (fresh or bounded-stale).
  opts.cache_exact_only = true;
  auto exact = service_->ExecuteBatch(ctx, batch, opts, &report->batch);
  if (exact.ok()) {
    *outcome = MaxAge(report->batch) > 0 ? ServeOutcome::kStale
                                         : ServeOutcome::kFresh;
    *rung = 1;
    ctx.Count("frontend.rung_exact");
    return exact;
  }
  // Rung 2: allow subsumption roll-ups from larger cached results.
  opts.cache_exact_only = false;
  auto derived = service_->ExecuteBatch(ctx, batch, opts, &report->batch);
  if (derived.ok()) {
    *outcome = AnyDerived(report->batch) ? ServeOutcome::kDegradedDerived
               : MaxAge(report->batch) > 0 ? ServeOutcome::kStale
                                           : ServeOutcome::kFresh;
    *rung = 2;
    ctx.Count("frontend.rung_derived");
    return derived;
  }
  return derived;
}

Frontend::Stats Frontend::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vizq::server
