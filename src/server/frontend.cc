#include "src/server/frontend.h"

#include <algorithm>
#include <chrono>

namespace vizq::server {

const char* ServeOutcomeName(ServeOutcome o) {
  switch (o) {
    case ServeOutcome::kFresh: return "fresh";
    case ServeOutcome::kStale: return "stale";
    case ServeOutcome::kDegradedDerived: return "derived";
    case ServeOutcome::kShed: return "shed";
    case ServeOutcome::kError: return "error";
  }
  return "?";
}

namespace {

// True for the failure codes the degraded rungs can still help with:
// resource exhaustion anywhere below (scheduler shed, pool saturation)
// and a spent deadline. A bad query or backend error stays an error.
bool Degradable(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted ||
         s.code() == StatusCode::kDeadlineExceeded;
}

double MaxAge(const dashboard::BatchReport& r) {
  double m = 0;
  for (const auto& q : r.queries) m = std::max(m, q.age_ms);
  return m;
}

bool AnyDerived(const dashboard::BatchReport& r) {
  for (const auto& q : r.queries) {
    if (q.served_from == dashboard::ServedFrom::kIntelligentCacheDerived) {
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<std::vector<ResultTable>> Frontend::Serve(
    uint64_t session_id, const ExecContext& ctx,
    const std::vector<query::AbstractQuery>& batch, ServeReport* report) {
  auto started = std::chrono::steady_clock::now();
  ScopedSpan serve_span(ctx.StartSpan("frontend.serve"));
  ServeReport local;
  auto finish = [&](ServeOutcome outcome,
                    StatusOr<std::vector<ResultTable>> result)
      -> StatusOr<std::vector<ResultTable>> {
    local.outcome = outcome;
    local.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();
    local.max_age_ms = MaxAge(local.batch);
    ctx.Count(std::string("frontend.serve_") + ServeOutcomeName(outcome));
    if (local.max_age_ms > 0) {
      ctx.Observe("frontend.served_age_ms", local.max_age_ms);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      switch (outcome) {
        case ServeOutcome::kFresh: ++stats_.fresh; break;
        case ServeOutcome::kStale: ++stats_.stale; break;
        case ServeOutcome::kDegradedDerived: ++stats_.derived; break;
        case ServeOutcome::kShed: ++stats_.shed; break;
        case ServeOutcome::kError: ++stats_.errors; break;
      }
    }
    if (report != nullptr) *report = std::move(local);
    return result;
  };

  AdmissionController::Ticket ticket;
  std::string reason;
  if (admission_.Admit(session_id, &ticket, &reason) ==
      AdmissionDecision::kAdmit) {
    ctx.Count("frontend.admit");
    dashboard::BatchOptions opts = opts_.batch;
    opts.session_id = session_id;
    opts.cache_only = false;
    opts.cache_exact_only = false;
    opts.max_result_age_ms = -1.0;
    auto result = service_->ExecuteBatch(ctx, batch, opts, &local.batch);
    ticket.Release();
    if (result.ok()) return finish(ServeOutcome::kFresh, std::move(result));
    if (!Degradable(result.status())) {
      local.degrade_reason = result.status().message();
      return finish(ServeOutcome::kError, std::move(result));
    }
    reason = "admitted_failed: " + result.status().message();
  }
  // --- degraded rungs ---
  ctx.Count("frontend.degrade");
  ctx.LogEvent("frontend", "degrade session=" + std::to_string(session_id) +
                               " reason=" + reason);
  local.degrade_reason = reason;
  if (opts_.stale_serve_ms > 0) {
    ServeOutcome outcome = ServeOutcome::kShed;
    auto degraded = ServeDegraded(session_id, ctx, batch, &local, &outcome);
    if (degraded.ok()) return finish(outcome, std::move(degraded));
  }
  ctx.Count("frontend.shed");
  ctx.LogEvent("frontend", "shed session=" + std::to_string(session_id));
  return finish(ServeOutcome::kShed,
                ResourceExhausted("server overloaded (" + reason +
                                  "); no cache answer within " +
                                  std::to_string(opts_.stale_serve_ms) +
                                  "ms freshness bound — retry with backoff"));
}

StatusOr<std::vector<ResultTable>> Frontend::ServeDegraded(
    uint64_t session_id, const ExecContext& ctx,
    const std::vector<query::AbstractQuery>& batch, ServeReport* report,
    ServeOutcome* outcome) {
  ScopedSpan span(ctx.StartSpan("frontend.degraded"));
  dashboard::BatchOptions opts = opts_.batch;
  opts.session_id = session_id;
  opts.cache_only = true;
  opts.max_result_age_ms = opts_.stale_serve_ms;
  // Rung 1: exact entries only (fresh or bounded-stale).
  opts.cache_exact_only = true;
  auto exact = service_->ExecuteBatch(ctx, batch, opts, &report->batch);
  if (exact.ok()) {
    *outcome = MaxAge(report->batch) > 0 ? ServeOutcome::kStale
                                         : ServeOutcome::kFresh;
    ctx.Count("frontend.rung_exact");
    return exact;
  }
  // Rung 2: allow subsumption roll-ups from larger cached results.
  opts.cache_exact_only = false;
  auto derived = service_->ExecuteBatch(ctx, batch, opts, &report->batch);
  if (derived.ok()) {
    *outcome = AnyDerived(report->batch) ? ServeOutcome::kDegradedDerived
               : MaxAge(report->batch) > 0 ? ServeOutcome::kStale
                                           : ServeOutcome::kFresh;
    ctx.Count("frontend.rung_derived");
    return derived;
  }
  return derived;
}

Frontend::Stats Frontend::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vizq::server
