// The Data Server (§5): a proxy between clients and underlying databases
// that lets published data sources — with their calculations and extracts
// — be shared across workbooks without duplication.
//
// Clients connect to a published data source, receive its metadata, and
// dispatch abstract queries; the Data Server parses them into the internal
// representation, applies the user's row-level permission filters,
// optimizes/compiles with the same pipeline Desktop uses (§5.3: "these
// pipelines got unified"), and evaluates against the underlying database —
// or entirely from its caches / in-memory temp tables when possible.
//
// Temporary tables (§5.3–5.4): a client uploads a large enumeration once
// (CreateTempTable) and later queries reference it by name, cutting
// client→server traffic; server-side, definitions are shared across
// client connections and reclaimed when the last reference closes.

#ifndef VIZQUERY_SERVER_DATA_SERVER_H_
#define VIZQUERY_SERVER_DATA_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/dashboard/query_service.h"
#include "src/server/permissions.h"
#include "src/server/temp_table_registry.h"

namespace vizq::server {

// A data source published to the server: the view definition plus shared
// calculations and access policy.
struct PublishedDataSource {
  std::string name;
  query::ViewDefinition view;
  // Named calculations shared by every workbook using this source
  // (§5.2: "a complex calculation in a data source can be defined once and
  // used everywhere"). Calculations are measures here; referencing one by
  // name in a query's measures expands it.
  std::map<std::string, query::Measure> calculations;
  PermissionPolicy permissions;
};

// Metadata a client receives on connect (§5.2: "the client populates its
// data window with this information").
struct SourceMetadata {
  std::string source_name;
  std::vector<ResultColumn> columns;
  std::vector<std::string> calculation_names;
  bool supports_temp_tables = false;
};

// A query as a client sends it: an abstract query whose filters may
// reference previously-created session temp tables by name.
struct ClientQuery {
  query::AbstractQuery query;
  // column -> temp table name; expanded server-side into the enumeration.
  std::map<std::string, std::string> temp_filters;
};

class DataServer;

// A client's session with one published data source.
class ServerSession {
 public:
  ~ServerSession();

  const SourceMetadata& metadata() const { return metadata_; }
  const std::string& user() const { return user_; }

  // Uploads an enumeration once; later ClientQuery::temp_filters reference
  // it by name. Definition storage is shared across sessions (§5.4).
  Status CreateTempTable(const std::string& name, const std::string& column,
                         DataType type, std::vector<Value> values);
  Status DropTempTable(const std::string& name);
  bool HasTempTable(const std::string& name) const;

  // Context-first forms thread the caller's deadline/cancellation/trace
  // through resolution and the full query pipeline.
  StatusOr<ResultTable> Query(const ExecContext& ctx, const ClientQuery& q,
                              dashboard::BatchReport* report = nullptr);
  StatusOr<std::vector<ResultTable>> QueryBatch(
      const ExecContext& ctx, const std::vector<ClientQuery>& batch,
      dashboard::BatchReport* report = nullptr);

  StatusOr<ResultTable> Query(const ClientQuery& q,
                              dashboard::BatchReport* report = nullptr) {
    return Query(ExecContext::Background(), q, report);
  }
  StatusOr<std::vector<ResultTable>> QueryBatch(
      const std::vector<ClientQuery>& batch,
      dashboard::BatchReport* report = nullptr) {
    return QueryBatch(ExecContext::Background(), batch, report);
  }

  // Explicitly ends the session, reclaiming its temp-table references
  // (§5.4: state "is reclaimed when the connection is closed or expired").
  void Close();

 private:
  friend class DataServer;
  ServerSession(DataServer* server, std::string source, std::string user,
                SourceMetadata metadata)
      : server_(server),
        source_(std::move(source)),
        user_(std::move(user)),
        metadata_(std::move(metadata)) {}

  DataServer* server_;
  std::string source_;
  std::string user_;
  SourceMetadata metadata_;
  std::map<std::string, std::shared_ptr<const query::TempTableSpec>> temps_;
  bool closed_ = false;
};

struct DataServerOptions {
  // §5.4: "If desired, in-memory temporary tables on Data Server can be
  // disabled." Disabling forces clients to inline enumerations (more
  // client<->server traffic) while still benefiting from database-side
  // temp tables via the compiler.
  bool enable_in_memory_temp_tables = true;
  // Cluster identity of this data server. Namespaces everything that
  // must be node-local on a shared substrate: temp-table definitions
  // (TempTableRegistry scope) and backend-side temp names (the
  // compiler's temp_namespace). Empty = standalone single-node server.
  std::string node_id;
  dashboard::BatchOptions batch;
};

class DataServer {
 public:
  explicit DataServer(DataServerOptions options = DataServerOptions())
      : options_(options) {}

  // Publishes `source` backed by `backend`. One QueryService (and cache
  // stack, shared across all users) is created per published source.
  Status Publish(PublishedDataSource source,
                 std::shared_ptr<federation::DataSource> backend);

  // Opens a session for `user`; fails when the policy denies access.
  StatusOr<std::unique_ptr<ServerSession>> Connect(const std::string& user,
                                                   const std::string& source);

  std::vector<std::string> ListSources() const;

  TempTableRegistry& temp_registry() { return temp_registry_; }
  dashboard::QueryService* ServiceForTesting(const std::string& source);

  // Total client->server values avoided by temp-table name references.
  int64_t values_saved_by_temp_refs() const { return values_saved_; }

 private:
  friend class ServerSession;

  struct Published {
    PublishedDataSource source;
    std::shared_ptr<dashboard::CacheStack> caches;
    std::unique_ptr<dashboard::QueryService> service;
  };

  StatusOr<ResultTable> ExecuteForSession(const ExecContext& ctx,
                                          ServerSession* session,
                                          const ClientQuery& q,
                                          dashboard::BatchReport* report);
  StatusOr<std::vector<ResultTable>> ExecuteBatchForSession(
      const ExecContext& ctx, ServerSession* session,
      const std::vector<ClientQuery>& batch, dashboard::BatchReport* report);

  // Expands temp references and permission filters into a plain query.
  StatusOr<query::AbstractQuery> ResolveClientQuery(ServerSession* session,
                                                    const ClientQuery& q);

  DataServerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Published> sources_;
  TempTableRegistry temp_registry_;
  int64_t values_saved_ = 0;
};

}  // namespace vizq::server

#endif  // VIZQUERY_SERVER_DATA_SERVER_H_
