// Shared temp-table definitions (§5.4): "To alleviate the in-memory cost
// of temporary tables, temporary table definitions are shared across
// client connections. These definitions are updated as clients create and
// drop temporary tables. The definitions are removed when all references
// to them are removed."
//
// Definitions are deduplicated by content (column + value list); sessions
// referencing the same enumeration share one in-memory copy.

#ifndef VIZQUERY_SERVER_TEMP_TABLE_REGISTRY_H_
#define VIZQUERY_SERVER_TEMP_TABLE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/query/compiler.h"

namespace vizq::server {

class TempTableRegistry {
 public:
  // Registers a reference to `spec`'s definition; identical contents share
  // one definition. Returns the shared definition. `node_scope` namespaces
  // the definition to one cluster node: two data-server nodes sharing a
  // registry (or its backing store) must never observe each other's temps
  // — same content, different scope, different definition. Empty scope =
  // the single-node behavior.
  std::shared_ptr<const query::TempTableSpec> Acquire(
      const query::TempTableSpec& spec, const std::string& node_scope = "");

  // Drops one reference; the definition disappears with the last one.
  void Release(const std::shared_ptr<const query::TempTableSpec>& def);

  int64_t num_definitions() const;
  // Total values held across definitions (the in-memory cost §5.4 bounds).
  int64_t total_values() const;
  // How many Acquire calls were served by an existing definition.
  int64_t shared_acquisitions() const { return shared_; }

 private:
  static std::string ContentKey(const query::TempTableSpec& spec,
                                const std::string& node_scope);

  struct Shared {
    std::shared_ptr<const query::TempTableSpec> def;
    int64_t refs = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Shared> definitions_;  // content key -> shared def
  int64_t shared_ = 0;
};

}  // namespace vizq::server

#endif  // VIZQUERY_SERVER_TEMP_TABLE_REGISTRY_H_
