// Speculative prefetching — the paper's §7 future work: "both data
// exploration and dashboard generation could become more responsive if
// requested data has been accurately predicted and prefetched ...
// prediction approaches such as DICE are good examples in this field."
//
// After a render, the prefetcher predicts the interactions a user is most
// likely to perform next — DICE-style neighborhood speculation over the
// marks just shown: selecting one of the top values in each filter-action
// source zone, or narrowing each quick filter to a single popular value —
// and executes the affected zones' queries in the background. The results
// land in the shared intelligent cache, so when the user actually clicks,
// the refresh is served locally.

#ifndef VIZQUERY_DASHBOARD_PREFETCHER_H_
#define VIZQUERY_DASHBOARD_PREFETCHER_H_

#include <memory>

#include "src/common/scheduler.h"
#include "src/dashboard/renderer.h"

namespace vizq::dashboard {

struct PrefetchOptions {
  // Values per source zone / quick filter to speculate on.
  int values_per_source = 2;
  // Upper bound on speculative queries per render.
  int max_queries = 16;
  // Cap on concurrently running speculative batches (scheduler tasks, not
  // dedicated threads — speculation rides the kBackground class).
  int background_threads = 2;
};

class Prefetcher {
 public:
  Prefetcher(QueryService* service, PrefetchOptions options = {})
      : service_(service),
        options_(options),
        group_(std::make_unique<TaskGroup>(
            &Scheduler::Global(), TaskClass::kBackground,
            ExecContext::Background(), options.background_threads)) {}

  // Predicts next interactions from `report`'s rendered results and warms
  // the cache in the background. Returns the number of speculative
  // queries scheduled. Call Wait() (or destroy the prefetcher) to join.
  int PrefetchAfterRender(const Dashboard& dashboard,
                          const InteractionState& state,
                          const RenderReport& report,
                          const BatchOptions& batch_options);

  // Blocks until scheduled speculation has finished.
  void Wait() { group_->Wait(); }

  int64_t queries_prefetched() const { return prefetched_; }

 private:
  QueryService* service_;
  PrefetchOptions options_;
  std::unique_ptr<TaskGroup> group_;
  int64_t prefetched_ = 0;
};

}  // namespace vizq::dashboard

#endif  // VIZQUERY_DASHBOARD_PREFETCHER_H_
