#include "src/dashboard/fusion.h"

#include <algorithm>
#include <map>
#include <set>

namespace vizq::dashboard {

using query::AbstractQuery;
using query::Measure;

std::vector<FusedGroup> FuseQueries(const std::vector<AbstractQuery>& batch) {
  // Relation key: view + sorted dimension set + filter key.
  auto relation_key = [](const AbstractQuery& q) {
    std::vector<std::string> dims = q.dimensions;
    std::sort(dims.begin(), dims.end());
    std::string key = q.data_source + "\x1f" + q.view + "\x1f";
    for (const std::string& d : dims) {
      key += d;
      key += ',';
    }
    key += "\x1f" + q.filters.ToKeyString();
    return key;
  };

  std::map<std::string, std::vector<int>> groups;
  std::vector<std::string> order;  // deterministic group order
  for (size_t i = 0; i < batch.size(); ++i) {
    std::string key = relation_key(batch[i]);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.push_back(static_cast<int>(i));
  }

  std::vector<FusedGroup> out;
  for (const std::string& key : order) {
    const std::vector<int>& members = groups[key];
    FusedGroup group;
    group.members = members;
    if (members.size() == 1) {
      group.fused = batch[members[0]];
      out.push_back(std::move(group));
      continue;
    }
    // Union of projections over the common relation.
    AbstractQuery fused = batch[members[0]];
    fused.order_by.clear();
    fused.limit = 0;
    std::set<std::pair<int, std::string>> seen;  // (func, column)
    fused.measures.clear();
    for (int m : members) {
      for (const Measure& measure : batch[m].measures) {
        auto id = std::make_pair(static_cast<int>(measure.func),
                                 measure.column);
        if (seen.insert(id).second) {
          // Default alias keeps the fused schema deterministic regardless
          // of member-specific aliases.
          fused.measures.push_back(Measure{measure.func, measure.column, ""});
        }
      }
    }
    fused.Canonicalize();
    group.fused = std::move(fused);
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace vizq::dashboard
