#include "src/dashboard/prefetcher.h"

#include <set>

namespace vizq::dashboard {

int Prefetcher::PrefetchAfterRender(const Dashboard& dashboard,
                                    const InteractionState& state,
                                    const RenderReport& report,
                                    const BatchOptions& batch_options) {
  // Candidate next interactions: for each filter action whose source zone
  // was just rendered, selecting each of the first `values_per_source`
  // values shown in that zone.
  std::vector<query::AbstractQuery> speculative;
  std::set<std::string> seen_keys;

  auto add_query = [&](const query::AbstractQuery& q) {
    if (static_cast<int>(speculative.size()) >= options_.max_queries) return;
    std::string key = q.ToKeyString();
    if (!seen_keys.insert(key).second) return;
    speculative.push_back(q);
  };

  for (const FilterAction& action : dashboard.actions()) {
    auto rit = report.zone_results.find(action.source_zone);
    if (rit == report.zone_results.end()) continue;
    const ResultTable& shown = rit->second;
    auto col = shown.FindColumn(action.column);
    if (!col.has_value()) continue;

    int64_t candidates =
        std::min<int64_t>(options_.values_per_source, shown.num_rows());
    for (int64_t v = 0; v < candidates; ++v) {
      InteractionState predicted = state;
      predicted.Select(action.source_zone, action.column,
                       {shown.at(v, *col)});
      for (const std::string& target : action.targets) {
        const Zone* zone = dashboard.FindZone(target);
        if (zone == nullptr || !zone->has_query()) continue;
        auto q = dashboard.BuildZoneQuery(target, predicted);
        if (q.ok()) add_query(*q);
      }
    }
  }

  if (speculative.empty()) return 0;
  prefetched_ += static_cast<int64_t>(speculative.size());

  // Run the whole speculative batch as a kBackground scheduler task;
  // results are deposited in the shared cache by the QueryService as
  // usual. The batch itself also benefits from analysis/fusion. Its
  // remote groups are demoted to kBackground too, so speculation never
  // competes with interactive renders for workers.
  BatchOptions options = batch_options;
  options.priority = TaskClass::kBackground;
  QueryService* service = service_;
  std::vector<query::AbstractQuery> batch = std::move(speculative);
  int scheduled = static_cast<int>(batch.size());
  group_->Spawn(
      [service, options, batch = std::move(batch)] {
        (void)service->ExecuteBatch(batch, options, nullptr);
      },
      "prefetch-batch");
  return scheduled;
}

}  // namespace vizq::dashboard
