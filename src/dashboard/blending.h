// Data blending across heterogeneous data sources.
//
// §2: Tableau offers "combining data from heterogeneous data sources";
// §7 names end-to-end federation as future work. This module implements
// the client-side blend Tableau ships: a primary query and a secondary
// query, each against its own data source, are executed independently
// (through their own QueryServices, so each benefits from its source's
// caches, fusion and connection pools) and their *aggregated results* are
// left-joined locally on the linking dimensions.

#ifndef VIZQUERY_DASHBOARD_BLENDING_H_
#define VIZQUERY_DASHBOARD_BLENDING_H_

#include <string>
#include <vector>

#include "src/dashboard/query_service.h"

namespace vizq::dashboard {

struct BlendSpec {
  query::AbstractQuery primary;
  query::AbstractQuery secondary;
  // Linking fields: pairs of (primary dimension, secondary dimension).
  // Every linking dimension must appear in the respective query's
  // dimensions (the blend happens at aggregate granularity).
  std::vector<std::pair<std::string, std::string>> link_on;
};

// Executes a blend: primary left-joined with secondary on the linking
// dimensions. Output columns: the primary's columns followed by the
// secondary's non-linking columns (renamed "<name> (secondary)" on
// collision). Secondary measures are NULL for unmatched primary rows.
StatusOr<ResultTable> ExecuteBlend(QueryService* primary_service,
                                   QueryService* secondary_service,
                                   const BlendSpec& spec,
                                   const BatchOptions& options = {});

}  // namespace vizq::dashboard

#endif  // VIZQUERY_DASHBOARD_BLENDING_H_
