// Cache-hit opportunity graph (§3.3, Fig. 3).
//
// "Consider a directed graph G with the queries as nodes and edges
// pointing from qi to qj iff the result of qj can be computed from the
// results of qi ... we analyze [the batch] and partition the nodes of G
// into two sets. One set contains queries that need to be sent to the
// remote back-ends; they correspond to the source nodes, i.e. the nodes
// without incoming edges. The second set contains queries that are cache
// hits that can be processed locally."

#ifndef VIZQUERY_DASHBOARD_OPPORTUNITY_GRAPH_H_
#define VIZQUERY_DASHBOARD_OPPORTUNITY_GRAPH_H_

#include <vector>

#include "src/query/abstract_query.h"

namespace vizq::dashboard {

struct OpportunityGraph {
  // covers[i] lists the nodes whose results can be computed from node i's
  // result (edges i -> j).
  std::vector<std::vector<int>> covers;
  // Partition: remote[i] true when node i is a source node.
  std::vector<bool> remote;
  // For local nodes, the chosen remote predecessor whose completion
  // unblocks them (first match order, like the cache).
  std::vector<int> predecessor;  // -1 for remote nodes
};

// Builds the graph over a batch using the intelligent cache's subsumption
// matcher. Mutually-covering (equivalent) queries keep only the lower
// index as a potential source, so the partition is well defined.
OpportunityGraph BuildOpportunityGraph(
    const std::vector<query::AbstractQuery>& batch);

}  // namespace vizq::dashboard

#endif  // VIZQUERY_DASHBOARD_OPPORTUNITY_GRAPH_H_
