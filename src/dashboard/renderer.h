// Iterative dashboard rendering (§3.3).
//
// "Due to dependencies between zones, rendering of a dashboard might
// require several iterations to complete." Each iteration turns the dirty
// zones into a query batch, executes it through the QueryService, then
// validates interaction state against the fresh results: a selection whose
// value vanished from its source zone is eliminated (the paper's HNL-OGG
// example), which dirties that action's targets and triggers the next
// iteration.

#ifndef VIZQUERY_DASHBOARD_RENDERER_H_
#define VIZQUERY_DASHBOARD_RENDERER_H_

#include <map>
#include <string>
#include <vector>

#include "src/dashboard/dashboard.h"
#include "src/dashboard/query_service.h"

namespace vizq::dashboard {

struct RenderReport {
  int iterations = 0;
  std::vector<BatchReport> batches;  // one per iteration
  double total_ms = 0;
  // Zone name -> rendered data.
  std::map<std::string, ResultTable> zone_results;
  // Human-readable log of selections eliminated during validation, e.g.
  // "Carrier.carrier: AA".
  std::vector<std::string> eliminated_selections;
};

class DashboardRenderer {
 public:
  // Any BatchExecutor: the single-node QueryService or the cluster
  // coordinator — iteration/validation logic is execution-agnostic.
  explicit DashboardRenderer(BatchExecutor* service) : service_(service) {}

  // Renders the whole dashboard (initial load). The ctx-less overloads
  // delegate to ExecContext::Background() (no tracing, no recording).
  StatusOr<RenderReport> Render(const ExecContext& ctx,
                                const Dashboard& dashboard,
                                InteractionState* state,
                                const BatchOptions& options = {});
  StatusOr<RenderReport> Render(const Dashboard& dashboard,
                                InteractionState* state,
                                const BatchOptions& options = {}) {
    return Render(ExecContext::Background(), dashboard, state, options);
  }

  // Refreshes after an interaction: only `dirty_zones` (plus knock-on
  // zones discovered during validation iterations) are re-queried.
  StatusOr<RenderReport> Refresh(const ExecContext& ctx,
                                 const Dashboard& dashboard,
                                 InteractionState* state,
                                 std::vector<std::string> dirty_zones,
                                 const BatchOptions& options = {});
  StatusOr<RenderReport> Refresh(const Dashboard& dashboard,
                                 InteractionState* state,
                                 std::vector<std::string> dirty_zones,
                                 const BatchOptions& options = {}) {
    return Refresh(ExecContext::Background(), dashboard, state,
                   std::move(dirty_zones), options);
  }

 private:
  BatchExecutor* service_;
};

}  // namespace vizq::dashboard

#endif  // VIZQUERY_DASHBOARD_RENDERER_H_
