#include "src/dashboard/opportunity_graph.h"

#include "src/cache/intelligent_cache.h"

namespace vizq::dashboard {

OpportunityGraph BuildOpportunityGraph(
    const std::vector<query::AbstractQuery>& batch) {
  int n = static_cast<int>(batch.size());
  OpportunityGraph g;
  g.covers.assign(n, {});
  g.remote.assign(n, false);
  g.predecessor.assign(n, -1);

  // covered_by[j]: candidate predecessors of j, in index order.
  std::vector<std::vector<int>> covered_by(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      // Equivalent queries: keep only lower-index -> higher-index edges.
      bool equivalent =
          batch[i].ToKeyString() == batch[j].ToKeyString();
      if (equivalent && i > j) continue;
      auto plan = cache::MatchQueries(batch[i], {}, batch[j]);
      if (plan.has_value()) {
        g.covers[i].push_back(j);
        covered_by[j].push_back(i);
      }
    }
  }

  // Source nodes have no incoming edges; every other node picks its first
  // *remote* predecessor (a covered-by chain always bottoms out in a
  // source because "covers" is transitive over the subsumption relation).
  for (int j = 0; j < n; ++j) {
    g.remote[j] = covered_by[j].empty();
  }
  for (int j = 0; j < n; ++j) {
    if (g.remote[j]) continue;
    for (int i : covered_by[j]) {
      if (g.remote[i]) {
        g.predecessor[j] = i;
        break;
      }
    }
    if (g.predecessor[j] < 0) {
      // All predecessors are themselves local; follow the first one's
      // chain (finite: indices strictly decrease along equivalences and
      // the relation is acyclic otherwise).
      int cur = covered_by[j][0];
      while (!g.remote[cur] && g.predecessor[cur] >= 0) {
        cur = g.predecessor[cur];
      }
      g.predecessor[j] = cur;
    }
  }
  return g;
}

}  // namespace vizq::dashboard
