// QueryService: the client-side query pipeline, end to end.
//
// A batch of abstract queries goes through (§3.2–§3.5):
//   1. exact/subsumption lookup in the intelligent cache;
//   2. cache-hit opportunity analysis over the remaining misses (Fig. 3):
//      source nodes go remote, covered nodes are computed locally from a
//      predecessor's result as soon as it lands;
//   3. query fusion over the remote set (§3.4);
//   4. reuse adjustment (§3.2) — AVG decomposition etc. — on what is sent;
//   5. compilation (join culling, domain simplification, large-IN
//      externalization) and literal-cache lookup on the final text;
//   6. concurrent submission over pooled connections (§3.5), preferring
//      connections that already hold the needed temp tables;
//   7. results feed both caches and resolve dependent local queries.

#ifndef VIZQUERY_DASHBOARD_QUERY_SERVICE_H_
#define VIZQUERY_DASHBOARD_QUERY_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/distributed.h"
#include "src/cache/intelligent_cache.h"
#include "src/cache/literal_cache.h"
#include "src/common/scheduler.h"
#include "src/dashboard/fusion.h"
#include "src/dashboard/opportunity_graph.h"
#include "src/federation/connection_pool.h"
#include "src/query/compiler.h"

namespace vizq::dashboard {

// How an individual query in a batch was satisfied.
enum class ServedFrom : uint8_t {
  kIntelligentCacheExact,
  kIntelligentCacheDerived,
  kIntelligentCacheStale,  // past the freshness TTL, served under a
                           // stale-tolerant lookup (load-shed ladder)
  kLocalFromBatch,  // computed from another batch member's fresh result
  kLiteralCache,
  kRemote,
  kFailed,
};

const char* ServedFromToString(ServedFrom s);

struct BatchOptions {
  bool use_intelligent_cache = true;
  bool use_literal_cache = true;
  bool analyze_batch = true;   // opportunity-graph partitioning (§3.3)
  bool fuse_queries = true;    // §3.4
  bool concurrent = true;      // concurrent remote submission (§3.5)
  int max_parallel_queries = 8;
  // Scheduler class the batch's remote groups run under. User-facing
  // renders keep the default; the prefetcher demotes its speculative
  // batches to kBackground so they never delay interactive work.
  TaskClass priority = TaskClass::kInteractive;
  // The user session this batch belongs to (0 = sessionless). Tags the
  // scheduler tasks the batch spawns, so the scheduler's per-session queue
  // cap can shed a hot session's work specifically.
  uint64_t session_id = 0;
  // Serve-from-cache-or-fail: the batch never goes remote. Misses return
  // kResourceExhausted instead of executing — the load-shed ladder's
  // degraded rungs, where a response must cost a cache probe, not a
  // backend round trip.
  bool cache_only = false;
  // Intelligent-cache freshness tolerance for this batch (LookupOptions::
  // max_age_ms): < 0 serves fresh entries only; >= 0 also accepts entries
  // up to this many ms old, reporting them as kIntelligentCacheStale.
  double max_result_age_ms = -1.0;
  // Restrict intelligent-cache lookups to exact matches (no subsumption
  // scan). The ladder's first degraded rung: exact answers are cheaper and
  // carry no derivation risk, so they are tried before derived ones.
  bool cache_exact_only = false;
  // Cluster identity of the node running this batch (empty = single-node).
  // Tags the scheduler tasks the batch spawns ("batch-group@<node>") and
  // mirrors the served-from counters under per-node metric labels, so a
  // clustered deployment can tell which node did the work.
  std::string node_id;
  cache::AdjustOptions adjust;     // §3.2 reuse adjustment
  query::CompilerOptions compiler;
};

struct QueryReport {
  ServedFrom served_from = ServedFrom::kRemote;
  double ms = 0;
  // For kIntelligentCacheStale: how old the serving entry was. Stale
  // answers are always labeled; callers surface age to the user layer.
  double age_ms = 0;
};

struct BatchReport {
  std::vector<QueryReport> queries;
  double wall_ms = 0;
  int remote_queries = 0;   // actually sent to the backend
  int fused_groups = 0;     // remote query groups after fusion
  int local_resolved = 0;   // answered from batch-internal results
  int cache_hits = 0;       // intelligent + literal

  std::string Summary() const;
};

// Caches shared by everything talking to one backend (one per data-source
// connection scope; Tableau Server shares them across users).
struct CacheStack {
  cache::IntelligentCache intelligent;
  cache::LiteralCache literal;
  // Optional cluster-wide tier behind the per-node caches (§3.2's
  // Redis/Cassandra layer). When set, exact intelligent-cache misses
  // probe it before going remote, and fresh results are published to it
  // — so a query one node answered keeps every node warm. Entries are
  // namespaced per view (cache::SharedKey), which is what lets a
  // rebalance invalidate a moved source wholesale.
  std::shared_ptr<cache::DistributedCacheTier> shared;

  CacheStack() = default;
  explicit CacheStack(cache::IntelligentCacheOptions iopts,
                      cache::LiteralCacheOptions lopts = {})
      : intelligent(iopts), literal(lopts) {}
};

// The boundary the serving layer executes batches through. QueryService
// is the single-node implementation; cluster::ClusterCoordinator is the
// scatter/gather one. Frontend holds a BatchExecutor*, so admission and
// the shed ladder are identical whether the engine is local or sharded.
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;
  virtual StatusOr<std::vector<ResultTable>> ExecuteBatch(
      const ExecContext& ctx, const std::vector<query::AbstractQuery>& batch,
      const BatchOptions& options, BatchReport* report) = 0;
};

class QueryService : public BatchExecutor {
 public:
  // `caches` may be shared across services/users; may be null (no caching).
  QueryService(std::shared_ptr<federation::DataSource> source,
               std::shared_ptr<CacheStack> caches);

  // Registers a logical view; queries name views by `view.name`.
  Status RegisterView(const query::ViewDefinition& view);

  // Convenience: single-table view named after the table.
  Status RegisterTableView(const std::string& table_path);

  // Column domains used for predicate simplification (typically the
  // quick-filter domains fetched once per dashboard).
  void SetDomains(const std::string& view, query::ColumnDomains domains);

  // The context-first forms are the real pipeline: the batch runs under a
  // "batch" root span with children for each stage (cache-lookup,
  // opportunity-analysis, fusion, and per remote group compile/submit),
  // stops at the context's deadline/cancellation, and records cache and
  // served-from counters on the context's metrics.
  StatusOr<ResultTable> ExecuteQuery(const ExecContext& ctx,
                                     const query::AbstractQuery& q,
                                     const BatchOptions& options = {});

  // Executes a batch, minimizing the latency of processing all of it
  // (§3.3). Results are positional. `report` may be null.
  StatusOr<std::vector<ResultTable>> ExecuteBatch(
      const ExecContext& ctx, const std::vector<query::AbstractQuery>& batch,
      const BatchOptions& options = {}, BatchReport* report = nullptr) override;

  // Context-less conveniences (no deadline, no trace).
  StatusOr<ResultTable> ExecuteQuery(const query::AbstractQuery& q,
                                     const BatchOptions& options = {}) {
    return ExecuteQuery(ExecContext::Background(), q, options);
  }
  StatusOr<std::vector<ResultTable>> ExecuteBatch(
      const std::vector<query::AbstractQuery>& batch,
      const BatchOptions& options = {}, BatchReport* report = nullptr) {
    return ExecuteBatch(ExecContext::Background(), batch, options, report);
  }

  // Closing/refreshing the data source purges cache entries (§3.2) and
  // drops pooled connections with their remote temp tables.
  void RefreshDataSource();

  federation::ConnectionPool& pool() { return pool_; }
  CacheStack* caches() { return caches_.get(); }
  const query::QueryCompiler* FindCompiler(const std::string& view) const;

 private:
  // Runs one query remotely (compile -> literal cache -> connection).
  StatusOr<ResultTable> ExecuteRemote(const ExecContext& ctx,
                                      const query::AbstractQuery& q,
                                      const BatchOptions& options,
                                      bool* literal_hit);

  std::shared_ptr<federation::DataSource> source_;
  std::shared_ptr<CacheStack> caches_;
  federation::ConnectionPool pool_;
  std::map<std::string, query::QueryCompiler> compilers_;
  std::map<std::string, query::ColumnDomains> domains_;
};

}  // namespace vizq::dashboard

#endif  // VIZQUERY_DASHBOARD_QUERY_SERVICE_H_
