#include "src/dashboard/renderer.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace vizq::dashboard {

namespace {

// Validates filter-action selections in `state` against freshly rendered
// source-zone results. Returns the zones dirtied by eliminated selections.
std::vector<std::string> ValidateSelections(
    const Dashboard& dashboard, InteractionState* state,
    const std::map<std::string, ResultTable>& fresh, RenderReport* report) {
  std::set<std::string> dirtied;
  for (const FilterAction& action : dashboard.actions()) {
    auto fit = fresh.find(action.source_zone);
    if (fit == fresh.end()) continue;  // source not re-rendered
    auto zit = state->selections.find(action.source_zone);
    if (zit == state->selections.end()) continue;
    auto cit = zit->second.find(action.column);
    if (cit == zit->second.end() || cit->second.empty()) continue;

    const ResultTable& table = fit->second;
    auto col = table.FindColumn(action.column);
    if (!col.has_value()) continue;

    std::vector<Value> surviving;
    for (const Value& selected : cit->second) {
      bool present = false;
      for (int64_t r = 0; r < table.num_rows(); ++r) {
        if (table.at(r, *col).Equals(selected)) {
          present = true;
          break;
        }
      }
      if (present) {
        surviving.push_back(selected);
      } else {
        report->eliminated_selections.push_back(
            action.source_zone + "." + action.column + ": " +
            selected.ToString());
      }
    }
    if (surviving.size() != cit->second.size()) {
      if (surviving.empty()) {
        zit->second.erase(action.column);
      } else {
        cit->second = std::move(surviving);
      }
      for (const std::string& target : action.targets) {
        dirtied.insert(target);
      }
    }
  }
  return {dirtied.begin(), dirtied.end()};
}

}  // namespace

StatusOr<RenderReport> DashboardRenderer::Render(const ExecContext& ctx,
                                                 const Dashboard& dashboard,
                                                 InteractionState* state,
                                                 const BatchOptions& options) {
  return Refresh(ctx, dashboard, state, dashboard.QueryZoneNames(), options);
}

StatusOr<RenderReport> DashboardRenderer::Refresh(
    const ExecContext& ctx, const Dashboard& dashboard,
    InteractionState* state, std::vector<std::string> dirty_zones,
    const BatchOptions& options) {
  auto started = std::chrono::steady_clock::now();
  RenderReport report;

  constexpr int kMaxIterations = 8;
  while (!dirty_zones.empty() && report.iterations < kMaxIterations) {
    ++report.iterations;

    // Build this iteration's batch.
    std::vector<query::AbstractQuery> batch;
    std::vector<std::string> zone_order;
    for (const std::string& name : dirty_zones) {
      const Zone* zone = dashboard.FindZone(name);
      if (zone == nullptr || !zone->has_query()) continue;
      VIZQ_ASSIGN_OR_RETURN(query::AbstractQuery q,
                            dashboard.BuildZoneQuery(name, *state));
      batch.push_back(std::move(q));
      zone_order.push_back(name);
    }
    if (batch.empty()) break;

    BatchReport batch_report;
    VIZQ_ASSIGN_OR_RETURN(std::vector<ResultTable> results,
                          service_->ExecuteBatch(ctx, batch, options,
                                                 &batch_report));
    report.batches.push_back(std::move(batch_report));

    std::map<std::string, ResultTable> fresh;
    for (size_t i = 0; i < zone_order.size(); ++i) {
      fresh[zone_order[i]] = results[i];
      report.zone_results[zone_order[i]] = std::move(results[i]);
    }

    // Selection elimination can dirty more zones (the next iteration).
    dirty_zones = ValidateSelections(dashboard, state, fresh, &report);
    // Zones just rendered with *unchanged* state need no refresh; but a
    // dirtied target rendered this very iteration must be re-queried with
    // the updated state, so keep it.
  }

  report.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();
  return report;
}

}  // namespace vizq::dashboard
