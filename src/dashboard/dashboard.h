// Dashboards (§2–3): "a collection of zones organized according to a
// certain layout ... One defines the behavior of individual zones first
// and then specifies dependencies between them" — quick filters applying
// to many zones, and interactive filter actions where selecting marks in
// one zone filters others (Fig. 1, Fig. 2).

#ifndef VIZQUERY_DASHBOARD_DASHBOARD_H_
#define VIZQUERY_DASHBOARD_DASHBOARD_H_

#include <map>
#include <string>
#include <vector>

#include "src/query/abstract_query.h"

namespace vizq::dashboard {

enum class ZoneKind : uint8_t {
  kViz,          // chart/map/table driven by an aggregate query
  kQuickFilter,  // filter widget; issues a domain query for its column
  kStatic,       // legend/image/text; no query
};

struct Zone {
  std::string name;
  ZoneKind kind = ZoneKind::kViz;
  // The zone's base query (dims, measures, built-in filters, top-n). For
  // kQuickFilter this is the domain query of `filter_column`.
  query::AbstractQuery base;
  std::string filter_column;  // kQuickFilter only

  bool has_query() const { return kind != ZoneKind::kStatic; }
};

// An interactive filter action: selecting values of `column` in
// `source_zone` filters every zone in `targets` (§3.3, Fig. 2).
struct FilterAction {
  std::string source_zone;
  std::string column;
  std::vector<std::string> targets;
};

// A quick-filter binding: the selection on `column` (made through a
// kQuickFilter zone) applies to `targets`; empty targets = every viz zone.
struct QuickFilterBinding {
  std::string column;
  std::vector<std::string> targets;
};

// User interaction state: current selections.
struct InteractionState {
  // zone -> column -> selected values (from filter actions).
  std::map<std::string, std::map<std::string, std::vector<Value>>> selections;
  // column -> selected values (from quick filters); absent = all values.
  std::map<std::string, std::vector<Value>> quick_filters;

  void Select(const std::string& zone, const std::string& column,
              std::vector<Value> values) {
    selections[zone][column] = std::move(values);
  }
  void ClearSelection(const std::string& zone, const std::string& column) {
    auto it = selections.find(zone);
    if (it != selections.end()) it->second.erase(column);
  }
  void SetQuickFilter(const std::string& column, std::vector<Value> values) {
    quick_filters[column] = std::move(values);
  }
  void ClearQuickFilter(const std::string& column) {
    quick_filters.erase(column);
  }
};

class Dashboard {
 public:
  explicit Dashboard(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Status AddZone(Zone zone);
  void AddAction(FilterAction action) { actions_.push_back(std::move(action)); }
  void AddQuickFilter(QuickFilterBinding binding) {
    quick_filters_.push_back(std::move(binding));
  }

  const std::vector<Zone>& zones() const { return zones_; }
  const std::vector<FilterAction>& actions() const { return actions_; }
  const Zone* FindZone(const std::string& name) const;

  // Names of zones that issue queries.
  std::vector<std::string> QueryZoneNames() const;

  // The query a zone runs under `state`: its base query plus quick-filter
  // predicates and incoming filter-action predicates.
  StatusOr<query::AbstractQuery> BuildZoneQuery(
      const std::string& zone_name, const InteractionState& state) const;

  // Zones affected by a selection change in `source_zone` (action targets).
  std::vector<std::string> ActionTargets(const std::string& source_zone) const;
  // Zones affected by a quick-filter change on `column`.
  std::vector<std::string> QuickFilterTargets(const std::string& column) const;

 private:
  bool QuickFilterApplies(const QuickFilterBinding& b,
                          const Zone& zone) const;

  std::string name_;
  std::vector<Zone> zones_;
  std::vector<FilterAction> actions_;
  std::vector<QuickFilterBinding> quick_filters_;
};

}  // namespace vizq::dashboard

#endif  // VIZQUERY_DASHBOARD_DASHBOARD_H_
