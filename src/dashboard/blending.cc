#include "src/dashboard/blending.h"

#include <algorithm>
#include <map>

namespace vizq::dashboard {

StatusOr<ResultTable> ExecuteBlend(QueryService* primary_service,
                                   QueryService* secondary_service,
                                   const BlendSpec& spec,
                                   const BatchOptions& options) {
  if (spec.link_on.empty()) {
    return InvalidArgument("blend requires at least one linking field");
  }
  auto has_dim = [](const query::AbstractQuery& q, const std::string& name) {
    return std::find(q.dimensions.begin(), q.dimensions.end(), name) !=
           q.dimensions.end();
  };
  for (const auto& [p, s] : spec.link_on) {
    if (!has_dim(spec.primary, p)) {
      return InvalidArgument("linking field '" + p +
                             "' is not a primary dimension");
    }
    if (!has_dim(spec.secondary, s)) {
      return InvalidArgument("linking field '" + s +
                             "' is not a secondary dimension");
    }
  }

  // Each side runs through its own pipeline (caches, fusion, pools).
  VIZQ_ASSIGN_OR_RETURN(ResultTable primary,
                        primary_service->ExecuteQuery(spec.primary, options));
  VIZQ_ASSIGN_OR_RETURN(
      ResultTable secondary,
      secondary_service->ExecuteQuery(spec.secondary, options));

  // Resolve linking columns and the secondary's carried columns.
  std::vector<int> pkeys, skeys;
  for (const auto& [p, s] : spec.link_on) {
    auto pi = primary.FindColumn(p);
    auto si = secondary.FindColumn(s);
    if (!pi.has_value() || !si.has_value()) {
      return Internal("linking column missing from blend results");
    }
    pkeys.push_back(*pi);
    skeys.push_back(*si);
  }
  std::vector<int> carried;  // secondary columns that are not link keys
  for (int c = 0; c < secondary.num_columns(); ++c) {
    if (std::find(skeys.begin(), skeys.end(), c) == skeys.end()) {
      carried.push_back(c);
    }
  }

  // Output schema.
  std::vector<ResultColumn> out_cols(primary.columns());
  for (int c : carried) {
    ResultColumn rc = secondary.columns()[c];
    for (const ResultColumn& existing : primary.columns()) {
      if (existing.name == rc.name) {
        rc.name += " (secondary)";
        break;
      }
    }
    out_cols.push_back(std::move(rc));
  }
  ResultTable out(std::move(out_cols));

  // Hash the secondary side on its linking key.
  auto key_of = [](const ResultTable& t, int64_t row,
                   const std::vector<int>& keys) {
    std::string key;
    for (int k : keys) {
      key += t.at(row, k).ToString();
      key += '\x1f';
    }
    return key;
  };
  std::map<std::string, int64_t> secondary_index;
  for (int64_t r = 0; r < secondary.num_rows(); ++r) {
    // First match wins (secondary rows are unique per key when the link
    // covers the whole secondary group-by; otherwise blends are ambiguous
    // and Tableau takes one value too).
    secondary_index.emplace(key_of(secondary, r, skeys), r);
  }

  // Left join: every primary row survives.
  for (int64_t r = 0; r < primary.num_rows(); ++r) {
    ResultTable::Row row = primary.row(r);
    auto it = secondary_index.find(key_of(primary, r, pkeys));
    for (int c : carried) {
      row.push_back(it == secondary_index.end() ? Value::Null()
                                                : secondary.at(it->second, c));
    }
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace vizq::dashboard
