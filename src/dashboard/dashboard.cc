#include "src/dashboard/dashboard.h"

#include <algorithm>

namespace vizq::dashboard {

Status Dashboard::AddZone(Zone zone) {
  if (FindZone(zone.name) != nullptr) {
    return AlreadyExists("zone '" + zone.name + "' already exists");
  }
  if (zone.kind == ZoneKind::kQuickFilter) {
    if (zone.filter_column.empty()) {
      return InvalidArgument("quick-filter zone needs a filter_column");
    }
    // A quick-filter zone's query is the domain of its column.
    if (zone.base.dimensions.empty()) {
      zone.base.dimensions = {zone.filter_column};
    }
  }
  zones_.push_back(std::move(zone));
  return OkStatus();
}

const Zone* Dashboard::FindZone(const std::string& name) const {
  for (const Zone& z : zones_) {
    if (z.name == name) return &z;
  }
  return nullptr;
}

std::vector<std::string> Dashboard::QueryZoneNames() const {
  std::vector<std::string> out;
  for (const Zone& z : zones_) {
    if (z.has_query()) out.push_back(z.name);
  }
  return out;
}

bool Dashboard::QuickFilterApplies(const QuickFilterBinding& b,
                                   const Zone& zone) const {
  // Quick filters do not constrain their own domain widget: the widget
  // shows the full domain, so its query is issued once and later
  // interactions "change the selection but not the domains" (§3.2).
  if (zone.kind == ZoneKind::kQuickFilter && zone.filter_column == b.column) {
    return false;
  }
  if (b.targets.empty()) return zone.kind == ZoneKind::kViz;
  return std::find(b.targets.begin(), b.targets.end(), zone.name) !=
         b.targets.end();
}

StatusOr<query::AbstractQuery> Dashboard::BuildZoneQuery(
    const std::string& zone_name, const InteractionState& state) const {
  const Zone* zone = FindZone(zone_name);
  if (zone == nullptr) return NotFound("zone '" + zone_name + "' not found");
  if (!zone->has_query()) {
    return FailedPrecondition("zone '" + zone_name + "' issues no queries");
  }
  query::AbstractQuery q = zone->base;

  // Quick filters.
  for (const QuickFilterBinding& b : quick_filters_) {
    if (!QuickFilterApplies(b, *zone)) continue;
    auto it = state.quick_filters.find(b.column);
    if (it == state.quick_filters.end() || it->second.empty()) continue;
    q.filters.predicates.push_back(
        query::ColumnPredicate::InSet(b.column, it->second));
  }

  // Incoming filter actions.
  for (const FilterAction& action : actions_) {
    if (action.source_zone == zone_name) continue;
    if (std::find(action.targets.begin(), action.targets.end(), zone_name) ==
        action.targets.end()) {
      continue;
    }
    auto zit = state.selections.find(action.source_zone);
    if (zit == state.selections.end()) continue;
    auto cit = zit->second.find(action.column);
    if (cit == zit->second.end() || cit->second.empty()) continue;
    q.filters.predicates.push_back(
        query::ColumnPredicate::InSet(action.column, cit->second));
  }

  q.Canonicalize();
  return q;
}

std::vector<std::string> Dashboard::ActionTargets(
    const std::string& source_zone) const {
  std::vector<std::string> out;
  for (const FilterAction& action : actions_) {
    if (action.source_zone != source_zone) continue;
    for (const std::string& t : action.targets) {
      if (std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      }
    }
  }
  return out;
}

std::vector<std::string> Dashboard::QuickFilterTargets(
    const std::string& column) const {
  std::vector<std::string> out;
  for (const QuickFilterBinding& b : quick_filters_) {
    if (b.column != column) continue;
    for (const Zone& z : zones_) {
      if (!z.has_query() || !QuickFilterApplies(b, z)) continue;
      if (std::find(out.begin(), out.end(), z.name) == out.end()) {
        out.push_back(z.name);
      }
    }
  }
  return out;
}

}  // namespace vizq::dashboard
