// Query fusion (§3.4): "we replace a group of queries of the form
// [π_P1(R), ..., π_Pn(R)] with a single query π_P(R), where R is the
// common relation ... and P = ∪ Pi."
//
// In the aggregate-select-project model, the "common relation" is the
// (view, group-by set, filter set) triple; members differ only in their
// top-level projection — the measures they request. Different zones of a
// dashboard sharing the same filters but requesting different columns is
// the common case the section calls out. Members carrying a top-n are
// fused too: the fused query fetches untruncated and the member's top-n is
// applied in post-processing.

#ifndef VIZQUERY_DASHBOARD_FUSION_H_
#define VIZQUERY_DASHBOARD_FUSION_H_

#include <vector>

#include "src/query/abstract_query.h"

namespace vizq::dashboard {

struct FusedGroup {
  query::AbstractQuery fused;
  std::vector<int> members;  // indices into the input batch
};

// Groups `batch` by common relation and unions projections. Every input
// index appears in exactly one group; singleton groups keep the original
// query untouched (incl. its remote top-n).
std::vector<FusedGroup> FuseQueries(
    const std::vector<query::AbstractQuery>& batch);

}  // namespace vizq::dashboard

#endif  // VIZQUERY_DASHBOARD_FUSION_H_
