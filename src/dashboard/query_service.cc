#include "src/dashboard/query_service.h"

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/obs/exemplar.h"
#include "src/obs/metrics.h"
#include "src/obs/perf_recorder.h"

namespace vizq::dashboard {

using query::AbstractQuery;

const char* ServedFromToString(ServedFrom s) {
  switch (s) {
    case ServedFrom::kIntelligentCacheExact: return "cache-exact";
    case ServedFrom::kIntelligentCacheDerived: return "cache-derived";
    case ServedFrom::kIntelligentCacheStale: return "cache-stale";
    case ServedFrom::kLocalFromBatch: return "local-from-batch";
    case ServedFrom::kLiteralCache: return "literal-cache";
    case ServedFrom::kRemote: return "remote";
    case ServedFrom::kFailed: return "failed";
  }
  return "?";
}

std::string BatchReport::Summary() const {
  std::string out = "batch: " + std::to_string(queries.size()) + " queries, " +
                    std::to_string(remote_queries) + " remote (" +
                    std::to_string(fused_groups) + " after fusion), " +
                    std::to_string(cache_hits) + " cache hits, " +
                    std::to_string(local_resolved) + " local, " +
                    std::to_string(wall_ms) + " ms";
  return out;
}

QueryService::QueryService(std::shared_ptr<federation::DataSource> source,
                           std::shared_ptr<CacheStack> caches)
    : source_(std::move(source)), caches_(std::move(caches)), pool_(source_) {}

Status QueryService::RegisterView(const query::ViewDefinition& view) {
  if (compilers_.find(view.name) != compilers_.end()) {
    return AlreadyExists("view '" + view.name + "' already registered");
  }
  compilers_.emplace(
      view.name,
      query::QueryCompiler(view, source_->capabilities(), source_->dialect(),
                           &source_->catalog()));
  return OkStatus();
}

Status QueryService::RegisterTableView(const std::string& table_path) {
  query::ViewDefinition view;
  view.name = table_path;
  view.fact_table = table_path;
  return RegisterView(view);
}

void QueryService::SetDomains(const std::string& view,
                              query::ColumnDomains domains) {
  domains_[view] = std::move(domains);
}

const query::QueryCompiler* QueryService::FindCompiler(
    const std::string& view) const {
  auto it = compilers_.find(view);
  return it == compilers_.end() ? nullptr : &it->second;
}

void QueryService::RefreshDataSource() {
  pool_.CloseAll();
  if (caches_ != nullptr) {
    caches_->intelligent.InvalidateDataSource(source_->name());
    caches_->literal.InvalidateDataSource(source_->name());
  }
}

StatusOr<ResultTable> QueryService::ExecuteRemote(const ExecContext& ctx,
                                                  const AbstractQuery& q,
                                                  const BatchOptions& options,
                                                  bool* literal_hit) {
  if (literal_hit != nullptr) *literal_hit = false;
  VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("remote execution"));
  const query::QueryCompiler* compiler = FindCompiler(q.view);
  if (compiler == nullptr) {
    return NotFound("no view registered for '" + q.view + "'");
  }
  const query::ColumnDomains* domains = nullptr;
  auto dit = domains_.find(q.view);
  if (dit != domains_.end()) domains = &dit->second;

  ScopedSpan compile_span(ctx.StartSpan("compile"));
  VIZQ_ASSIGN_OR_RETURN(query::CompiledQuery cq,
                        compiler->Compile(q, options.compiler, domains));

  // When the backend cannot order/limit, the compiled SQL carries neither —
  // several logical queries (different ORDER BY/LIMIT, or none) share that
  // SQL text. The literal cache must therefore store the backend's
  // untruncated result, and local top-n is applied after lookup the same
  // way it is after execution; caching the truncated rows under the
  // orderless key would replay them for the other queries.
  auto apply_local_topn = [&](ResultTable table) -> ResultTable {
    // Breadcrumb: the returned rows are a local truncation of what the
    // engine produced, so a recorder consistency check must not compare
    // the plan's root row count against the result.
    ctx.LogEvent("service", "local-topn view=" + q.view);
    AbstractQuery unlimited = q;
    unlimited.order_by.clear();
    unlimited.limit = 0;
    auto plan = cache::MatchQueries(unlimited, table.columns(), q);
    if (!plan.has_value()) return table;
    auto processed = cache::ApplyMatchPlan(table, *plan, q);
    if (!processed.ok()) return table;
    return *std::move(processed);
  };

  if (options.use_literal_cache && caches_ != nullptr) {
    auto hit = caches_->literal.LookupShared(cq.sql, ctx);
    if (hit != nullptr) {
      if (literal_hit != nullptr) *literal_hit = true;
      ResultTable copy = *hit;  // copy outside the cache's shard lock
      if (cq.requires_local_topn) return apply_local_topn(std::move(copy));
      return copy;
    }
  }
  compile_span.End();

  std::vector<std::string> wanted_temps;
  for (const query::TempTableSpec& t : cq.temp_tables) {
    wanted_temps.push_back(t.name);
  }
  ScopedSpan submit_span(ctx.StartSpan("submit"));
  ExecContext submit_ctx = ctx.WithSpan(submit_span.get());
  VIZQ_ASSIGN_OR_RETURN(federation::PooledConnection conn,
                        pool_.AcquirePreferring(submit_ctx, wanted_temps));
  federation::ExecutionInfo info;
  auto result = conn->Execute(cq, &info, submit_ctx);
  conn.Release();
  submit_span.End();
  if (!result.ok()) return result.status();

  // Cache the untruncated rows (keyed on the SQL actually sent), then apply
  // the local top-n the backend could not.
  if (options.use_literal_cache && caches_ != nullptr) {
    caches_->literal.Put(cq.sql, *result, info.total_ms, source_->name(),
                         ctx);
  }
  if (cq.requires_local_topn) {
    *result = apply_local_topn(*std::move(result));
  }
  return result;
}

StatusOr<ResultTable> QueryService::ExecuteQuery(const ExecContext& ctx,
                                                 const AbstractQuery& q,
                                                 const BatchOptions& options) {
  VIZQ_ASSIGN_OR_RETURN(std::vector<ResultTable> results,
                        ExecuteBatch(ctx, {q}, options, nullptr));
  return std::move(results[0]);
}

StatusOr<std::vector<ResultTable>> QueryService::ExecuteBatch(
    const ExecContext& ctx, const std::vector<AbstractQuery>& batch,
    const BatchOptions& options, BatchReport* report) {
  auto wall_start = std::chrono::steady_clock::now();
  ScopedSpan batch_span(ctx.StartSpan("batch"));
  ExecContext bctx = ctx.WithSpan(batch_span.get());
  int n = static_cast<int>(batch.size());
  std::vector<ResultTable> results(n);
  std::vector<bool> resolved(n, false);
  BatchReport local_report;
  local_report.queries.resize(n);

  // --- 1. intelligent cache ---
  ScopedSpan cache_span(bctx.StartSpan("cache-lookup"));
  std::vector<int> misses;
  {
    PhaseScope cache_phase(bctx.timeline(), Phase::kCacheLookup);
    cache::LookupOptions lookup;
    lookup.max_age_ms = options.max_result_age_ms;
    lookup.exact_only = options.cache_exact_only;
    for (int i = 0; i < n; ++i) {
      if (options.use_intelligent_cache && caches_ != nullptr) {
        auto hit = caches_->intelligent.LookupHit(batch[i], bctx, lookup);
        if (hit.has_value()) {
          results[i] = *hit->table;  // copy outside the cache's shard lock
          resolved[i] = true;
          local_report.queries[i].served_from =
              hit->stale ? ServedFrom::kIntelligentCacheStale
              : hit->exact ? ServedFrom::kIntelligentCacheExact
                           : ServedFrom::kIntelligentCacheDerived;
          local_report.queries[i].age_ms = hit->age_ms;
          ++local_report.cache_hits;
          continue;
        }
        // Cluster-wide tier (§3.2): another node may have answered this
        // exact query already. Skipped on cache_only ladder rungs — those
        // must stay at local-probe cost, and a shed decision should not
        // depend on a simulated network round trip. A shared hit is
        // always-fresh by construction: extracts are immutable between
        // refreshes, and RefreshDataSource/rebalance drop the namespace.
        if (!options.cache_only && caches_->shared != nullptr) {
          auto remote = caches_->shared->Get(cache::SharedKey(batch[i]));
          if (remote.has_value()) {
            auto table = ResultTable::Deserialize(*remote);
            if (table.ok()) {
              caches_->intelligent.Put(batch[i], *table, /*eval_cost_ms=*/1.0,
                                       bctx);
              results[i] = *std::move(table);
              resolved[i] = true;
              local_report.queries[i].served_from =
                  ServedFrom::kIntelligentCacheExact;
              ++local_report.cache_hits;
              bctx.Count("service.shared_hit");
              continue;
            }
          }
        }
      }
      misses.push_back(i);
    }
  }
  cache_span.End();

  // Cache-only mode (the shed ladder's degraded rungs): a miss means this
  // batch cannot be served at probe cost — fail typed, never go remote.
  if (options.cache_only && !misses.empty()) {
    for (int i : misses) {
      local_report.queries[i].served_from = ServedFrom::kFailed;
    }
    bctx.Count("service.cache_only_miss", static_cast<int64_t>(misses.size()));
    batch_span.End();
    if (report != nullptr) *report = std::move(local_report);
    return ResourceExhausted(
        "cache-only batch: " + std::to_string(misses.size()) + " of " +
        std::to_string(n) + " queries missed the cache");
  }

  // --- 2. opportunity graph over the misses ---
  // Stages 2 + 3 are the batch's planning work: one `plan` phase.
  PhaseScope plan_phase(bctx.timeline(), Phase::kPlan);
  ScopedSpan analysis_span(bctx.StartSpan("opportunity-analysis"));
  std::vector<AbstractQuery> pending;
  pending.reserve(misses.size());
  for (int i : misses) pending.push_back(batch[i]);
  OpportunityGraph graph;
  if (options.analyze_batch && pending.size() > 1) {
    graph = BuildOpportunityGraph(pending);
  } else {
    graph.remote.assign(pending.size(), true);
    graph.predecessor.assign(pending.size(), -1);
    graph.covers.assign(pending.size(), {});
  }
  std::vector<int> remote_nodes;
  for (size_t p = 0; p < pending.size(); ++p) {
    if (graph.remote[p]) remote_nodes.push_back(static_cast<int>(p));
  }
  analysis_span.End();

  // --- 3. fusion over the remote set ---
  ScopedSpan fusion_span(bctx.StartSpan("fusion"));
  std::vector<AbstractQuery> remote_queries;
  remote_queries.reserve(remote_nodes.size());
  for (int p : remote_nodes) remote_queries.push_back(pending[p]);
  std::vector<FusedGroup> groups;
  if (options.fuse_queries && remote_queries.size() > 1) {
    groups = FuseQueries(remote_queries);
  } else {
    for (size_t g = 0; g < remote_queries.size(); ++g) {
      groups.push_back(FusedGroup{remote_queries[g], {static_cast<int>(g)}});
    }
  }
  local_report.fused_groups = static_cast<int>(groups.size());
  local_report.remote_queries = static_cast<int>(groups.size());
  fusion_span.End();
  plan_phase.End();

  // --- 4 + 5. adjust, execute concurrently, resolve as results land ---
  struct GroupOutcome {
    int group = 0;
    Status status;
    AbstractQuery sent;  // adjusted query actually executed
    ResultTable result;
    bool literal_hit = false;
    double ms = 0;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::vector<GroupOutcome> completed;

  auto run_group = [&](int gi) {
    GroupOutcome outcome;
    outcome.group = gi;
    outcome.sent = cache::AdjustForReuse(groups[gi].fused, options.adjust);
    auto started = std::chrono::steady_clock::now();
    bool literal_hit = false;
    auto result = ExecuteRemote(bctx, outcome.sent, options, &literal_hit);
    outcome.ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - started)
                     .count();
    outcome.literal_hit = literal_hit;
    if (result.ok()) {
      outcome.result = *std::move(result);
      if (options.use_intelligent_cache && caches_ != nullptr) {
        caches_->intelligent.Put(outcome.sent, outcome.result, outcome.ms,
                                 bctx);
        if (caches_->shared != nullptr) {
          caches_->shared->Put(cache::SharedKey(outcome.sent),
                               outcome.result.Serialize());
        }
      }
    } else {
      outcome.status = result.status();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      completed.push_back(std::move(outcome));
    }
    cv.notify_one();
  };

  // Everything from dispatch to the last resolved result is `execution`
  // on the serving thread; the materialize scopes below carve the local
  // resolution work out of it.
  PhaseScope exec_phase(bctx.timeline(), Phase::kExecution);

  // Remote groups run as scheduler tasks under the batch's priority class;
  // the group's max_concurrency preserves the §3.5 connection-level cap.
  std::unique_ptr<TaskGroup> workers;
  if (options.concurrent && groups.size() > 1) {
    workers = std::make_unique<TaskGroup>(
        &Scheduler::Global(), options.priority, bctx,
        std::min<int>(options.max_parallel_queries,
                      static_cast<int>(groups.size())),
        options.session_id);
    // Work spawned on behalf of a cluster node carries the node identity
    // in the task name, so scheduler introspection (and task dumps under
    // saturation) attribute queued work to the node that owns it.
    std::string task_name = options.node_id.empty()
                                ? "batch-group"
                                : "batch-group@" + options.node_id;
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      workers->Spawn([&, gi] { run_group(static_cast<int>(gi)); }, task_name);
    }
  }

  // Collected (descriptor, result) pairs available for local resolution.
  std::vector<std::pair<AbstractQuery, const ResultTable*>> available;
  std::vector<GroupOutcome> outcomes;
  outcomes.reserve(groups.size());
  Status first_error;

  auto resolve_pending_node = [&](int p, ServedFrom how) -> bool {
    int original = misses[p];
    if (resolved[original]) return true;
    for (const auto& [descriptor, table] : available) {
      auto plan = cache::MatchQueries(descriptor, table->columns(),
                                      pending[p]);
      if (!plan.has_value()) continue;
      auto processed = cache::ApplyMatchPlan(*table, *plan, pending[p]);
      if (!processed.ok()) continue;
      results[original] = *std::move(processed);
      resolved[original] = true;
      local_report.queries[original].served_from = how;
      return true;
    }
    return false;
  };

  for (size_t done = 0; done < groups.size(); ++done) {
    GroupOutcome outcome;
    if (workers != nullptr) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return !completed.empty(); });
      outcome = std::move(completed.back());
      completed.pop_back();
    } else {
      run_group(static_cast<int>(done));
      outcome = std::move(completed.back());
      completed.pop_back();
    }
    if (!outcome.status.ok()) {
      if (first_error.ok()) first_error = outcome.status;
      continue;
    }
    outcomes.push_back(std::move(outcome));
    GroupOutcome& kept = outcomes.back();
    available.emplace_back(kept.sent, &kept.result);
    if (kept.literal_hit) {
      // Served from the literal cache: nothing actually hit the backend.
      --local_report.remote_queries;
      ++local_report.cache_hits;
    }

    // Resolving members and coverable local nodes is result
    // materialization: match-plan application and result copies.
    PhaseScope mat_phase(bctx.timeline(), Phase::kMaterialize);
    // Resolve this group's members immediately.
    for (int member : groups[kept.group].members) {
      int p = remote_nodes[member];
      bool literal = kept.literal_hit;
      if (!resolve_pending_node(
              p, literal ? ServedFrom::kLiteralCache : ServedFrom::kRemote)) {
        // Should not happen: the fused query covers its members.
        if (first_error.ok()) {
          first_error = Internal("fused result did not cover member query");
        }
      } else {
        local_report.queries[misses[p]].ms = kept.ms;
      }
    }
    // Then any local nodes that are now coverable (§3.3: "the local ones
    // are processed as soon as any of their predecessors in G finishes").
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t p = 0; p < pending.size(); ++p) {
        if (graph.remote[p] || resolved[misses[p]]) continue;
        if (resolve_pending_node(static_cast<int>(p),
                                 ServedFrom::kLocalFromBatch)) {
          ++local_report.local_resolved;
          progress = true;
        }
      }
    }
  }
  if (workers != nullptr) workers->Wait();

  // When the context itself gave out (deadline / cancellation), the batch
  // is over: don't burn more time in the safety net; surface the context's
  // error (every worker has already drained, so pool slots are free).
  Status ctx_status = bctx.CheckContinue("batch");
  if (!ctx_status.ok() && first_error.ok()) first_error = ctx_status;

  // Safety net: anything still unresolved (e.g. a failed group, or a local
  // chain that could not be followed) executes remotely on its own.
  for (int i = 0; i < n && first_error.ok(); ++i) {
    if (resolved[i]) continue;
    bool literal = false;
    AbstractQuery sent = cache::AdjustForReuse(batch[i], options.adjust);
    auto result = ExecuteRemote(bctx, sent, options, &literal);
    if (!result.ok()) {
      local_report.queries[i].served_from = ServedFrom::kFailed;
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    if (options.use_intelligent_cache && caches_ != nullptr) {
      caches_->intelligent.Put(sent, *result, 1.0, bctx);
      if (caches_->shared != nullptr) {
        caches_->shared->Put(cache::SharedKey(sent), result->Serialize());
      }
    }
    PhaseScope mat_phase(bctx.timeline(), Phase::kMaterialize);
    auto plan = cache::MatchQueries(sent, result->columns(), batch[i]);
    if (plan.has_value()) {
      auto processed = cache::ApplyMatchPlan(*result, *plan, batch[i]);
      if (processed.ok()) {
        results[i] = *std::move(processed);
        resolved[i] = true;
        local_report.queries[i].served_from =
            literal ? ServedFrom::kLiteralCache : ServedFrom::kRemote;
        if (literal) {
          ++local_report.cache_hits;
        } else {
          ++local_report.remote_queries;
        }
      }
    }
    if (!resolved[i]) {
      local_report.queries[i].served_from = ServedFrom::kFailed;
      if (first_error.ok()) {
        first_error = Internal("could not resolve batch query " +
                               std::to_string(i));
      }
    }
  }

  exec_phase.End();

  // Served-from tallies mirror the per-query report on the metrics
  // registry (asserted against QueryReport in tests). On a cluster node
  // the same tallies are mirrored under per-node labels, so vizq_stats
  // can break "who served what" down by node.
  for (const QueryReport& qr : local_report.queries) {
    std::string served =
        std::string("service.served.") + ServedFromToString(qr.served_from);
    bctx.Count(served);
    if (!options.node_id.empty()) {
      bctx.Count(obs::Labeled(served, "node", options.node_id));
    }
  }
  bctx.Count("service.batches");
  bctx.Count("service.queries", n);

  local_report.wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  bctx.Observe("service.batch.ms", local_report.wall_ms);

  // Hand the finished batch span to the flight recorder (error paths
  // included — failed batches are the ones worth inspecting). The span is
  // ended first so the recorded duration is final.
  batch_span.End();
  std::string name = "batch:" + (n > 0 ? batch[0].view : std::string("?"));
  if (ctx.tracing_enabled()) {
    obs::GlobalRecorder().Record(ctx, batch_span.get(), name);
  }
  // Always-on tail exemplars: offer this batch to the global store. The
  // WouldAdmit gate keeps the fast path to a couple of comparisons; the
  // full span-tree copy happens only for requests that make the tail.
  obs::TailExemplarStore& exemplars = obs::GlobalExemplars();
  if (exemplars.WouldAdmit(local_report.wall_ms)) {
    exemplars.Offer(ctx, batch_span.get(), name, local_report.wall_ms,
                    first_error.ok() ? "content" : "error", /*shed=*/false);
  }

  if (!first_error.ok()) return first_error;

  if (report != nullptr) *report = std::move(local_report);
  return results;
}

}  // namespace vizq::dashboard
