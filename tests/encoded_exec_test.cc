// Tests for encoding-aware execution (DESIGN.md §11): run-encoded scan
// batches, per-token / per-run filter evaluation, dense token-indexed
// grouping, the plan-layer decision gates, and the storage helpers they
// are built on (EmitRuns clipping, DecodeIntsResumable, CompareRows).
//
// The encoded path is always diffed against the row path (the correctness
// baseline) by re-running the same query with enable_encoded_exec off.

#include <gtest/gtest.h>

#include "src/tde/engine.h"
#include "src/tde/exec/scan.h"
#include "src/tde/storage/database.h"
#include "src/tde/storage/table.h"
#include "tests/test_util.h"

namespace vizq::tde {
namespace {

using vizq::testing::TablesEquivalent;

// A table exercising every encoding on the encoded hot path:
//   k   string dict, cardinality 7, *unsorted* (cycling) so streaming
//       aggregation never claims the group-by and dense grouping does
//   s   string dict, cardinality 4, nulls every 13th row
//   r   int64 forced kRle (runs of 100)
//   rf  float64 forced kRle (runs of 300)
//   v   int64 plain
//   f   float64 plain
//   dl  int64 forced kDelta, base beyond int32 (3e9), step 3
std::shared_ptr<Database> MakeEncodedDb(int64_t rows) {
  std::vector<ColumnInfo> schema = {
      {"k", DataType::String()},   {"s", DataType::String()},
      {"r", DataType::Int64()},    {"rf", DataType::Float64()},
      {"v", DataType::Int64()},    {"f", DataType::Float64()},
      {"dl", DataType::Int64()},
  };
  TableBuilder builder("enc", schema);
  builder.SetEncodingChoice(2, EncodingChoice::kForceRle);
  builder.SetEncodingChoice(3, EncodingChoice::kForceRle);
  builder.SetEncodingChoice(6, EncodingChoice::kForceDelta);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    row.emplace_back("k" + std::to_string(i % 7));
    if (i % 13 == 0) {
      row.push_back(Value::Null());
    } else {
      row.emplace_back("s" + std::to_string(i % 4));
    }
    row.emplace_back((i / 100) % 5);
    row.emplace_back(static_cast<double>(i / 300) * 1.25);
    row.emplace_back(i % 11);
    row.emplace_back(static_cast<double>(i % 13) * 0.5);
    row.emplace_back(static_cast<int64_t>(3000000000LL + i * 3));
    (void)builder.AddRow(row);
  }
  auto db = std::make_shared<Database>("encdb");
  (void)db->AddTable(*builder.Finish());
  return db;
}

QueryOptions EncodedOn() { return QueryOptions::Serial(); }

QueryOptions EncodedOff() {
  QueryOptions o = QueryOptions::Serial();
  o.optimizer.enable_encoded_exec = false;
  return o;
}

// Runs `tql` with the encoded path on and off and requires equivalent
// tables; returns the encoded-path result for further stats assertions.
QueryResult DiffEncodedVsRow(TdeEngine& engine, const std::string& tql) {
  auto on = engine.Execute(tql, EncodedOn());
  auto off = engine.Execute(tql, EncodedOff());
  EXPECT_TRUE(on.ok()) << on.status() << " for " << tql;
  EXPECT_TRUE(off.ok()) << off.status() << " for " << tql;
  if (on.ok() && off.ok()) {
    EXPECT_TRUE(TablesEquivalent(off->table, on->table)) << tql;
    EXPECT_FALSE(off->stats->used_encoded_path);
  }
  return on.ok() ? std::move(*on) : QueryResult();
}

TEST(EncodedExecTest, DenseGroupByMatchesHashAcrossAggregates) {
  TdeEngine engine(MakeEncodedDb(3000));
  QueryResult on = DiffEncodedVsRow(
      engine,
      "(aggregate ((k k)) ((n count*) (sv sum v) (sr sum r) (ar avg r) "
      "(mf min f) (xf max f) (cd countd r) (af avg rf) (sdl sum dl)) "
      "(scan enc))");
  ASSERT_NE(on.stats, nullptr);
  EXPECT_TRUE(on.stats->used_encoded_path);
  EXPECT_EQ(on.stats->encoded_plans, 1);
  EXPECT_EQ(on.stats->encoded_fallbacks, 0);
  // The two forced-RLE columns stay undecoded through the scan.
  EXPECT_GT(on.stats->encoded_rows_undecoded, 0);
  ASSERT_NE(on.analysis, nullptr);
  std::string text = on.analysis->ToText();
  EXPECT_NE(text.find("dense"), std::string::npos) << text;
  EXPECT_NE(text.find("encoded"), std::string::npos) << text;
}

// Regression: found by the differential fuzzer (AVG(d2) over an RLE int
// column grouped by a dict key returned -nan). The run-encoded accessors
// bit-cast run values unconditionally: DoubleAt of an *int* RLE column
// reinterpreted the integer payload as double bits (int -3 has an all-ones
// exponent, i.e. NaN), and IntAt of a float RLE column returned the raw
// bit pattern. Both must dispatch on the column type; reverting the fix in
// ColumnVector::DoubleAt/IntAt makes these expectations fail.
TEST(EncodedExecTest, RunEncodedAccessorsDispatchOnColumnType) {
  std::vector<ColumnInfo> schema = {{"k", DataType::String()},
                                    {"r", DataType::Int64()},
                                    {"rf", DataType::Float64()}};
  TableBuilder builder("t", schema);
  builder.SetEncodingChoice(1, EncodingChoice::kForceRle);
  builder.SetEncodingChoice(2, EncodingChoice::kForceRle);
  for (int64_t i = 0; i < 64; ++i) {
    (void)builder.AddRow({Value(i % 2 == 0 ? "a" : "b"),
                          Value(static_cast<int64_t>(-3)), Value(-2.5)});
  }
  auto db = std::make_shared<Database>("regdb");
  (void)db->AddTable(*builder.Finish());
  TdeEngine engine(db);
  auto result = engine.Execute(
      "(aggregate ((k k)) ((ar avg r) (sr sum r) (af avg rf)) (scan t))",
      EncodedOn());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stats->used_encoded_path);
  ASSERT_EQ(result->table.num_rows(), 2);
  for (int64_t row = 0; row < 2; ++row) {
    EXPECT_DOUBLE_EQ(result->table.at(row, 1).AsDouble(), -3.0);
    EXPECT_EQ(result->table.at(row, 2).int_value(), -3 * 32);
    EXPECT_DOUBLE_EQ(result->table.at(row, 3).AsDouble(), -2.5);
  }
}

TEST(EncodedExecTest, TokenBitmapFilterMatchesRowFilter) {
  TdeEngine engine(MakeEncodedDb(3000));
  QueryResult on = DiffEncodedVsRow(
      engine,
      "(aggregate ((k k)) ((n count*) (sv sum v)) "
      "(select (= s \"s1\") (scan enc)))");
  ASSERT_NE(on.analysis, nullptr);
  EXPECT_NE(on.analysis->ToText().find("[encoded]"), std::string::npos)
      << on.analysis->ToText();
}

TEST(EncodedExecTest, TokenBitmapFilterExcludesNulls) {
  TdeEngine engine(MakeEncodedDb(3000));
  // `s` is null every 13th row; `(<> s "s1")` must not admit nulls.
  DiffEncodedVsRow(engine,
                   "(aggregate ((k k)) ((n count*)) "
                   "(select (<> s \"s1\") (scan enc)))");
}

TEST(EncodedExecTest, PerRunFilterOnRleColumn) {
  TdeEngine engine(MakeEncodedDb(3000));
  // Selective: keeps 2 of 5 run values; whole runs pass or fail at once.
  // The RLE IndexTable rewrite would claim this predicate first (turning
  // the scan into kRleIndexScan, a different valid plan); disable it so
  // the per-run encoded filter is what executes.
  const std::string tql =
      "(aggregate ((k k)) ((n count*) (sf sum f)) "
      "(select (< r 2) (scan enc)))";
  QueryOptions on_opts = EncodedOn();
  on_opts.optimizer.rle_index = OptimizerOptions::RleIndexMode::kOff;
  QueryOptions off_opts = EncodedOff();
  off_opts.optimizer.rle_index = OptimizerOptions::RleIndexMode::kOff;
  auto on = engine.Execute(tql, on_opts);
  auto off = engine.Execute(tql, off_opts);
  ASSERT_TRUE(on.ok()) << on.status();
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_TRUE(TablesEquivalent(off->table, on->table));
  EXPECT_EQ(on->stats->encoded_plans, 1);
  EXPECT_NE(on->analysis->ToText().find("[encoded]"), std::string::npos)
      << on->analysis->ToText();
}

TEST(EncodedExecTest, ConjunctionOfEncodedAndPerRowConjuncts) {
  TdeEngine engine(MakeEncodedDb(3000));
  DiffEncodedVsRow(engine,
                   "(aggregate ((k k)) ((n count*)) "
                   "(select (and (= s \"s2\") (and (< r 3) (> v 4))) "
                   "(scan enc)))");
}

TEST(EncodedExecTest, ComputedArgOverRleColumnFallsBack) {
  TdeEngine engine(MakeEncodedDb(3000));
  // (* r 2) touches the RLE column inside a computed expression: the plan
  // is a candidate but fails the flat-args gate and must fall back to the
  // row path — and still be correct.
  QueryResult on = DiffEncodedVsRow(
      engine, "(aggregate ((k k)) ((sr sum (* r 2))) (scan enc))");
  ASSERT_NE(on.stats, nullptr);
  EXPECT_EQ(on.stats->encoded_plans, 0);
  EXPECT_EQ(on.stats->encoded_fallbacks, 1);
  EXPECT_FALSE(on.stats->used_encoded_path);
}

TEST(EncodedExecTest, AllNullDictionaryColumnGroupsToOneNullRow) {
  std::vector<ColumnInfo> schema = {{"an", DataType::String()},
                                    {"v", DataType::Int64()}};
  TableBuilder builder("t", schema);
  builder.SetEncodingChoice(0, EncodingChoice::kForceDictionary);
  for (int64_t i = 0; i < 200; ++i) {
    (void)builder.AddRow({Value::Null(), Value(i)});
  }
  auto db = std::make_shared<Database>("nulldb");
  (void)db->AddTable(*builder.Finish());
  TdeEngine engine(db);
  auto on = engine.Execute(
      "(aggregate ((an an)) ((n count*) (sv sum v)) (scan t))", EncodedOn());
  ASSERT_TRUE(on.ok()) << on.status();
  ASSERT_EQ(on->table.num_rows(), 1);
  EXPECT_TRUE(on->table.at(0, 0).is_null());
  EXPECT_EQ(on->table.at(0, 1).int_value(), 200);
  EXPECT_EQ(on->table.at(0, 2).int_value(), 199 * 200 / 2);
}

TEST(EncodedExecTest, EmptyTableBuilds) {
  auto db = MakeEncodedDb(0);
  auto table = *db->GetTable("enc");
  EXPECT_EQ(table->num_rows(), 0);
}

TEST(EncodedExecTest, EmptyTableDensePath) {
  TdeEngine engine(MakeEncodedDb(0));
  auto on = engine.Execute("(aggregate ((k k)) ((n count*)) (scan enc))",
                           EncodedOn());
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_EQ(on->table.num_rows(), 0);
}

TEST(EncodedExecTest, DeltaColumnBeyondInt32SumsExactly) {
  TdeEngine engine(MakeEncodedDb(3000));
  auto on = engine.Execute("(aggregate () ((s sum dl)) (scan enc))",
                           EncodedOn());
  ASSERT_TRUE(on.ok()) << on.status();
  // sum(3e9 + 3i) for i in [0,3000)
  int64_t expect = 3000000000LL * 3000 + 3 * (2999LL * 3000 / 2);
  EXPECT_EQ(on->table.at(0, 0).int_value(), expect);
}

// --- storage helpers ---

TEST(EncodedExecTest, EmitRunsClipsAndRebases) {
  auto db = MakeEncodedDb(3000);
  auto table = *db->GetTable("enc");
  const Column& r = *table->column(2);  // runs of 100, values (i/100)%5
  ASSERT_TRUE(r.is_rle());

  std::vector<RleRun> runs;
  // Range inside a single run.
  EXPECT_EQ(r.EmitRuns(120, 30, &runs), 1);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].value, 1);
  EXPECT_EQ(runs[0].start, 0);
  EXPECT_EQ(runs[0].count, 30);

  // Range crossing two boundaries: clipped head and tail, contiguous,
  // covering [0, count).
  runs.clear();
  EXPECT_EQ(r.EmitRuns(150, 250, &runs), 3);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].value, 1);
  EXPECT_EQ(runs[0].start, 0);
  EXPECT_EQ(runs[0].count, 50);
  EXPECT_EQ(runs[1].value, 2);
  EXPECT_EQ(runs[1].start, 50);
  EXPECT_EQ(runs[1].count, 100);
  EXPECT_EQ(runs[2].value, 3);
  EXPECT_EQ(runs[2].start, 150);
  EXPECT_EQ(runs[2].count, 100);

  // Empty range emits no runs.
  runs.clear();
  EXPECT_EQ(r.EmitRuns(150, 0, &runs), 0);
  EXPECT_TRUE(runs.empty());
}

TEST(EncodedExecTest, DecodeIntsResumableMatchesDecodeIntsAcrossJumps) {
  auto db = MakeEncodedDb(3000);
  auto table = *db->GetTable("enc");
  const Column& dl = *table->column(6);
  ASSERT_EQ(dl.encoding(), Encoding::kDelta);

  Column::DecodeCursor cursor;
  std::vector<int64_t> got, want;
  std::vector<uint8_t> got_nulls, want_nulls;
  // Contiguous decode, then a morsel-style jump, then contiguous again.
  const int64_t plan[][2] = {{0, 100}, {100, 200}, {1500, 100}, {1600, 50}};
  for (const auto& step : plan) {
    dl.DecodeIntsResumable(&cursor, step[0], step[1], &got, &got_nulls);
    dl.DecodeInts(step[0], step[1], &want, &want_nulls);
    EXPECT_EQ(got, want) << "at start " << step[0];
  }
}

TEST(EncodedExecTest, CompareRowsAgreesWithValuesAcrossEncodings) {
  auto db = MakeEncodedDb(3000);
  auto table = *db->GetTable("enc");
  // k: dictionary. r: RLE. dl: delta. s: dictionary with nulls.
  for (int col : {0, 1, 2, 6}) {
    const Column& c = *table->column(col);
    const int64_t probes[][2] = {{0, 0},    {0, 1},    {1, 0},   {0, 7},
                                 {99, 100}, {100, 99}, {5, 250}, {13, 26}};
    for (const auto& p : probes) {
      Value a = c.GetValue(p[0]);
      Value b = c.GetValue(p[1]);
      int want = a.Compare(b);  // NULL sorts before everything
      want = want < 0 ? -1 : (want > 0 ? 1 : 0);
      int got = c.CompareRows(p[0], p[1]);
      EXPECT_EQ(got < 0 ? -1 : (got > 0 ? 1 : 0), want)
          << "col " << col << " rows " << p[0] << "," << p[1];
    }
  }
}

TEST(EncodedExecTest, SortedPrefixSplitBreaksOnKeyChanges) {
  // Sorted dict + delta prefix: range partitioning must not split a group
  // of equal keys (the comparator is the encoding-aware CompareRows).
  std::vector<ColumnInfo> schema = {{"g", DataType::String()},
                                    {"t", DataType::Int64()}};
  TableBuilder builder("sorted", schema);
  builder.SetEncodingChoice(1, EncodingChoice::kForceDelta);
  for (int64_t i = 0; i < 4000; ++i) {
    (void)builder.AddRow({Value("g" + std::to_string(i / 700)),
                          Value(static_cast<int64_t>(3000000000LL + i))});
  }
  builder.DeclareSorted({0});
  auto table = *builder.Finish();
  std::vector<int64_t> offsets = SplitRowsOnSortedPrefix(*table, 1, 4);
  ASSERT_GE(offsets.size(), 2u);
  EXPECT_EQ(offsets.front(), 0);
  EXPECT_EQ(offsets.back(), 4000);
  for (size_t i = 1; i + 1 < offsets.size(); ++i) {
    int64_t off = offsets[i];
    EXPECT_NE(table->column(0)->CompareRows(off - 1, off), 0)
        << "boundary " << off << " splits equal keys";
  }
}

}  // namespace
}  // namespace vizq::tde
