// Full-stack integration: CSV text -> shadow extract -> TDE database ->
// published through the Data Server -> dashboards rendered by multiple
// user sessions with caching, prefetching and permissions -- the whole
// Fig. 6 eco-system in one test, plus cache persistence across a
// simulated restart.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/cache/persistence.h"
#include "src/dashboard/prefetcher.h"
#include "src/dashboard/renderer.h"
#include "src/extract/shadow_extract.h"
#include "src/federation/simulated_source.h"
#include "src/server/data_server.h"
#include "src/workload/faa_generator.h"
#include "src/workload/flights_dashboards.h"
#include "tests/test_util.h"

namespace vizq {
namespace {

TEST(IntegrationTest, CsvToDashboardThroughDataServer) {
  // 1. "Receive" a CSV file and shadow-extract it (§4.4).
  workload::FaaOptions faa;
  faa.num_flights = 15000;
  auto csv = workload::GenerateFaaCsv(faa);
  ASSERT_TRUE(csv.ok());
  auto extract_db = std::make_shared<tde::Database>("extracts");
  extract::ShadowExtractManager extracts(extract_db);
  extract::ExtractOptions eopts;
  eopts.sort_by = {"carrier"};
  ASSERT_TRUE(extracts.ExtractCsv("flights", *csv, eopts).ok());

  // The carriers dimension arrives separately (reference data).
  std::string carriers_csv = "code,airline_name\n";
  for (size_t i = 0; i < 10; ++i) {
    carriers_csv += workload::FaaCarrierCodes()[i] + "," +
                    workload::FaaAirlineNames()[i] + "\n";
  }
  ASSERT_TRUE(extracts.ExtractCsv("carriers", carriers_csv).ok());

  // 2. The extract database backs a simulated warehouse published to the
  //    Data Server (§5).
  auto backend = federation::SimulatedDataSource::ParallelWarehouse(
      "warehouse", extract_db);
  server::DataServer server;
  server::PublishedDataSource source;
  source.name = "faa";
  source.view = workload::FlightsStarView();
  query::PredicateSet ca_only;
  ca_only.predicates.push_back(
      query::ColumnPredicate::InSet("dest_state", {Value("CA")}));
  source.permissions.SetUserFilter("regional", std::move(ca_only));
  ASSERT_TRUE(server.Publish(std::move(source), backend).ok());

  // 3. Render the Fig. 2 dashboard through a server session.
  auto session = server.Connect("analyst", "faa");
  ASSERT_TRUE(session.ok());
  dashboard::Dashboard dash = workload::BuildFigure2Dashboard("faa");
  dashboard::InteractionState state;
  std::vector<server::ClientQuery> batch;
  std::vector<std::string> zone_order;
  for (const std::string& zone : dash.QueryZoneNames()) {
    auto q = dash.BuildZoneQuery(zone, state);
    ASSERT_TRUE(q.ok());
    batch.push_back(server::ClientQuery{*std::move(q), {}});
    zone_order.push_back(zone);
  }
  dashboard::BatchReport report;
  auto results = (*session)->QueryBatch(batch, &report);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_GT((*results)[0].num_rows(), 0);

  // 4. A second user repeats the load: all served from the shared proxy
  //    cache (§3.2 multi-user sharing).
  auto viewer = server.Connect("viewer", "faa");
  ASSERT_TRUE(viewer.ok());
  dashboard::BatchReport viewer_report;
  auto viewer_results = (*viewer)->QueryBatch(batch, &viewer_report);
  ASSERT_TRUE(viewer_results.ok());
  EXPECT_EQ(viewer_report.remote_queries, 0) << viewer_report.Summary();
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_TABLES_EQUIVALENT((*results)[i], (*viewer_results)[i]);
  }

  // 5. The restricted user sees only CA destinations.
  auto regional = server.Connect("regional", "faa");
  ASSERT_TRUE(regional.ok());
  server::ClientQuery states;
  states.query =
      query::QueryBuilder("", "").Dim("dest_state").CountAll("n").Build();
  auto restricted = (*regional)->Query(states);
  ASSERT_TRUE(restricted.ok());
  ASSERT_EQ(restricted->num_rows(), 1);
  EXPECT_EQ(restricted->at(0, 0).string_value(), "CA");
}

TEST(IntegrationTest, DesktopSessionPersistsCachesAcrossRestart) {
  // Desktop behaviour (§3.2): caches persist across sessions.
  workload::FaaOptions faa;
  faa.num_flights = 10000;
  auto db = workload::GenerateFaaDatabase(faa);
  ASSERT_TRUE(db.ok());
  const std::string cache_path = ::testing::TempDir() + "/vizq_caches.bin";
  query::AbstractQuery q = query::QueryBuilder("faa", "flights")
                               .Dim("carrier")
                               .Agg(AggFunc::kSum, "arr_delay", "total")
                               .Build();

  {  // session 1: miss, execute, persist
    auto source = std::make_shared<federation::TdeDataSource>("faa", *db);
    auto caches = std::make_shared<dashboard::CacheStack>();
    dashboard::QueryService service(source, caches);
    ASSERT_TRUE(service.RegisterTableView("flights").ok());
    dashboard::BatchReport report;
    ASSERT_TRUE(service.ExecuteBatch({q}, {}, &report).ok());
    EXPECT_EQ(report.remote_queries, 1);
    ASSERT_TRUE(cache::SaveCachesToFile(caches->intelligent, caches->literal,
                                        cache_path)
                    .ok());
  }
  {  // session 2 ("restart"): loaded caches serve the query locally
    auto source = std::make_shared<federation::TdeDataSource>("faa", *db);
    auto caches = std::make_shared<dashboard::CacheStack>();
    ASSERT_TRUE(cache::LoadCachesFromFile(cache_path, &caches->intelligent,
                                          &caches->literal)
                    .ok());
    dashboard::QueryService service(source, caches);
    ASSERT_TRUE(service.RegisterTableView("flights").ok());
    dashboard::BatchReport report;
    auto result = service.ExecuteBatch({q}, {}, &report);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(report.remote_queries, 0) << report.Summary();
    EXPECT_EQ(report.cache_hits, 1);
  }
  std::remove(cache_path.c_str());
}

TEST(IntegrationTest, RenderPrefetchInteractLoop) {
  // Desktop loop: render -> prefetch -> user clicks a predicted mark ->
  // instant refresh; repeat with an unpredicted click.
  workload::FaaOptions faa;
  faa.num_flights = 15000;
  auto db = workload::GenerateFaaDatabase(faa);
  ASSERT_TRUE(db.ok());
  auto source = std::make_shared<federation::TdeDataSource>("faa", *db);
  auto caches = std::make_shared<dashboard::CacheStack>();
  dashboard::QueryService service(source, caches);
  ASSERT_TRUE(service.RegisterView(workload::FlightsStarView()).ok());

  dashboard::Dashboard dash = workload::BuildFigure1Dashboard("faa");
  dashboard::DashboardRenderer renderer(&service);
  dashboard::Prefetcher prefetcher(&service);
  dashboard::InteractionState state;
  dashboard::BatchOptions options;
  options.adjust.add_filter_dimensions = true;

  auto load = renderer.Render(dash, &state, options);
  ASSERT_TRUE(load.ok());
  prefetcher.PrefetchAfterRender(dash, state, *load, options);
  prefetcher.Wait();

  // Click the top origin state (predicted).
  const ResultTable& origins = load->zone_results.at("OriginMap");
  state.Select("OriginMap", "origin_state", {origins.at(0, 0)});
  auto r1 = renderer.Refresh(dash, &state, dash.ActionTargets("OriginMap"),
                             options);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->batches[0].remote_queries, 0) << r1->batches[0].Summary();

  // Every rendered zone carries sane data.
  for (const auto& [zone, table] : r1->zone_results) {
    EXPECT_GT(table.num_columns(), 0) << zone;
  }
}

}  // namespace
}  // namespace vizq
