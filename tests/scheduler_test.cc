// Scheduler tests: priority dispatch order, deadline (EDF) ordering
// inside a class, admission control, shutdown semantics, TaskGroup join /
// concurrency bounding / inline fallback, anti-starvation under sustained
// interactive load, skip-if-cancelled, nested-spawn cap bypass, metrics
// presence, and a mixed-class stress loop meant to run under TSan.
//
// Single-core host note: tasks sleep (simulated I/O) instead of spinning,
// so ordering and starvation assertions hold even when every worker
// timeslices on one CPU.

#include "src/common/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace vizq {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Holds the scheduler's only worker busy until Release(), so tests can
// stage a queue and observe the dispatch order.
class WorkerGate {
 public:
  explicit WorkerGate(Scheduler* sched) {
    Status s = sched->Submit(TaskClass::kInteractive, [this] {
      std::unique_lock<std::mutex> lock(mu_);
      running_ = true;
      running_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    });
    EXPECT_TRUE(s.ok()) << s.ToString();  // ASSERT illegal in a ctor
    std::unique_lock<std::mutex> lock(mu_);
    running_cv_.wait(lock, [this] { return running_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable running_cv_, release_cv_;
  bool running_ = false;
  bool released_ = false;
};

TEST(SchedulerTest, RunsSubmittedTasks) {
  SchedulerOptions opts;
  opts.num_threads = 4;
  Scheduler sched(opts);
  std::atomic<int> ran{0};
  TaskGroup group(&sched, TaskClass::kInteractive);
  for (int i = 0; i < 32; ++i) {
    group.Spawn([&ran] { ran.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(group.spawned(), 32);
  // Wait() returns when the last task *body* finishes; the scheduler
  // bumps its completed counter just after. WaitForCompleted blocks on
  // the scheduler's own completion CV — no wall-clock polling.
  const int64_t want = 32 - group.ran_inline();
  EXPECT_TRUE(sched.WaitForCompleted(TaskClass::kInteractive, want,
                                     std::chrono::seconds(10)));
  EXPECT_GE(sched.completed(TaskClass::kInteractive), want);
}

TEST(SchedulerTest, PriorityClassesDispatchHighestFirst) {
  SchedulerOptions opts;
  opts.num_threads = 1;
  opts.starvation_boost_period = 0;  // pure priority for this test
  Scheduler sched(opts);
  WorkerGate gate(&sched);

  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&](const char* label) {
    return [&order, &mu, label] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(label);
    };
  };
  // Submitted lowest class first: FIFO would run "background" first,
  // priority dispatch must not.
  ASSERT_TRUE(sched.Submit(TaskClass::kBackground, record("background")).ok());
  ASSERT_TRUE(sched.Submit(TaskClass::kBatch, record("batch")).ok());
  ASSERT_TRUE(sched.Submit(TaskClass::kInteractive, record("interactive")).ok());

  gate.Release();
  TaskGroup drain(&sched, TaskClass::kBackground);
  drain.Spawn([] {});
  drain.Wait();  // background is the lowest class: it runs last

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "interactive");
  EXPECT_EQ(order[1], "batch");
  EXPECT_EQ(order[2], "background");
}

TEST(SchedulerTest, DeadlineOrdersWithinClass) {
  SchedulerOptions opts;
  opts.num_threads = 1;
  Scheduler sched(opts);
  WorkerGate gate(&sched);

  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&](const char* label) {
    return [&order, &mu, label] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(label);
    };
  };
  ExecContext loose = ExecContext::WithDeadlineMs(60000);
  ExecContext tight = ExecContext::WithDeadlineMs(30000);
  // Submit in the order none, loose, tight: EDF must invert it.
  ASSERT_TRUE(sched.Submit(TaskClass::kInteractive, record("none")).ok());
  ASSERT_TRUE(
      sched.Submit(TaskClass::kInteractive, record("loose"), loose).ok());
  ASSERT_TRUE(
      sched.Submit(TaskClass::kInteractive, record("tight"), tight).ok());

  gate.Release();
  TaskGroup drain(&sched, TaskClass::kBackground);
  drain.Spawn([] {});
  drain.Wait();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "tight");
  EXPECT_EQ(order[1], "loose");
  EXPECT_EQ(order[2], "none");  // deadline-free tasks sort after deadlined
}

TEST(SchedulerTest, AdmissionControlShedsWithTypedError) {
  SchedulerOptions opts;
  opts.num_threads = 1;
  opts.max_queued_background = 2;
  Scheduler sched(opts);
  WorkerGate gate(&sched);

  EXPECT_TRUE(sched.Submit(TaskClass::kBackground, [] {}).ok());
  EXPECT_TRUE(sched.Submit(TaskClass::kBackground, [] {}).ok());
  Status shed = sched.Submit(TaskClass::kBackground, [] {});
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(sched.shed(TaskClass::kBackground), 1);
  // Other classes are unaffected by the full background queue.
  EXPECT_TRUE(sched.Submit(TaskClass::kInteractive, [] {}).ok());
  gate.Release();
}

TEST(SchedulerTest, SubmitAfterShutdownFailsCleanly) {
  Scheduler sched(SchedulerOptions{.num_threads = 2});
  std::atomic<int> ran{0};
  ASSERT_TRUE(
      sched.Submit(TaskClass::kInteractive, [&ran] { ran.fetch_add(1); }).ok());
  sched.Shutdown();
  EXPECT_EQ(ran.load(), 1);  // Shutdown completes queued work first
  Status late = sched.Submit(TaskClass::kInteractive, [&ran] { ran.fetch_add(1); });
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ran.load(), 1);
}

TEST(SchedulerTest, TaskGroupBoundsConcurrency) {
  SchedulerOptions opts;
  opts.num_threads = 8;
  Scheduler sched(opts);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  TaskGroup group(&sched, TaskClass::kBatch, ExecContext::Background(),
                  /*max_concurrency=*/2);
  for (int i = 0; i < 10; ++i) {
    group.Spawn([&] {
      int now = running.fetch_add(1) + 1;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      SleepMs(2);
      running.fetch_sub(1);
    });
  }
  group.Wait();
  EXPECT_EQ(group.spawned(), 10);
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
}

TEST(SchedulerTest, TaskGroupRunsInlineAfterShutdown) {
  Scheduler sched(SchedulerOptions{.num_threads = 1});
  sched.Shutdown();
  std::atomic<int> ran{0};
  TaskGroup group(&sched, TaskClass::kInteractive);
  for (int i = 0; i < 4; ++i) {
    group.Spawn([&ran] { ran.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 4);  // work is never lost
  EXPECT_EQ(group.ran_inline(), 4);
}

TEST(SchedulerTest, TaskGroupRunsInlineWhenShed) {
  SchedulerOptions opts;
  opts.num_threads = 1;
  opts.max_queued_batch = 1;
  Scheduler sched(opts);
  WorkerGate gate(&sched);

  std::atomic<int> ran{0};
  TaskGroup group(&sched, TaskClass::kBatch);
  for (int i = 0; i < 4; ++i) {
    group.Spawn([&ran] { ran.fetch_add(1); });
  }
  // Queue capacity 1: at least the overflow spawns ran inline already.
  EXPECT_GE(group.ran_inline(), 3);
  gate.Release();
  group.Wait();
  EXPECT_EQ(ran.load(), 4);
}

TEST(SchedulerTest, BackgroundIsNotStarvedByInteractiveFlood) {
  SchedulerOptions opts;
  opts.num_threads = 2;
  opts.starvation_boost_period = 4;
  Scheduler sched(opts);

  constexpr int kInteractive = 120;
  std::atomic<int> interactive_done{0};
  std::atomic<int> interactive_done_when_bg_ran{-1};
  std::mutex mu;
  std::condition_variable cv;
  bool bg_ran = false;

  TaskGroup flood(&sched, TaskClass::kInteractive);
  for (int i = 0; i < kInteractive; ++i) {
    flood.Spawn([&] {
      SleepMs(1);  // simulated I/O: keeps both workers persistently busy
      interactive_done.fetch_add(1);
    });
  }
  ASSERT_TRUE(sched
                  .Submit(TaskClass::kBackground,
                          [&] {
                            interactive_done_when_bg_ran.store(
                                interactive_done.load());
                            std::lock_guard<std::mutex> lock(mu);
                            bg_ran = true;
                            cv.notify_all();
                          })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return bg_ran; });
  }
  flood.Wait();
  // The starvation boost must let the background task through while the
  // interactive flood is still in progress, not after it drains.
  EXPECT_GE(interactive_done_when_bg_ran.load(), 0);
  EXPECT_LT(interactive_done_when_bg_ran.load(), kInteractive);
}

TEST(SchedulerTest, SkipIfCancelledDropsTask) {
  Scheduler sched(SchedulerOptions{.num_threads = 1});
  WorkerGate gate(&sched);

  ExecContext ctx;
  ctx.Cancel();
  std::atomic<int> ran{0};
  SubmitOptions sopts;
  sopts.skip_if_cancelled = true;
  ASSERT_TRUE(sched
                  .Submit(TaskClass::kBackground, [&ran] { ran.fetch_add(1); },
                          ctx, sopts)
                  .ok());
  gate.Release();
  TaskGroup drain(&sched, TaskClass::kBackground);
  drain.Spawn([] {});
  drain.Wait();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(sched.skipped_cancelled(TaskClass::kBackground), 1);
}

TEST(SchedulerTest, NestedSpawnBypassesClassCaps) {
  // Two workers, background cap = 1: the parent occupies the only
  // background slot, so its child could never dispatch on the free
  // worker unless nested tasks bypass the class caps — the parent,
  // blocked in child.Wait(), would deadlock the group.
  SchedulerOptions opts;
  opts.num_threads = 2;
  Scheduler sched(opts);

  std::atomic<bool> child_ran{false};
  TaskGroup parent(&sched, TaskClass::kBackground);
  parent.Spawn([&] {
    TaskGroup child(&sched, TaskClass::kBackground);
    child.Spawn([&] { child_ran.store(true); });
    child.Wait();
  });
  parent.Wait();
  EXPECT_TRUE(child_ran.load());
}

// Regression: the cap bypass must find a nested task anywhere in the
// class queue, not only at the heap front. A non-nested task with an
// earlier sequence number sits at the front of the capped background
// queue; the nested child queued behind it must still dispatch, or its
// parent (holding the only background slot) deadlocks the class.
TEST(SchedulerTest, NestedTaskBehindCappedNonNestedDispatches) {
  SchedulerOptions opts;
  opts.num_threads = 2;  // background cap resolves to 1
  opts.starvation_boost_period = 0;
  Scheduler sched(opts);

  std::mutex mu;
  std::condition_variable cv;
  bool parent_running = false;
  bool decoy_queued = false;
  bool child_done = false;
  bool parent_done = false;
  // The assertion target: the child must dispatch while the parent still
  // holds the background slot — a late run after the parent gives up
  // (freeing the slot) is exactly the deadlock being tested for.
  bool child_ran_while_parent_blocked = false;

  ASSERT_TRUE(
      sched
          .Submit(TaskClass::kBackground,
                  [&] {
                    {
                      std::unique_lock<std::mutex> lock(mu);
                      parent_running = true;
                      cv.notify_all();
                      cv.wait(lock, [&] { return decoy_queued; });
                    }
                    // Submitted from a worker: nested. It lands behind
                    // the decoy in the FIFO heap.
                    Status child =
                        sched.Submit(TaskClass::kBackground, [&] {
                          std::lock_guard<std::mutex> lock(mu);
                          child_done = true;
                          cv.notify_all();
                        });
                    EXPECT_TRUE(child.ok()) << child.ToString();
                    std::unique_lock<std::mutex> lock(mu);
                    child_ran_while_parent_blocked =
                        cv.wait_for(lock, std::chrono::seconds(5),
                                    [&] { return child_done; });
                    parent_done = true;
                    cv.notify_all();
                  })
          .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parent_running; });
  }
  // Non-nested decoy: earlier seq than the child, undispatchable while
  // the parent holds the background slot.
  ASSERT_TRUE(sched.Submit(TaskClass::kBackground, [] {}).ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    decoy_queued = true;
    cv.notify_all();
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return parent_done; }));
  EXPECT_TRUE(child_ran_while_parent_blocked);
}

// Regression: Wait() on a scheduler worker must help drain the group
// instead of parking. With a single worker stuck inside the outer task,
// the inner group's tasks are queued with no worker left to dispatch
// them — the waiting worker has to claim and run them itself.
TEST(SchedulerTest, WaitOnWorkerHelpsDrainQueuedGroupTasks) {
  Scheduler sched(SchedulerOptions{.num_threads = 1});
  std::atomic<int> ran{0};
  TaskGroup outer(&sched, TaskClass::kInteractive);
  outer.Spawn([&] {
    TaskGroup inner(&sched, TaskClass::kInteractive);
    for (int i = 0; i < 4; ++i) inner.Spawn([&ran] { ran.fetch_add(1); });
    inner.Wait();
    EXPECT_EQ(inner.stolen(), 4);
  });
  outer.Wait();
  EXPECT_EQ(ran.load(), 4);
}

TEST(SchedulerTest, NonPrioritizedModePublishesSharedDepthGauge) {
  obs::MetricsRegistry& metrics = obs::GlobalMetrics();
  SchedulerOptions opts;
  opts.num_threads = 1;
  opts.prioritize = false;
  Scheduler sched(opts);
  WorkerGate gate(&sched);
  // The shared queue holds every class; publishing it as "interactive"
  // would misreport the baseline configuration benches compare against.
  ASSERT_TRUE(sched.Submit(TaskClass::kBatch, [] {}).ok());
  obs::MetricsSnapshot snap = metrics.TakeSnapshot();
  EXPECT_TRUE(snap.gauges.count("sched.queue_depth.shared"));
  gate.Release();
}

TEST(SchedulerTest, NonPrioritizedModeIsPureFifo) {
  SchedulerOptions opts;
  opts.num_threads = 1;
  opts.prioritize = false;
  Scheduler sched(opts);
  WorkerGate gate(&sched);

  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&](const char* label) {
    return [&order, &mu, label] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(label);
    };
  };
  ASSERT_TRUE(sched.Submit(TaskClass::kBackground, record("first")).ok());
  ASSERT_TRUE(sched.Submit(TaskClass::kInteractive, record("second")).ok());
  gate.Release();
  TaskGroup drain(&sched, TaskClass::kBatch);
  drain.Spawn([] {});
  drain.Wait();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "first");  // submission order, class ignored
  EXPECT_EQ(order[1], "second");
}

TEST(SchedulerTest, SchedulerMetricsLandInGlobalRegistry) {
  obs::MetricsRegistry& metrics = obs::GlobalMetrics();
  int64_t before =
      metrics.TakeSnapshot().counters.count("sched.submitted.interactive") > 0
          ? metrics.TakeSnapshot().counters.at("sched.submitted.interactive")
          : 0;
  Scheduler sched(SchedulerOptions{.num_threads = 2});
  TaskGroup group(&sched, TaskClass::kInteractive);
  for (int i = 0; i < 8; ++i) group.Spawn([] { SleepMs(1); });
  group.Wait();

  obs::MetricsSnapshot snap = metrics.TakeSnapshot();
  ASSERT_TRUE(snap.counters.count("sched.submitted.interactive"));
  EXPECT_GE(snap.counters.at("sched.submitted.interactive"), before + 1);
  bool has_wait = false;
  bool has_run = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "sched.wait_us.interactive") has_wait = true;
    if (h.name == "sched.run_us.interactive") has_run = true;
  }
  EXPECT_TRUE(has_wait);
  EXPECT_TRUE(has_run);
  ASSERT_TRUE(snap.gauges.count("sched.queue_depth.interactive"));
}

// Mixed-class stress: concurrent submitters, task groups, cancellation,
// and an admission-sized queue. No ordering asserts — the point is that
// TSan sees the whole surface racing and the counts still reconcile.
TEST(SchedulerStressTest, MixedClassSubmitCancelJoin) {
  SchedulerOptions opts;
  opts.num_threads = 4;
  opts.max_queued_interactive = 64;
  opts.max_queued_batch = 64;
  opts.max_queued_background = 32;
  opts.starvation_boost_period = 4;
  Scheduler sched(opts);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 50;
  std::atomic<int64_t> executed{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      ExecContext cancellable;
      TaskGroup group(&sched,
                      static_cast<TaskClass>(s % kNumTaskClasses),
                      cancellable);
      for (int i = 0; i < kPerSubmitter; ++i) {
        group.Spawn([&executed] { executed.fetch_add(1); });
        if (i == kPerSubmitter / 2) cancellable.Cancel();
        // Fire-and-forget submissions race with the group's (shed is fine).
        SubmitOptions sopts;
        sopts.skip_if_cancelled = true;
        (void)sched.Submit(
            static_cast<TaskClass>((s + i) % kNumTaskClasses),
            [&executed] { executed.fetch_add(1); }, cancellable, sopts);
      }
      group.Wait();
    });
  }
  for (std::thread& t : submitters) t.join();
  // Every group task executed (groups never lose work).
  EXPECT_GE(executed.load(), kSubmitters * kPerSubmitter);
  sched.Shutdown();
  int64_t completed = 0;
  int64_t skipped = 0;
  for (int c = 0; c < kNumTaskClasses; ++c) {
    completed += sched.completed(static_cast<TaskClass>(c));
    skipped += sched.skipped_cancelled(static_cast<TaskClass>(c));
    EXPECT_EQ(sched.queue_depth(static_cast<TaskClass>(c)), 0);
  }
  EXPECT_GE(completed, skipped);
}

}  // namespace
}  // namespace vizq
