// Workbook / published-extract tests (§5.1–5.2): embedded extracts
// duplicate disk bytes and refresh load linearly with the workbook count;
// a published extract pays both once.

#include "src/server/workbook.h"

#include <gtest/gtest.h>

#include "src/workload/faa_generator.h"

namespace vizq::server {
namespace {

ExtractRefreshFn FaaRefresher(int* counter) {
  return [counter]() -> StatusOr<std::shared_ptr<tde::Database>> {
    if (counter != nullptr) ++*counter;
    workload::FaaOptions options;
    options.num_flights = 2000;
    return workload::GenerateFaaDatabase(options);
  };
}

TEST(WorkbookTest, EmbeddedExtractsDuplicateBytesAndRefreshLoad) {
  constexpr int kWorkbooks = 10;
  int live_queries = 0;

  WorkbookRepository embedded;
  for (int i = 0; i < kWorkbooks; ++i) {
    ASSERT_TRUE(embedded
                    .AddSelfContainedWorkbook("wb" + std::to_string(i),
                                              FaaRefresher(&live_queries))
                    .ok());
  }
  int64_t embedded_bytes = embedded.TotalExtractBytes();
  int setup_queries = live_queries;
  EXPECT_EQ(setup_queries, kWorkbooks);  // one extraction per copy

  live_queries = 0;
  auto refreshed = embedded.RefreshAll();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(*refreshed, kWorkbooks);  // the §5.1 redundant load
  EXPECT_EQ(live_queries, kWorkbooks);

  // Published: one extract shared by every workbook.
  int published_queries = 0;
  WorkbookRepository published;
  ASSERT_TRUE(
      published.PublishExtract("faa", FaaRefresher(&published_queries)).ok());
  for (int i = 0; i < kWorkbooks; ++i) {
    ASSERT_TRUE(
        published.AddPublishedWorkbook("wb" + std::to_string(i), "faa").ok());
  }
  int64_t published_bytes = published.TotalExtractBytes();
  EXPECT_LT(published_bytes * (kWorkbooks - 1), embedded_bytes)
      << "published extract storage must be ~1/N of embedded copies";

  published_queries = 0;
  auto prefreshed = published.RefreshAll();
  ASSERT_TRUE(prefreshed.ok());
  EXPECT_EQ(*prefreshed, 1);  // a single refresh serves all workbooks
  EXPECT_EQ(published_queries, 1);
}

TEST(WorkbookTest, WorkbooksResolveTheirExtracts) {
  WorkbookRepository repo;
  ASSERT_TRUE(repo.PublishExtract("faa", FaaRefresher(nullptr)).ok());
  ASSERT_TRUE(repo.AddPublishedWorkbook("shared", "faa").ok());
  ASSERT_TRUE(
      repo.AddSelfContainedWorkbook("own", FaaRefresher(nullptr)).ok());

  auto shared_db = repo.ExtractFor("shared");
  auto own_db = repo.ExtractFor("own");
  ASSERT_TRUE(shared_db.ok());
  ASSERT_TRUE(own_db.ok());
  EXPECT_NE(shared_db->get(), own_db->get());

  // Two published workbooks share one database instance.
  ASSERT_TRUE(repo.AddPublishedWorkbook("shared2", "faa").ok());
  auto shared2_db = repo.ExtractFor("shared2");
  ASSERT_TRUE(shared2_db.ok());
  EXPECT_EQ(shared_db->get(), shared2_db->get());

  // After a refresh, published references see the fresh extract.
  ASSERT_TRUE(repo.RefreshAll().ok());
  auto after = repo.ExtractFor("shared");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->get(), shared_db->get());
}

TEST(WorkbookTest, Validations) {
  WorkbookRepository repo;
  EXPECT_FALSE(repo.AddPublishedWorkbook("wb", "missing").ok());
  ASSERT_TRUE(repo.PublishExtract("src", FaaRefresher(nullptr)).ok());
  EXPECT_FALSE(repo.PublishExtract("src", FaaRefresher(nullptr)).ok());
  ASSERT_TRUE(repo.AddPublishedWorkbook("wb", "src").ok());
  EXPECT_FALSE(repo.AddPublishedWorkbook("wb", "src").ok());
  EXPECT_FALSE(repo.ExtractFor("nope").ok());
}

}  // namespace
}  // namespace vizq::server
