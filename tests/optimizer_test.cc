// Optimizer pass tests: plan shapes after constant folding, select
// pushdown, column pruning, join culling, order removal, and the
// parallelizer's Exchange placement.

#include "src/tde/plan/optimizer.h"

#include <gtest/gtest.h>

#include "src/tde/engine.h"
#include "src/tde/plan/binder.h"
#include "src/tde/plan/parallelizer.h"
#include "src/tde/plan/rewriter.h"
#include "src/tde/plan/tql_parser.h"
#include "tests/test_util.h"

namespace vizq::tde {
namespace {

using vizq::testing::MakeTestDatabase;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : db_(MakeTestDatabase(4096)) {}

  LogicalOpPtr Prepare(const std::string& tql) {
    auto plan = ParseTql(tql);
    EXPECT_TRUE(plan.ok()) << plan.status();
    EXPECT_TRUE(BindPlan(*plan, *db_).ok());
    EXPECT_TRUE(RewritePlan(&*plan).ok());
    return *plan;
  }

  std::shared_ptr<Database> db_;
};

TEST_F(OptimizerTest, ConstantFoldingSimplifiesPredicates) {
  LogicalOpPtr plan = Prepare(
      "(select (and (> units (+ 1 2)) true) (scan sales))");
  ASSERT_TRUE(FoldConstantsPass(&plan).ok());
  ASSERT_EQ(plan->kind, LogicalKind::kSelect);
  // (and (> units 3) true) -> (> units 3)
  EXPECT_EQ(plan->predicate->binary_op, BinaryOp::kGt);
  ASSERT_EQ(plan->predicate->children[1]->kind, ExprKind::kLiteral);
  EXPECT_EQ(plan->predicate->children[1]->literal.int_value(), 3);
}

TEST_F(OptimizerTest, AlwaysTrueSelectDisappears) {
  LogicalOpPtr plan = Prepare("(select (or true (> units 3)) (scan sales))");
  ASSERT_TRUE(FoldConstantsPass(&plan).ok());
  EXPECT_EQ(plan->kind, LogicalKind::kScan);
}

TEST_F(OptimizerTest, SingleElementInBecomesEquality) {
  LogicalOpPtr plan = Prepare("(select (in region \"East\") (scan sales))");
  ASSERT_TRUE(FoldConstantsPass(&plan).ok());
  ASSERT_EQ(plan->kind, LogicalKind::kSelect);
  EXPECT_EQ(plan->predicate->kind, ExprKind::kBinary);
  EXPECT_EQ(plan->predicate->binary_op, BinaryOp::kEq);
}

TEST_F(OptimizerTest, SelectPushesThroughProjectAndJoin) {
  LogicalOpPtr plan = Prepare(
      "(select (and (= region \"East\") (= category \"fruit\"))"
      " (join inner ((product name)) (scan sales) (scan products)))");
  ASSERT_TRUE(SelectPushdownPass(&plan).ok());
  // Both conjuncts moved into the join sides; the top Select is gone.
  ASSERT_EQ(plan->kind, LogicalKind::kJoin);
  EXPECT_EQ(plan->children[0]->kind, LogicalKind::kSelect);  // region: left
  EXPECT_EQ(plan->children[1]->kind, LogicalKind::kSelect);  // category: right
}

TEST_F(OptimizerTest, SelectOnGroupColumnsPushesBelowAggregate) {
  LogicalOpPtr plan = Prepare(
      "(select (= region \"East\")"
      " (aggregate ((region region)) ((n count*)) (scan sales)))");
  ASSERT_TRUE(SelectPushdownPass(&plan).ok());
  ASSERT_EQ(plan->kind, LogicalKind::kAggregate);
  EXPECT_EQ(plan->children[0]->kind, LogicalKind::kSelect);
}

TEST_F(OptimizerTest, SelectOnAggregateOutputStaysAbove) {
  LogicalOpPtr plan = Prepare(
      "(select (> n 10)"
      " (aggregate ((region region)) ((n count*)) (scan sales)))");
  ASSERT_TRUE(SelectPushdownPass(&plan).ok());
  EXPECT_EQ(plan->kind, LogicalKind::kSelect);  // HAVING-style stays
  EXPECT_EQ(plan->children[0]->kind, LogicalKind::kAggregate);
}

TEST_F(OptimizerTest, ColumnPruningNarrowsScans) {
  LogicalOpPtr plan = Prepare(
      "(aggregate ((region region)) ((total sum units)) (scan sales))");
  ASSERT_TRUE(ColumnPruningPass(&plan, true).ok());
  const LogicalOp* scan = plan->children[0].get();
  ASSERT_EQ(scan->kind, LogicalKind::kScan);
  // Only region(0) and units(2) survive out of 5 columns.
  EXPECT_EQ(scan->scan_columns.size(), 2u);
}

TEST_F(OptimizerTest, PruningKeepsPredicateColumns) {
  LogicalOpPtr plan = Prepare(
      "(aggregate ((region region)) ((n count*))"
      " (select (> price 10.0) (scan sales)))");
  ASSERT_TRUE(ColumnPruningPass(&plan, true).ok());
  // Results must still be correct end-to-end.
  TdeEngine engine(db_);
  auto direct = engine.Execute(
      "(aggregate ((region region)) ((n count*))"
      " (select (> price 10.0) (scan sales)))",
      QueryOptions::Serial());
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_EQ(direct->table.num_rows(), 4);
}

TEST_F(OptimizerTest, RedundantOrderUnderAggregateRemoved) {
  LogicalOpPtr plan = Prepare(
      "(aggregate ((product product)) ((n count*))"
      " (order ((units asc)) (scan sales)))");
  ASSERT_TRUE(OrderRemovalPass(&plan).ok());
  EXPECT_EQ(plan->children[0]->kind, LogicalKind::kScan);
}

TEST_F(OptimizerTest, OrderFeedingStreamingAggregateKept) {
  LogicalOpPtr plan = Prepare(
      "(aggregate ((units units)) ((n count*))"
      " (order ((units asc)) (scan sales)))");
  ASSERT_TRUE(StreamingAggPass(&plan).ok());
  ASSERT_TRUE(OrderRemovalPass(&plan).ok());
  EXPECT_TRUE(plan->prefer_streaming);
  EXPECT_EQ(plan->children[0]->kind, LogicalKind::kOrder);
}

TEST_F(OptimizerTest, OrderUnderTopNRemoved) {
  LogicalOpPtr plan = Prepare(
      "(topn 3 ((units desc)) (order ((price asc)) (scan sales)))");
  ASSERT_TRUE(OrderRemovalPass(&plan).ok());
  EXPECT_EQ(plan->children[0]->kind, LogicalKind::kScan);
}

TEST_F(OptimizerTest, ParallelizerInsertsExchangeAtRoot) {
  LogicalOpPtr plan = Prepare("(select (> units 50) (scan sales))");
  ParallelOptions options;
  options.max_dop = 4;
  options.min_rows_per_fraction = 256;
  ASSERT_TRUE(ParallelizePlan(&plan, options).ok());
  ASSERT_EQ(plan->kind, LogicalKind::kExchange);
  EXPECT_GT(plan->dop, 1);
  EXPECT_EQ(plan->children[0]->kind, LogicalKind::kSelect);
}

TEST_F(OptimizerTest, ParallelizerBuildsLocalGlobalShape) {
  LogicalOpPtr plan = Prepare(
      "(aggregate ((product product)) ((total sum units)) (scan sales))");
  ParallelOptions options;
  options.max_dop = 4;
  options.min_rows_per_fraction = 256;
  options.enable_range_partition = false;
  ASSERT_TRUE(ParallelizePlan(&plan, options).ok());
  // Final <- Exchange <- Partial <- Scan.
  ASSERT_EQ(plan->kind, LogicalKind::kAggregate);
  EXPECT_EQ(plan->agg_phase, AggPhase::kFinal);
  ASSERT_EQ(plan->children[0]->kind, LogicalKind::kExchange);
  const LogicalOp* partial = plan->children[0]->children[0].get();
  ASSERT_EQ(partial->kind, LogicalKind::kAggregate);
  EXPECT_EQ(partial->agg_phase, AggPhase::kPartial);
}

TEST_F(OptimizerTest, ParallelizerLocalGlobalTopN) {
  LogicalOpPtr plan = Prepare(
      "(topn 3 ((units desc)) (scan sales))");
  ParallelOptions options;
  options.max_dop = 4;
  options.min_rows_per_fraction = 256;
  ASSERT_TRUE(ParallelizePlan(&plan, options).ok());
  // Global TopN over Exchange over local TopN.
  ASSERT_EQ(plan->kind, LogicalKind::kTopN);
  ASSERT_EQ(plan->children[0]->kind, LogicalKind::kExchange);
  EXPECT_EQ(plan->children[0]->children[0]->kind, LogicalKind::kTopN);
}

TEST_F(OptimizerTest, SmallTablesStaySerial) {
  LogicalOpPtr plan = Prepare("(scan products)");  // 8 rows
  ParallelOptions options;
  options.max_dop = 8;
  ASSERT_TRUE(ParallelizePlan(&plan, options).ok());
  EXPECT_EQ(plan->kind, LogicalKind::kScan);
  EXPECT_EQ(plan->scan_dop, 1);
}

// Property: every optimizer configuration preserves results.
class OptimizerEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalenceTest, PassesPreserveSemantics) {
  int mask = GetParam();
  auto db = MakeTestDatabase(4096);
  TdeEngine engine(db);
  QueryOptions baseline = QueryOptions::Serial();
  baseline.optimizer.enable_constant_folding = false;
  baseline.optimizer.enable_select_pushdown = false;
  baseline.optimizer.enable_column_pruning = false;
  baseline.optimizer.enable_join_culling = false;
  baseline.optimizer.enable_streaming_agg = false;
  baseline.optimizer.enable_order_removal = false;
  baseline.optimizer.rle_index = OptimizerOptions::RleIndexMode::kOff;

  QueryOptions tuned = QueryOptions::Serial();
  tuned.optimizer.enable_constant_folding = mask & 1;
  tuned.optimizer.enable_select_pushdown = mask & 2;
  tuned.optimizer.enable_column_pruning = mask & 4;
  tuned.optimizer.enable_join_culling = mask & 8;
  tuned.optimizer.enable_streaming_agg = mask & 16;
  tuned.optimizer.rle_index = (mask & 32)
                                  ? OptimizerOptions::RleIndexMode::kForce
                                  : OptimizerOptions::RleIndexMode::kOff;

  const std::vector<std::string> queries = {
      "(aggregate ((region region)) ((total sum units) (n count*))"
      " (select (and (= region \"East\") (> units 10)) (scan sales)))",
      "(topn 3 ((total desc)) (aggregate ((category category))"
      " ((total sum units)) (select (> price 5.0) (join inner ((product "
      "name)) (scan sales) (scan products) referential))))",
      "(aggregate ((region region)) ((m max price))"
      " (join inner ((product name)) (scan sales) (scan products)"
      " referential))",
      "(order ((region desc)) (distinct (project ((region region))"
      " (select (in region \"East\" \"West\" \"North\") (scan sales)))))",
  };
  for (const std::string& q : queries) {
    auto a = engine.Execute(q, baseline);
    auto b = engine.Execute(q, tuned);
    ASSERT_TRUE(a.ok()) << a.status() << " for " << q;
    ASSERT_TRUE(b.ok()) << b.status() << " for " << q;
    EXPECT_TRUE(ResultTable::SameUnordered(a->table, b->table))
        << "mask=" << mask << "\nquery " << q << "\nbaseline:\n"
        << a->table.ToCsv() << "tuned:\n"
        << b->table.ToCsv() << "plan:\n"
        << b->plan_text;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPassCombinations, OptimizerEquivalenceTest,
                         ::testing::Range(0, 64));

}  // namespace
}  // namespace vizq::tde
