// Regression tests for the parallel blocking operators (DESIGN.md §12):
// the partitioned hash-join build, the partitioned kFinal aggregate merge,
// cancellation during/while-waiting-on a build, and the join probe path on
// selection-vector / run-encoded batches.

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>

#include "src/common/scheduler.h"
#include "src/tde/engine.h"
#include "src/tde/exec/join.h"
#include "src/tde/exec/operators.h"
#include "src/tde/exec/scan.h"
#include "tests/test_util.h"

namespace vizq::tde {
namespace {

using vizq::testing::MakeProductDim;
using vizq::testing::MakeSalesTable;
using vizq::testing::MakeTestDatabase;
using vizq::testing::TablesEquivalent;

BatchSchema IntSchema(const std::string& name) {
  BatchSchema s;
  s.names = {name};
  s.prototypes = {ColumnVector(DataType::Int64())};
  return s;
}

// Emits one fixed batch per Open().
class OneBatchOp : public Operator {
 public:
  OneBatchOp(Batch batch, BatchSchema schema)
      : batch_(std::move(batch)), schema_(std::move(schema)) {}

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override {
    done_ = false;
    return OkStatus();
  }
  StatusOr<bool> Next(Batch* out) override {
    if (done_) return false;
    *out = batch_;
    done_ = true;
    return true;
  }
  Status Close() override { return OkStatus(); }

 private:
  Batch batch_;
  BatchSchema schema_;
  bool done_ = false;
};

// --- ExecStats: the sectioned critical path the modeled makespan uses ---

TEST(ExecStatsTest, CriticalPathSumsPerSectionMaxima) {
  ExecStats stats;
  int scan_section = stats.NewSection();
  int build_section = stats.NewSection();
  stats.AddFraction(0.10, 100, scan_section, ExecStats::kStageScan);
  stats.AddFraction(0.40, 100, scan_section, ExecStats::kStageScan);
  stats.AddFraction(0.20, 100, build_section, ExecStats::kStageBuild);
  stats.AddFraction(0.30, 100, build_section, ExecStats::kStageBuild);
  // Sections run back-to-back: 0.40 (slowest scan) + 0.30 (slowest build).
  EXPECT_NEAR(stats.CriticalPathSeconds(), 0.70, 1e-12);
  EXPECT_NEAR(stats.StageCriticalPathSeconds(ExecStats::kStageBuild), 0.30,
              1e-12);
  EXPECT_NEAR(stats.StageCriticalPathSeconds(ExecStats::kStageMerge), 0.0,
              1e-12);
  // The legacy single-section accessors are unchanged.
  EXPECT_NEAR(stats.MaxFractionSeconds(), 0.40, 1e-12);
  EXPECT_NEAR(stats.SumFractionSeconds(), 1.00, 1e-12);
}

TEST(ExecStatsTest, UntaggedFractionsShareOneSection) {
  // Fractions recorded without a section (legacy callers) model one
  // concurrent fan-out: critical path == global max.
  ExecStats stats;
  stats.AddFraction(0.10, 100);
  stats.AddFraction(0.25, 100);
  EXPECT_NEAR(stats.CriticalPathSeconds(), 0.25, 1e-12);
}

// --- cancellation: mid-build and while waiting on another builder ---

// Emits `total_batches` batches; cancels `ctx` (shared cancel token) after
// `cancel_after` of them, on the first Open() only.
class CancelDuringScanOp : public Operator {
 public:
  CancelDuringScanOp(BatchSchema schema, int total_batches, int cancel_after,
                     ExecContext ctx)
      : schema_(std::move(schema)),
        total_batches_(total_batches),
        cancel_after_(cancel_after),
        ctx_(std::move(ctx)) {}

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override {
    emitted_ = 0;
    return OkStatus();
  }
  StatusOr<bool> Next(Batch* out) override {
    if (emitted_ >= total_batches_) return false;
    if (emitted_ == cancel_after_ && !cancel_fired_) {
      cancel_fired_ = true;
      ctx_.Cancel();
    }
    *out = schema_.NewBatch();
    auto& col = out->columns[0];
    for (int64_t r = 0; r < 1024; ++r) col.AppendInt(r % 997);
    out->num_rows = 1024;
    ++emitted_;
    return true;
  }
  Status Close() override { return OkStatus(); }

 private:
  BatchSchema schema_;
  int total_batches_;
  int cancel_after_;
  ExecContext ctx_;
  int emitted_ = 0;
  bool cancel_fired_ = false;
};

TEST(ParallelJoinTest, CancelMidBuildAbortsOpenAndAllowsRetry) {
  ExecContext ctx;  // copies share the cancel token
  auto build_op = std::make_unique<CancelDuringScanOp>(
      IntSchema("k"), /*total_batches=*/64, /*cancel_after=*/8, ctx);
  auto build_key = *BindExpr(Col("k"), build_op->schema());
  auto shared = std::make_shared<SharedBuildState>(
      std::move(build_op), std::vector<ExprPtr>{build_key});

  Batch probe = IntSchema("x").NewBatch();
  probe.columns[0].AppendInt(5);
  probe.num_rows = 1;
  {
    auto probe_op =
        std::make_unique<OneBatchOp>(probe, IntSchema("x"));
    auto probe_key = *BindExpr(Col("x"), probe_op->schema());
    HashJoinOperator join(std::move(probe_op), shared,
                          std::vector<ExprPtr>{probe_key}, JoinType::kInner,
                          ctx);
    // The build-side scan cancels the query partway through the build;
    // EnsureBuilt must notice and abort Open() itself (before this fix the
    // build ignored the context entirely and Open succeeded).
    Status s = join.Open();
    EXPECT_FALSE(s.ok()) << "cancelled build must fail Open";
    (void)join.Close();
  }

  // A failed build releases the build-once latch: a retry under a fresh
  // context succeeds (the stub only cancels on its first Open) and probes
  // see a complete table.
  {
    auto probe_op =
        std::make_unique<OneBatchOp>(probe, IntSchema("x"));
    auto probe_key = *BindExpr(Col("x"), probe_op->schema());
    HashJoinOperator join(std::move(probe_op), shared,
                          std::vector<ExprPtr>{probe_key}, JoinType::kInner);
    auto result = CollectToResultTable(&join);
    ASSERT_TRUE(result.ok()) << result.status();
    // 64 batches x 1024 rows, values r % 997: x=5 appears 64 + 2*...; just
    // require matches exist and count equals the build-side occurrences.
    EXPECT_EQ(result->num_rows(), 64 * 2);  // 5 and 5+997 per batch
  }
}

// Blocks inside Next() until released; flags when the build has entered it.
class GatedScanOp : public Operator {
 public:
  explicit GatedScanOp(BatchSchema schema) : schema_(std::move(schema)) {}

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override {
    done_ = false;
    return OkStatus();
  }
  StatusOr<bool> Next(Batch* out) override {
    if (done_) return false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      entered_ = true;
      cv_.notify_all();
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return released_; });
    *out = schema_.NewBatch();
    out->columns[0].AppendInt(42);
    out->num_rows = 1;
    done_ = true;
    return true;
  }
  Status Close() override { return OkStatus(); }

  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  BatchSchema schema_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
  bool done_ = false;
};

TEST(ParallelJoinTest, CancelledWaiterReturnsWhileBuildRuns) {
  auto gated = std::make_unique<GatedScanOp>(IntSchema("k"));
  GatedScanOp* gate = gated.get();
  auto build_key = *BindExpr(Col("k"), gated->schema());
  auto shared = std::make_shared<SharedBuildState>(
      std::move(gated), std::vector<ExprPtr>{build_key});

  Status builder_status = OkStatus();
  TaskGroup group(&Scheduler::Global(), TaskClass::kInteractive);
  group.Spawn([&] { builder_status = shared->EnsureBuilt(ExecContext()); },
              "test-builder");
  gate->AwaitEntered();  // the spawned builder is now mid-build

  // A second fraction opens with an already-cancelled context: before this
  // fix it blocked on the build mutex for the whole build; now it polls its
  // own context and leaves while the builder keeps running.
  ExecContext cancelled;
  cancelled.Cancel();
  Status waiter = shared->EnsureBuilt(cancelled);
  EXPECT_FALSE(waiter.ok());

  gate->Release();
  group.Wait();
  EXPECT_TRUE(builder_status.ok()) << builder_status;
  // The completed build is usable by later (uncancelled) fractions.
  Batch probe = IntSchema("x").NewBatch();
  probe.columns[0].AppendInt(42);
  probe.num_rows = 1;
  auto probe_op = std::make_unique<OneBatchOp>(probe, IntSchema("x"));
  auto probe_key = *BindExpr(Col("x"), probe_op->schema());
  HashJoinOperator join(std::move(probe_op), shared,
                        std::vector<ExprPtr>{probe_key}, JoinType::kInner);
  auto result = CollectToResultTable(&join);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 1);  // matches the gated build's lone row
}

// --- probe-side batch shapes: selection vectors and run-encoded keys ---

TEST(ParallelJoinTest, SelectionVectorUnderJoinProbesOnlyLiveRows) {
  auto sales = MakeSalesTable(512);
  auto dim = MakeProductDim();

  auto run_join = [&](bool encoded_filter) {
    auto scan = std::make_unique<TableScanOperator>(
        sales, std::vector<int>{0, 1, 2});  // region, product, units
    auto predicate = *BindExpr(Gt(Col("units"), Lit(int64_t{50})),
                               scan->schema());
    auto filter =
        std::make_unique<FilterOperator>(std::move(scan), predicate);
    static ExecStats stats;
    if (encoded_filter) {
      // A per-row conjunct: the filter passes batches through with a
      // selection vector instead of materializing survivors.
      EncodedConjunct conjunct;
      conjunct.expr = predicate;
      conjunct.kind = EncodedConjunct::Kind::kPerRow;
      filter->EnableEncodedFilter({conjunct}, &stats);
    }
    auto build_scan =
        std::make_unique<TableScanOperator>(dim, std::vector<int>{0, 1});
    auto build_key = *BindExpr(Col("name"), build_scan->schema());
    auto shared = std::make_shared<SharedBuildState>(
        std::move(build_scan), std::vector<ExprPtr>{build_key});
    auto probe_key = *BindExpr(Col("product"), filter->schema());
    HashJoinOperator join(std::move(filter), shared,
                          std::vector<ExprPtr>{probe_key}, JoinType::kInner);
    return CollectToResultTable(&join);
  };

  auto materialized = run_join(false);
  auto selected = run_join(true);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  ASSERT_TRUE(selected.ok()) << selected.status();
  // The filter keeps roughly half the rows; if the join ignored the
  // selection vector it would emit every physical row.
  EXPECT_LT(materialized->num_rows(), 512);
  EXPECT_GT(materialized->num_rows(), 0);
  EXPECT_TRUE(TablesEquivalent(*materialized, *selected));
}

TEST(ParallelJoinTest, RunEncodedProbeKeysAreDecodedBeforeEval) {
  // A run-encoded probe column under a *computed* key expression: the bulk
  // expression path indexes flat payloads, so the join must flatten the
  // referenced columns first.
  Batch encoded = IntSchema("k").NewBatch();
  auto& col = encoded.columns[0];
  col.runs = {{2, 0, 5}, {4, 5, 4}};  // value, start, count
  col.run_encoded = true;
  encoded.num_rows = 9;

  Batch flat = IntSchema("k").NewBatch();
  for (int64_t r = 0; r < 9; ++r) flat.columns[0].AppendInt(r < 5 ? 2 : 4);
  flat.num_rows = 9;

  Batch build = IntSchema("b").NewBatch();
  build.columns[0].AppendInt(2);
  build.columns[0].AppendInt(4);
  build.num_rows = 2;

  auto run_join = [&](const Batch& probe_batch) {
    auto build_op = std::make_unique<OneBatchOp>(build, IntSchema("b"));
    auto build_key = *BindExpr(Col("b"), build_op->schema());
    auto shared = std::make_shared<SharedBuildState>(
        std::move(build_op), std::vector<ExprPtr>{build_key});
    auto probe_op =
        std::make_unique<OneBatchOp>(probe_batch, IntSchema("k"));
    auto probe_key = *BindExpr(Add(Col("k"), Lit(int64_t{0})),
                               probe_op->schema());
    HashJoinOperator join(std::move(probe_op), shared,
                          std::vector<ExprPtr>{probe_key}, JoinType::kInner);
    return CollectToResultTable(&join);
  };

  auto from_flat = run_join(flat);
  auto from_encoded = run_join(encoded);
  ASSERT_TRUE(from_flat.ok()) << from_flat.status();
  ASSERT_TRUE(from_encoded.ok()) << from_encoded.status();
  EXPECT_EQ(from_flat->num_rows(), 9);
  EXPECT_TRUE(TablesEquivalent(*from_flat, *from_encoded));
}

// --- the partitioned build itself: correctness + build-once ---

TEST(ParallelJoinTest, PartitionedBuildMatchesSerialProbeResults) {
  auto sales = MakeSalesTable(4096);
  auto dim = MakeProductDim();

  auto run_join = [&](JoinBuildOptions options, ExecStats* stats) {
    options.stats = stats;
    auto build_scan =
        std::make_unique<TableScanOperator>(dim, std::vector<int>{0, 1, 2});
    auto build_key = *BindExpr(Col("name"), build_scan->schema());
    auto shared = std::make_shared<SharedBuildState>(
        std::move(build_scan), std::vector<ExprPtr>{build_key}, options);
    auto probe_scan = std::make_unique<TableScanOperator>(
        sales, std::vector<int>{1, 2});
    auto probe_key = *BindExpr(Col("product"), probe_scan->schema());
    HashJoinOperator join(std::move(probe_scan), shared,
                          std::vector<ExprPtr>{probe_key}, JoinType::kInner);
    return CollectToResultTable(&join);
  };

  JoinBuildOptions serial;  // defaults: build_dop = 1
  JoinBuildOptions parallel;
  parallel.build_dop = 4;
  parallel.min_parallel_rows = 1;  // force the partitioned path at 8 rows
  ExecStats stats;

  auto rs = run_join(serial, nullptr);
  auto rp = run_join(parallel, &stats);
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_TRUE(rp.ok()) << rp.status();
  EXPECT_EQ(rs->num_rows(), 4096);
  EXPECT_TRUE(TablesEquivalent(*rs, *rp));
  EXPECT_TRUE(stats.used_parallel_build);
  EXPECT_GE(stats.join_build_morsels, 1);
  EXPECT_GT(stats.StageCriticalPathSeconds(ExecStats::kStageBuild), 0.0);
}

TEST(ParallelJoinTest, ConcurrentOpensBuildExactlyOnce) {
  // All fractions race EnsureBuilt on one shared state with a parallel
  // build configured; the build must happen once and every probe must see
  // the complete sealed table.
  auto sales = MakeSalesTable(4096);
  auto dim = MakeProductDim();
  JoinBuildOptions options;
  options.build_dop = 4;
  options.min_parallel_rows = 1;
  auto build_scan =
      std::make_unique<TableScanOperator>(dim, std::vector<int>{0, 1});
  auto build_key = *BindExpr(Col("name"), build_scan->schema());
  auto shared = std::make_shared<SharedBuildState>(
      std::move(build_scan), std::vector<ExprPtr>{build_key}, options);

  constexpr int kFractions = 4;
  std::vector<int64_t> rows(kFractions, 0);
  std::vector<Status> status(kFractions, OkStatus());
  const int64_t per = 4096 / kFractions;
  TaskGroup group(&Scheduler::Global(), TaskClass::kInteractive);
  for (int f = 0; f < kFractions; ++f) {
    group.Spawn([&, f] {
      auto probe_scan = std::make_unique<TableScanOperator>(
          sales, std::vector<int>{1, 2}, f * per, (f + 1) * per);
      auto probe_key = *BindExpr(Col("product"), probe_scan->schema());
      HashJoinOperator join(std::move(probe_scan), shared,
                            std::vector<ExprPtr>{probe_key},
                            JoinType::kInner);
      auto result = CollectToResultTable(&join);
      if (!result.ok()) {
        status[f] = result.status();
        return;
      }
      rows[f] = result->num_rows();
    });
  }
  group.Wait();
  int64_t total = 0;
  for (int f = 0; f < kFractions; ++f) {
    ASSERT_TRUE(status[f].ok()) << status[f];
    total += rows[f];
  }
  EXPECT_EQ(total, 4096);  // every sale matched exactly once
}

// --- engine-level: parallel build / parallel merge vs the serial plan ---

TEST(ParallelJoinTest, EngineParallelBuildMatchesSerialResults) {
  auto db = MakeTestDatabase(20000);
  TdeEngine engine(db);
  const std::vector<std::string> queries = {
      "(aggregate ((category category)) ((n count*) (total sum units)) "
      "(join inner ((product name)) (scan sales) (scan products)))",
      "(aggregate ((category category) (region region)) ((mean avg price)) "
      "(join inner ((product name)) (scan sales) (scan products)))",
  };
  for (const std::string& q : queries) {
    QueryOptions parallel;
    parallel.parallel.max_dop = 4;
    parallel.parallel.min_rows_per_fraction = 1024;
    parallel.parallel.parallel_build_min_rows = 1;  // 8-row dim: force it
    auto rs = engine.Execute(q, QueryOptions::Serial());
    auto rp = engine.Execute(q, parallel);
    ASSERT_TRUE(rs.ok()) << rs.status() << " for " << q;
    ASSERT_TRUE(rp.ok()) << rp.status() << " for " << q;
    EXPECT_TRUE(TablesEquivalent(rs->table, rp->table))
        << "query " << q << "\nserial:\n"
        << rs->table.ToCsv() << "\nparallel:\n"
        << rp->table.ToCsv() << "\nplan:\n"
        << rp->plan_text;
    EXPECT_TRUE(rp->stats->used_parallel_build) << rp->plan_text;
    EXPECT_GE(rp->stats->join_build_morsels, 1);
    EXPECT_FALSE(rs->stats->used_parallel_build);
  }
}

TEST(ParallelJoinTest, EngineParallelMergeMatchesSerialResults) {
  auto db = MakeTestDatabase(40000);
  TdeEngine engine(db);
  const std::vector<std::string> queries = {
      "(aggregate ((product product)) ((n count*) (total sum units) (mean "
      "avg price) (mn min units) (mx max units)) (scan sales))",
      "(aggregate ((region region) (product product)) ((total sum units) "
      "(mean avg price)) (scan sales))",
  };
  for (const std::string& q : queries) {
    QueryOptions parallel;
    parallel.parallel.max_dop = 4;
    parallel.parallel.min_rows_per_fraction = 1024;
    parallel.parallel.enable_range_partition = false;  // force local/global
    parallel.parallel.parallel_merge_min_rows = 1;
    auto rs = engine.Execute(q, QueryOptions::Serial());
    auto rp = engine.Execute(q, parallel);
    ASSERT_TRUE(rs.ok()) << rs.status() << " for " << q;
    ASSERT_TRUE(rp.ok()) << rp.status() << " for " << q;
    EXPECT_TRUE(TablesEquivalent(rs->table, rp->table))
        << "query " << q << "\nserial:\n"
        << rs->table.ToCsv() << "\nparallel:\n"
        << rp->table.ToCsv() << "\nplan:\n"
        << rp->plan_text;
    EXPECT_TRUE(rp->stats->used_local_global_agg) << rp->plan_text;
    EXPECT_TRUE(rp->stats->used_parallel_merge) << rp->plan_text;
    EXPECT_GE(rp->stats->merge_partitions, 4);
    EXPECT_FALSE(rs->stats->used_parallel_merge);
  }
}

TEST(ParallelJoinTest, AblationKnobsKeepBlockingOperatorsSerial) {
  auto db = MakeTestDatabase(40000);
  TdeEngine engine(db);
  const std::string q =
      "(aggregate ((category category)) ((total sum units)) (join inner "
      "((product name)) (scan sales) (scan products)))";
  QueryOptions options;
  options.parallel.max_dop = 4;
  options.parallel.min_rows_per_fraction = 1024;
  options.parallel.enable_range_partition = false;
  options.parallel.parallel_build_min_rows = 1;
  options.parallel.parallel_merge_min_rows = 1;
  options.parallel.enable_parallel_build = false;
  options.parallel.enable_parallel_merge = false;
  auto r = engine.Execute(q, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->stats->used_parallel_build) << r->plan_text;
  EXPECT_FALSE(r->stats->used_parallel_merge) << r->plan_text;
  auto rs = engine.Execute(q, QueryOptions::Serial());
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(TablesEquivalent(rs->table, r->table));
}

}  // namespace
}  // namespace vizq::tde
