// Query compiler tests: plan generation, SQL dialect rendering, join
// culling, domain-based predicate simplification and large-IN
// externalization (§3.1).

#include "src/query/compiler.h"

#include <gtest/gtest.h>

#include "src/federation/data_source.h"
#include "tests/test_util.h"

namespace vizq::query {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  CompilerTest() : db_(vizq::testing::MakeTestDatabase(1024)) {
    view_.name = "sales_star";
    view_.fact_table = "sales";
    view_.joins.push_back(ViewJoin{"products", "product", "name", true});
  }

  QueryCompiler MakeCompiler(Capabilities caps = Capabilities::Tde(),
                             SqlDialect dialect = SqlDialect::Ansi()) {
    return QueryCompiler(view_, caps, dialect, db_.get());
  }

  std::shared_ptr<tde::Database> db_;
  ViewDefinition view_;
};

TEST_F(CompilerTest, ResolvesColumnsAcrossStar) {
  QueryCompiler compiler = MakeCompiler();
  EXPECT_TRUE(compiler.view_columns().count("region"));    // fact
  EXPECT_TRUE(compiler.view_columns().count("category"));  // dim
}

TEST_F(CompilerTest, CullsUnreferencedJoins) {
  QueryCompiler compiler = MakeCompiler();
  AbstractQuery q = QueryBuilder("src", "sales_star")
                        .Dim("region")
                        .Agg(AggFunc::kSum, "units", "total")
                        .Build();
  auto cq = compiler.Compile(q);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_EQ(cq->culled_joins, 1);
  EXPECT_EQ(cq->sql.find("INNER JOIN"), std::string::npos) << cq->sql;

  AbstractQuery with_dim_col = QueryBuilder("src", "sales_star")
                                   .Dim("category")
                                   .Agg(AggFunc::kSum, "units", "total")
                                   .Build();
  auto cq2 = compiler.Compile(with_dim_col);
  ASSERT_TRUE(cq2.ok()) << cq2.status();
  EXPECT_EQ(cq2->culled_joins, 0);
  EXPECT_NE(cq2->sql.find("INNER JOIN"), std::string::npos) << cq2->sql;
}

TEST_F(CompilerTest, CompiledPlanExecutesOnTde) {
  QueryCompiler compiler = MakeCompiler();
  AbstractQuery q = QueryBuilder("src", "sales_star")
                        .Dim("category")
                        .Agg(AggFunc::kSum, "units", "total")
                        .FilterIn("region", {Value("East")})
                        .Build();
  auto cq = compiler.Compile(q);
  ASSERT_TRUE(cq.ok()) << cq.status();
  tde::TdeEngine engine(db_);
  auto result = engine.Execute(cq->plan, tde::QueryOptions::Serial());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->table.num_columns(), 2);
  EXPECT_GT(result->table.num_rows(), 0);
}

TEST_F(CompilerTest, DomainSimplificationDropsCoveringFilters) {
  QueryCompiler compiler = MakeCompiler();
  ColumnDomains domains;
  domains["region"] = {Value("East"), Value("North"), Value("South"),
                       Value("West")};
  AbstractQuery q =
      QueryBuilder("src", "sales_star")
          .Dim("region")
          .Agg(AggFunc::kSum, "units", "total")
          .FilterIn("region", {Value("East"), Value("North"), Value("South"),
                               Value("West")})
          .Build();
  auto cq = compiler.Compile(q, CompilerOptions(), &domains);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_EQ(cq->dropped_domain_filters, 1);
  EXPECT_EQ(cq->sql.find("WHERE"), std::string::npos) << cq->sql;

  // Partial selection is kept.
  AbstractQuery partial = QueryBuilder("src", "sales_star")
                              .Dim("region")
                              .Agg(AggFunc::kSum, "units", "total")
                              .FilterIn("region", {Value("East")})
                              .Build();
  auto cq2 = compiler.Compile(partial, CompilerOptions(), &domains);
  ASSERT_TRUE(cq2.ok());
  EXPECT_EQ(cq2->dropped_domain_filters, 0);
  EXPECT_NE(cq2->sql.find("WHERE"), std::string::npos);
}

TEST_F(CompilerTest, ExternalizesLargeInLists) {
  QueryCompiler compiler = MakeCompiler();
  std::vector<Value> many;
  for (int i = 0; i < 500; ++i) many.push_back(Value(int64_t{i}));
  AbstractQuery q = QueryBuilder("src", "sales_star")
                        .Dim("region")
                        .Agg(AggFunc::kSum, "units", "total")
                        .FilterIn("units", std::move(many))
                        .Build();
  CompilerOptions options;
  options.externalize_threshold = 64;
  auto cq = compiler.Compile(q, options, nullptr);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_TRUE(cq->used_externalization);
  ASSERT_EQ(cq->temp_tables.size(), 1u);
  EXPECT_EQ(cq->temp_tables[0].source_column, "units");
  EXPECT_NE(cq->sql.find(cq->temp_tables[0].name), std::string::npos)
      << cq->sql;

  // Execute on a connection (temp tables created on the session).
  auto source = std::make_shared<federation::TdeDataSource>("tde", db_);
  auto conn = source->Connect();
  ASSERT_TRUE(conn.ok());
  federation::ExecutionInfo info;
  auto result = (*conn)->Execute(*cq, &info);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->num_rows(), 0);

  // Same query again on the same session reuses the temp table.
  auto again = (*conn)->Execute(*cq, &info);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(info.reused_temp_table);
}

TEST_F(CompilerTest, NoTempTablesMeansInlineOrReject) {
  Capabilities caps = Capabilities::LegacyFileDriver();  // max_in_list = 64
  QueryCompiler compiler = MakeCompiler(caps);
  std::vector<Value> many;
  for (int i = 0; i < 500; ++i) many.push_back(Value(int64_t{i}));
  AbstractQuery q = QueryBuilder("src", "sales_star")
                        .Dim("region")
                        .Agg(AggFunc::kSum, "units", "total")
                        .FilterIn("units", std::move(many))
                        .Build();
  auto cq = compiler.Compile(q);
  EXPECT_FALSE(cq.ok());
  EXPECT_EQ(cq.status().code(), StatusCode::kUnimplemented);
}

TEST_F(CompilerTest, LocalTopNWhenBackendLacksIt) {
  Capabilities caps = Capabilities::LegacyFileDriver();
  QueryCompiler compiler = MakeCompiler(caps);
  AbstractQuery q = QueryBuilder("src", "sales_star")
                        .Dim("product")
                        .Agg(AggFunc::kSum, "units", "total")
                        .OrderBy("total", false)
                        .Limit(3)
                        .Build();
  auto cq = compiler.Compile(q);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_TRUE(cq->requires_local_topn);
  EXPECT_EQ(cq->sql.find("LIMIT"), std::string::npos) << cq->sql;
  EXPECT_EQ(cq->sql.find("ORDER BY"), std::string::npos) << cq->sql;
}

struct DialectCase {
  SqlDialect dialect;
  std::string expect_fragment;
};

class DialectRenderingTest : public ::testing::TestWithParam<int> {};

TEST_P(DialectRenderingTest, LimitStyleMatchesDialect) {
  auto db = vizq::testing::MakeTestDatabase(256);
  ViewDefinition view;
  view.name = "sales";
  view.fact_table = "sales";

  const std::vector<DialectCase> cases = {
      {SqlDialect::Ansi(), " LIMIT 5"},
      {SqlDialect::MssqlLike(), "SELECT TOP 5 "},
      {SqlDialect::MysqlLike(), " LIMIT 5"},
      {SqlDialect::BigWarehouse(), " FETCH FIRST 5 ROWS ONLY"},
  };
  const DialectCase& c = cases[GetParam()];
  QueryCompiler compiler(view, Capabilities::SingleThreadedSql(), c.dialect,
                         db.get());
  AbstractQuery q = QueryBuilder("src", "sales")
                        .Dim("region")
                        .Agg(AggFunc::kSum, "units", "total")
                        .OrderBy("total", false)
                        .Limit(5)
                        .Build();
  auto cq = compiler.Compile(q);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_NE(cq->sql.find(c.expect_fragment), std::string::npos) << cq->sql;
}

INSTANTIATE_TEST_SUITE_P(AllDialects, DialectRenderingTest,
                         ::testing::Range(0, 4));

TEST(SqlDialectTest, LiteralEscaping) {
  SqlDialect d = SqlDialect::Ansi();
  EXPECT_EQ(d.RenderLiteral(Value("O'Brien")), "'O''Brien'");
  EXPECT_EQ(d.RenderLiteral(Value(true)), "TRUE");
  SqlDialect mssql = SqlDialect::MssqlLike();
  EXPECT_EQ(mssql.RenderLiteral(Value(true)), "1");
  EXPECT_EQ(mssql.QuoteIdentifier("units"), "[units]");
  // Date literals render as dates.
  EXPECT_EQ(d.RenderLiteral(Value(int64_t{0}), /*as_date=*/true),
            "DATE '1970-01-01'");
}

TEST(SqlDialectTest, IdentifierQuoteEscaping) {
  SqlDialect d = SqlDialect::Ansi();
  EXPECT_EQ(d.QuoteIdentifier("we\"ird"), "\"we\"\"ird\"");
}

}  // namespace
}  // namespace vizq::query
