// Storage-layer tests: column encodings (plain/dictionary/RLE/delta),
// collation, stats, tables with sort metadata, the database namespace and
// the single-file pack/unpack format.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tde/storage/column.h"
#include "src/tde/storage/database.h"
#include "src/tde/storage/file_format.h"
#include "src/tde/storage/table.h"

namespace vizq::tde {
namespace {

std::shared_ptr<Column> BuildIntColumn(const std::vector<int64_t>& values,
                                       EncodingChoice choice) {
  ColumnBuilder builder(DataType::Int64());
  for (int64_t v : values) builder.AppendInt(v);
  auto col = builder.Finish(choice);
  EXPECT_TRUE(col.ok()) << col.status();
  return *col;
}

TEST(ColumnEncodingTest, PlainRoundTrip) {
  std::vector<int64_t> values = {5, -3, 12, 0, 99};
  auto col = BuildIntColumn(values, EncodingChoice::kForcePlain);
  ASSERT_EQ(col->encoding(), Encoding::kPlain);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(col->GetValue(i).int_value(), values[i]);
  }
}

TEST(ColumnEncodingTest, RleRoundTripAndRuns) {
  std::vector<int64_t> values;
  for (int run = 0; run < 10; ++run) {
    for (int i = 0; i < 100; ++i) values.push_back(run);
  }
  auto col = BuildIntColumn(values, EncodingChoice::kAuto);
  EXPECT_EQ(col->encoding(), Encoding::kRle);
  EXPECT_EQ(col->rle_runs().size(), 10u);
  EXPECT_EQ(col->rle_runs()[3].value, 3);
  EXPECT_EQ(col->rle_runs()[3].start, 300);
  EXPECT_EQ(col->rle_runs()[3].count, 100);
  // Bulk decode across run boundaries.
  std::vector<int64_t> out;
  col->DecodeInts(250, 200, &out, nullptr);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[49], 2);
  EXPECT_EQ(out[50], 3);
  EXPECT_EQ(out[149], 3);
  EXPECT_EQ(out[150], 4);
}

TEST(ColumnEncodingTest, DeltaRoundTrip) {
  std::vector<int64_t> values;
  int64_t v = 1000;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    values.push_back(v);
    v += rng.Range(0, 10);
  }
  auto col = BuildIntColumn(values, EncodingChoice::kForceDelta);
  ASSERT_EQ(col->encoding(), Encoding::kDelta);
  std::vector<int64_t> out;
  col->DecodeInts(0, 500, &out, nullptr);
  EXPECT_EQ(out, values);
  // Random-access too.
  EXPECT_EQ(col->GetValue(250).int_value(), values[250]);
}

TEST(ColumnEncodingTest, DeltaRequiresSortedInput) {
  ColumnBuilder builder(DataType::Int64());
  builder.AppendInt(5);
  builder.AppendInt(3);
  EXPECT_FALSE(builder.Finish(EncodingChoice::kForceDelta).ok());
}

TEST(ColumnEncodingTest, DictionaryStrings) {
  ColumnBuilder builder(DataType::String());
  for (int i = 0; i < 100; ++i) {
    builder.AppendString(i % 2 == 0 ? "even" : "odd");
  }
  auto col = *builder.Finish();
  EXPECT_TRUE(col->is_dictionary_string());
  ASSERT_NE(col->dictionary(), nullptr);
  EXPECT_EQ(col->dictionary()->size(), 2);
  EXPECT_EQ(col->GetValue(0).string_value(), "even");
  EXPECT_EQ(col->GetValue(1).string_value(), "odd");
}

TEST(ColumnEncodingTest, HighCardinalityStringsStayPlain) {
  ColumnBuilder builder(DataType::String());
  for (int i = 0; i < 100; ++i) {
    builder.AppendString("unique_" + std::to_string(i));
  }
  auto col = *builder.Finish();
  EXPECT_EQ(col->encoding(), Encoding::kPlain);
  EXPECT_FALSE(col->is_dictionary_string());
  EXPECT_EQ(col->GetValue(42).string_value(), "unique_42");
}

TEST(ColumnEncodingTest, CaseInsensitiveDictionarySharesTokens) {
  ColumnBuilder builder(DataType::String(Collation::kCaseInsensitive));
  for (int i = 0; i < 64; ++i) {
    builder.AppendString(i % 2 == 0 ? "ABC" : "abc");
  }
  auto col = *builder.Finish(EncodingChoice::kForceDictionary);
  ASSERT_TRUE(col->is_dictionary_string());
  // Under nocase collation "ABC" and "abc" intern to the same token.
  EXPECT_EQ(col->dictionary()->size(), 1);
}

TEST(ColumnEncodingTest, NullsSurviveEveryEncoding) {
  for (EncodingChoice choice :
       {EncodingChoice::kForcePlain, EncodingChoice::kForceRle}) {
    ColumnBuilder builder(DataType::Int64());
    builder.AppendInt(7);
    builder.AppendNull();
    builder.AppendInt(7);
    builder.AppendNull();
    auto col = *builder.Finish(choice);
    EXPECT_FALSE(col->IsNull(0));
    EXPECT_TRUE(col->IsNull(1));
    EXPECT_TRUE(col->GetValue(1).is_null());
    EXPECT_EQ(col->GetValue(2).int_value(), 7);
    EXPECT_EQ(col->stats().null_count, 2);
  }
}

TEST(ColumnEncodingTest, StatsMinMaxDistinct) {
  auto col = BuildIntColumn({4, 9, 1, 9, 4, 1, 7}, EncodingChoice::kForcePlain);
  EXPECT_TRUE(col->stats().has_min_max);
  EXPECT_EQ(col->stats().min.int_value(), 1);
  EXPECT_EQ(col->stats().max.int_value(), 9);
  EXPECT_EQ(col->stats().distinct_estimate, 4);
}

// Property sweep: every encoding choice round-trips random data exactly.
class EncodingRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(EncodingRoundTripTest, RandomDataRoundTrips) {
  Rng rng(GetParam());
  int64_t n = 1 + rng.Below(2000);
  int64_t cardinality = 1 + rng.Below(20);
  bool sorted = rng.Chance(0.5);
  std::vector<int64_t> values;
  for (int64_t i = 0; i < n; ++i) {
    values.push_back(rng.Range(0, cardinality));
  }
  if (sorted) std::sort(values.begin(), values.end());

  for (EncodingChoice choice : {EncodingChoice::kAuto,
                                EncodingChoice::kForcePlain,
                                EncodingChoice::kForceRle}) {
    auto col = BuildIntColumn(values, choice);
    ASSERT_EQ(col->size(), n);
    // Random access and bulk decode agree with the source.
    std::vector<int64_t> out;
    col->DecodeInts(0, n, &out, nullptr);
    ASSERT_EQ(out, values) << "choice=" << static_cast<int>(choice);
    for (int probe = 0; probe < 16; ++probe) {
      int64_t idx = rng.Below(n);
      EXPECT_EQ(col->GetValue(idx).int_value(), values[idx]);
    }
    // Partial decodes at random offsets.
    int64_t start = rng.Below(n);
    int64_t count = 1 + rng.Below(n - start);
    col->DecodeInts(start, count, &out, nullptr);
    for (int64_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], values[start + i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTripTest,
                         ::testing::Range(1, 25));

TEST(TableTest, SortValidationRejectsLies) {
  TableBuilder builder("t", {{"a", DataType::Int64()}});
  (void)builder.AddRow({Value(int64_t{2})});
  (void)builder.AddRow({Value(int64_t{1})});
  builder.DeclareSorted({0});
  EXPECT_FALSE(builder.Finish().ok());
}

TEST(TableTest, SubsetMatchesSortPrefix) {
  TableBuilder builder("t", {{"a", DataType::Int64()},
                             {"b", DataType::Int64()},
                             {"c", DataType::Int64()}});
  for (int i = 0; i < 8; ++i) {
    (void)builder.AddRow({Value(int64_t{i / 4}), Value(int64_t{i / 2}),
                          Value(int64_t{i})});
  }
  builder.DeclareSorted({0, 1});
  auto table = *builder.Finish();
  int len = 0;
  EXPECT_TRUE(table->SubsetMatchesSortPrefix({0}, &len));
  EXPECT_EQ(len, 1);
  EXPECT_TRUE(table->SubsetMatchesSortPrefix({1, 0}, &len));
  EXPECT_EQ(len, 2);  // permutation of a subset matches the full prefix
  EXPECT_FALSE(table->SubsetMatchesSortPrefix({1}, &len));  // not a prefix
  EXPECT_FALSE(table->SubsetMatchesSortPrefix({2}, &len));
}

TEST(DatabaseTest, NamespaceRules) {
  Database db("d");
  EXPECT_FALSE(db.CreateSchema("SYS").ok());
  EXPECT_TRUE(db.CreateSchema("other").ok());
  EXPECT_FALSE(db.CreateSchema("other").ok());

  TableBuilder builder("t", {{"a", DataType::Int64()}});
  (void)builder.AddRow({Value(int64_t{1})});
  auto table = *builder.Finish();
  EXPECT_TRUE(db.AddTable(table).ok());
  EXPECT_FALSE(db.AddTable(table).ok());  // duplicate
  EXPECT_TRUE(db.AddTable("other", table).ok());
  EXPECT_FALSE(db.AddTable("SYS", table).ok());

  EXPECT_TRUE(db.GetTable("t").ok());
  EXPECT_TRUE(db.GetTable("other.t").ok());
  EXPECT_FALSE(db.GetTable("nope.t").ok());
  EXPECT_FALSE(db.GetTable("other.nope").ok());

  EXPECT_TRUE(db.DropTable("other", "t").ok());
  EXPECT_FALSE(db.DropTable("other", "t").ok());
}

TEST(FileFormatTest, FullDatabaseRoundTrip) {
  Database db("roundtrip");
  {
    TableBuilder builder("mixed", {{"s", DataType::String()},
                                   {"i", DataType::Int64()},
                                   {"f", DataType::Float64()},
                                   {"b", DataType::Bool()},
                                   {"d", DataType::Date()}});
    Rng rng(3);
    for (int i = 0; i < 300; ++i) {
      if (rng.Chance(0.1)) {
        (void)builder.AddRow({Value::Null(), Value::Null(), Value::Null(),
                              Value::Null(), Value::Null()});
      } else {
        (void)builder.AddRow(
            {Value(std::string(1, static_cast<char>('a' + rng.Below(5)))),
             Value(static_cast<int64_t>(i / 10)), Value(rng.NextDouble()),
             Value(rng.Chance(0.5)), Value(static_cast<int64_t>(16000 + i))});
      }
    }
    (void)db.AddTable(*builder.Finish());
  }

  std::string bytes = DatabaseSerializer::Pack(db);
  auto restored = DatabaseSerializer::Unpack(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  auto table = (*restored)->GetTable("mixed");
  ASSERT_TRUE(table.ok());
  auto original = db.GetTable("mixed");
  ASSERT_EQ((*table)->num_rows(), (*original)->num_rows());
  for (int64_t r = 0; r < (*table)->num_rows(); ++r) {
    for (int c = 0; c < (*table)->num_columns(); ++c) {
      EXPECT_TRUE((*table)->column(c)->GetValue(r).Equals(
          (*original)->column(c)->GetValue(r)))
          << "row " << r << " col " << c;
    }
  }
}

TEST(FileFormatTest, CorruptImagesFailCleanly) {
  Database db("x");
  TableBuilder builder("t", {{"a", DataType::Int64()}});
  (void)builder.AddRow({Value(int64_t{1})});
  (void)db.AddTable(*builder.Finish());
  std::string bytes = DatabaseSerializer::Pack(db);

  EXPECT_FALSE(DatabaseSerializer::Unpack("garbage").ok());
  EXPECT_FALSE(
      DatabaseSerializer::Unpack(bytes.substr(0, bytes.size() / 2)).ok());
  std::string trailing = bytes + "x";
  EXPECT_FALSE(DatabaseSerializer::Unpack(trailing).ok());
}

TEST(CollationTest, CompareEqualsHashAgree) {
  const char* pairs[][2] = {{"abc", "ABC"}, {"Zebra", "zebRA"}, {"a", "b"},
                            {"", ""},       {"Aa", "aA"}};
  for (const auto& p : pairs) {
    bool eq_nocase = CollatedEquals(p[0], p[1], Collation::kCaseInsensitive);
    EXPECT_EQ(eq_nocase,
              CollatedCompare(p[0], p[1], Collation::kCaseInsensitive) == 0);
    if (eq_nocase) {
      EXPECT_EQ(CollatedHash(p[0], Collation::kCaseInsensitive),
                CollatedHash(p[1], Collation::kCaseInsensitive));
      EXPECT_EQ(CollationKey(p[0], Collation::kCaseInsensitive),
                CollationKey(p[1], Collation::kCaseInsensitive));
    }
  }
  EXPECT_NE(CollatedCompare("abc", "ABC", Collation::kBinary), 0);
  EXPECT_LT(CollatedCompare("abc", "abcd", Collation::kCaseInsensitive), 0);
}

}  // namespace
}  // namespace vizq::tde
