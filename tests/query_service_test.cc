// Batch pipeline tests: opportunity graph, fusion, concurrent execution,
// the full QueryService flow, and the dashboard renderer with its
// iterative selection-elimination behaviour (§3.3–3.4).

#include "src/dashboard/query_service.h"

#include <gtest/gtest.h>

#include "src/dashboard/renderer.h"
#include "src/federation/simulated_source.h"
#include "tests/test_util.h"

namespace vizq::dashboard {
namespace {

using federation::TdeDataSource;
using query::AbstractQuery;
using query::QueryBuilder;

AbstractQuery Q(std::vector<std::string> dims,
                std::vector<std::pair<AggFunc, std::string>> aggs,
                std::vector<std::pair<std::string, std::vector<Value>>>
                    filters = {}) {
  QueryBuilder b("tde", "sales");
  for (auto& d : dims) b.Dim(d);
  for (auto& [f, c] : aggs) b.Agg(f, c);
  for (auto& [c, vs] : filters) b.FilterIn(c, vs);
  return b.Build();
}

TEST(OpportunityGraphTest, PartitionsSourcesAndLocals) {
  // q0 covers q1 (rollup) and q2 (filter on dim); q3 is unrelated.
  std::vector<AbstractQuery> batch = {
      Q({"region", "product"}, {{AggFunc::kSum, "units"}}),
      Q({"region"}, {{AggFunc::kSum, "units"}}),
      Q({"region", "product"}, {{AggFunc::kSum, "units"}},
        {{"region", {Value("East")}}}),
      Q({"product"}, {{AggFunc::kMax, "price"}}),
  };
  OpportunityGraph g = BuildOpportunityGraph(batch);
  EXPECT_TRUE(g.remote[0]);
  EXPECT_FALSE(g.remote[1]);
  EXPECT_FALSE(g.remote[2]);
  EXPECT_TRUE(g.remote[3]);
  EXPECT_EQ(g.predecessor[1], 0);
  EXPECT_EQ(g.predecessor[2], 0);
}

TEST(OpportunityGraphTest, EquivalentQueriesKeepOneSource) {
  std::vector<AbstractQuery> batch = {
      Q({"region"}, {{AggFunc::kSum, "units"}}),
      Q({"region"}, {{AggFunc::kSum, "units"}}),
  };
  OpportunityGraph g = BuildOpportunityGraph(batch);
  EXPECT_TRUE(g.remote[0]);
  EXPECT_FALSE(g.remote[1]);
  EXPECT_EQ(g.predecessor[1], 0);
}

TEST(FusionTest, MergesProjectionsOverSameRelation) {
  std::vector<AbstractQuery> batch = {
      Q({"region"}, {{AggFunc::kSum, "units"}}),
      Q({"region"}, {{AggFunc::kMax, "price"}}),
      Q({"region"}, {{AggFunc::kSum, "units"}, {AggFunc::kCountStar, ""}}),
      Q({"product"}, {{AggFunc::kSum, "units"}}),  // different relation
  };
  auto groups = FuseQueries(batch);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members.size(), 3u);
  // Union of measures: sum(units), max(price), count*.
  EXPECT_EQ(groups[0].fused.measures.size(), 3u);
  EXPECT_EQ(groups[1].members.size(), 1u);
}

TEST(FusionTest, DifferentFiltersDoNotFuse) {
  std::vector<AbstractQuery> batch = {
      Q({"region"}, {{AggFunc::kSum, "units"}}, {{"region", {Value("East")}}}),
      Q({"region"}, {{AggFunc::kSum, "units"}}, {{"region", {Value("West")}}}),
  };
  auto groups = FuseQueries(batch);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(FusionTest, MemberWithTopNFusesAndGetsLocalTopN) {
  std::vector<AbstractQuery> batch = {
      Q({"product"}, {{AggFunc::kSum, "units"}}),
      QueryBuilder("tde", "sales")
          .Dim("product")
          .Agg(AggFunc::kSum, "units", "total")
          .OrderBy("total", false)
          .Limit(2)
          .Build(),
  };
  auto groups = FuseQueries(batch);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_FALSE(groups[0].fused.has_limit());
}

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest()
      : source_(std::make_shared<TdeDataSource>(
            "tde", vizq::testing::MakeTestDatabase(8192))),
        caches_(std::make_shared<CacheStack>()),
        service_(source_, caches_) {
    EXPECT_TRUE(service_.RegisterTableView("sales").ok());
    EXPECT_TRUE(service_.RegisterTableView("products").ok());
  }

  std::shared_ptr<TdeDataSource> source_;
  std::shared_ptr<CacheStack> caches_;
  QueryService service_;
};

TEST_F(QueryServiceTest, BatchResolvesLocalsFromSources) {
  std::vector<AbstractQuery> batch = {
      Q({"region", "product"}, {{AggFunc::kSum, "units"}}),
      Q({"region"}, {{AggFunc::kSum, "units"}}),
      Q({"region", "product"}, {{AggFunc::kSum, "units"}},
        {{"region", {Value("East")}}}),
  };
  BatchReport report;
  auto results = service_.ExecuteBatch(batch, BatchOptions(), &report);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_EQ(report.remote_queries, 1);
  EXPECT_EQ(report.local_resolved, 2);

  // Compare against truth (no cache, no analysis).
  BatchOptions raw;
  raw.use_intelligent_cache = false;
  raw.use_literal_cache = false;
  raw.analyze_batch = false;
  raw.fuse_queries = false;
  raw.adjust.decompose_avg = false;
  for (size_t i = 0; i < batch.size(); ++i) {
    auto truth = service_.ExecuteQuery(batch[i], raw);
    ASSERT_TRUE(truth.ok());
    EXPECT_TRUE(ResultTable::SameUnordered((*results)[i], *truth))
        << "query " << i << "\ngot:\n"
        << (*results)[i].ToCsv() << "truth:\n"
        << truth->ToCsv();
  }
}

TEST_F(QueryServiceTest, SecondBatchIsAllCacheHits) {
  std::vector<AbstractQuery> batch = {
      Q({"region"}, {{AggFunc::kSum, "units"}}),
      Q({"product"}, {{AggFunc::kAvg, "price"}}),
  };
  BatchReport first, second;
  ASSERT_TRUE(service_.ExecuteBatch(batch, BatchOptions(), &first).ok());
  ASSERT_TRUE(service_.ExecuteBatch(batch, BatchOptions(), &second).ok());
  EXPECT_EQ(second.remote_queries, 0);
  EXPECT_EQ(second.cache_hits, 2);
}

TEST_F(QueryServiceTest, AvgDecompositionStillAnswersAvg) {
  AbstractQuery q = QueryBuilder("tde", "sales")
                        .Dim("region")
                        .Agg(AggFunc::kAvg, "price", "mean")
                        .Build();
  auto result = service_.ExecuteQuery(q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_columns(), 2);
  EXPECT_EQ(result->columns()[1].name, "mean");

  // The cached (adjusted) entry also answers a rolled-up avg.
  AbstractQuery rolled =
      QueryBuilder("tde", "sales").Agg(AggFunc::kAvg, "price", "mean").Build();
  BatchReport report;
  auto r2 = service_.ExecuteBatch({rolled}, BatchOptions(), &report);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(report.remote_queries, 0);
  EXPECT_EQ(report.queries[0].served_from,
            ServedFrom::kIntelligentCacheDerived);
}

TEST_F(QueryServiceTest, FusionReducesRemoteQueries) {
  std::vector<AbstractQuery> batch = {
      Q({"region"}, {{AggFunc::kSum, "units"}}),
      Q({"region"}, {{AggFunc::kMax, "price"}}),
      Q({"region"}, {{AggFunc::kCountStar, ""}}),
  };
  BatchReport fused_report;
  ASSERT_TRUE(
      service_.ExecuteBatch(batch, BatchOptions(), &fused_report).ok());
  EXPECT_EQ(fused_report.fused_groups, 1);

  // Without fusion (fresh caches to avoid hits).
  caches_->intelligent.Clear();
  caches_->literal.Clear();
  BatchOptions no_fuse;
  no_fuse.fuse_queries = false;
  no_fuse.analyze_batch = false;
  BatchReport unfused_report;
  ASSERT_TRUE(service_.ExecuteBatch(batch, no_fuse, &unfused_report).ok());
  EXPECT_EQ(unfused_report.fused_groups, 3);
}

TEST_F(QueryServiceTest, RefreshPurgesCachesAndConnections) {
  AbstractQuery q = Q({"region"}, {{AggFunc::kSum, "units"}});
  ASSERT_TRUE(service_.ExecuteQuery(q).ok());
  EXPECT_GT(caches_->intelligent.num_entries(), 0);
  service_.RefreshDataSource();
  EXPECT_EQ(caches_->intelligent.num_entries(), 0);
  EXPECT_EQ(service_.pool().size(), 0);
  // Still works afterwards.
  EXPECT_TRUE(service_.ExecuteQuery(q).ok());
}

TEST(LocalTopNTest, BackendWithoutTopNGetsLocalPostProcessing) {
  // A legacy-file-style backend can't ORDER BY / LIMIT; the service
  // fetches untruncated and applies the top-n locally (§3.1: "some
  // operations may need to be locally applied in the post-processing
  // stage").
  auto db = vizq::testing::MakeTestDatabase(4096);
  federation::PerformanceModel model;
  model.connect_ms = 0;
  model.network_rtt_ms = 0;
  model.dispatch_ms = 0;
  auto source = std::make_shared<federation::SimulatedDataSource>(
      "legacy", db, model, query::Capabilities::LegacyFileDriver(),
      query::SqlDialect::Ansi());
  QueryService service(source, nullptr);
  ASSERT_TRUE(service.RegisterTableView("sales").ok());

  query::AbstractQuery q = QueryBuilder("legacy", "sales")
                               .Dim("product")
                               .Agg(AggFunc::kSum, "units", "total")
                               .OrderBy("total", /*ascending=*/false)
                               .Limit(3)
                               .Build();
  BatchOptions raw;
  raw.use_intelligent_cache = false;
  raw.use_literal_cache = false;
  raw.adjust.decompose_avg = false;
  auto result = service.ExecuteQuery(q, raw);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 3);
  EXPECT_GE(result->at(0, 1).int_value(), result->at(1, 1).int_value());
  EXPECT_GE(result->at(1, 1).int_value(), result->at(2, 1).int_value());
}

// --- dashboard renderer ---

class RendererTest : public ::testing::Test {
 protected:
  RendererTest()
      : source_(std::make_shared<TdeDataSource>(
            "tde", vizq::testing::MakeTestDatabase(8192))),
        caches_(std::make_shared<CacheStack>()),
        service_(source_, caches_),
        dashboard_("sales_dash") {
    EXPECT_TRUE(service_.RegisterTableView("sales").ok());

    Zone by_region;
    by_region.name = "ByRegion";
    by_region.base = Q({"region"}, {{AggFunc::kSum, "units"}});
    EXPECT_TRUE(dashboard_.AddZone(by_region).ok());

    Zone by_product;
    by_product.name = "ByProduct";
    by_product.base = Q({"product"}, {{AggFunc::kSum, "units"}});
    EXPECT_TRUE(dashboard_.AddZone(by_product).ok());

    Zone filter_zone;
    filter_zone.name = "RegionFilter";
    filter_zone.kind = ZoneKind::kQuickFilter;
    filter_zone.filter_column = "region";
    filter_zone.base = QueryBuilder("tde", "sales").Dim("region").Build();
    EXPECT_TRUE(dashboard_.AddZone(filter_zone).ok());

    dashboard_.AddQuickFilter(QuickFilterBinding{"region", {}});
    dashboard_.AddAction(
        FilterAction{"ByRegion", "region", {"ByProduct"}});
  }

  std::shared_ptr<TdeDataSource> source_;
  std::shared_ptr<CacheStack> caches_;
  QueryService service_;
  Dashboard dashboard_;
};

TEST_F(RendererTest, InitialLoadRendersAllZones) {
  InteractionState state;
  DashboardRenderer renderer(&service_);
  auto report = renderer.Render(dashboard_, &state);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->iterations, 1);
  EXPECT_EQ(report->zone_results.size(), 3u);
  EXPECT_EQ(report->zone_results.at("ByRegion").num_rows(), 4);
  EXPECT_EQ(report->zone_results.at("ByProduct").num_rows(), 8);
  EXPECT_EQ(report->zone_results.at("RegionFilter").num_rows(), 4);
}

TEST_F(RendererTest, ActionSelectionFiltersTarget) {
  InteractionState state;
  DashboardRenderer renderer(&service_);
  ASSERT_TRUE(renderer.Render(dashboard_, &state).ok());

  state.Select("ByRegion", "region", {Value("East")});
  auto report = renderer.Refresh(dashboard_, &state, {"ByProduct"});
  ASSERT_TRUE(report.ok()) << report.status();
  // ByProduct now filtered to East; still 8 products but smaller sums.
  EXPECT_EQ(report->zone_results.at("ByProduct").num_rows(), 8);
}

TEST_F(RendererTest, QuickFilterChangeIsServedFromCacheViaRollup) {
  BatchOptions options;
  options.adjust.add_filter_dimensions = true;  // Fig. 1 reuse scenario
  InteractionState state;
  // Fig. 1 initial state: all filter values selected, so "data for other
  // charts got cached with all the filtering values selected" and the
  // filtering column included.
  state.SetQuickFilter("region", {Value("East"), Value("North"),
                                  Value("South"), Value("West")});
  DashboardRenderer renderer(&service_);
  ASSERT_TRUE(renderer.Render(dashboard_, &state, options).ok());

  // Deselect values in the quick filter: the targets' new queries are
  // answerable from cache by post-filtering (§3.2's Fig. 1 discussion:
  // "the intelligent cache will be able to filter out the necessary rows
  // ... as long as the filtering columns are included").
  state.SetQuickFilter("region", {Value("East"), Value("North")});
  auto targets = dashboard_.QuickFilterTargets("region");
  EXPECT_EQ(targets.size(), 2u);
  auto report = renderer.Refresh(dashboard_, &state, targets, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->batches.empty());
  EXPECT_EQ(report->batches[0].remote_queries, 0)
      << report->batches[0].Summary();
}

TEST_F(RendererTest, EliminatedSelectionTriggersSecondIteration) {
  // Select a region, then quick-filter it away: the selection's value
  // disappears from ByRegion's result, must be eliminated, and ByProduct
  // re-queried without the stale filter (the §3.3 HNL-OGG scenario).
  InteractionState state;
  DashboardRenderer renderer(&service_);
  ASSERT_TRUE(renderer.Render(dashboard_, &state).ok());

  state.Select("ByRegion", "region", {Value("East")});
  ASSERT_TRUE(renderer.Refresh(dashboard_, &state, {"ByProduct"}).ok());

  state.SetQuickFilter("region", {Value("West"), Value("South")});
  auto report = renderer.Refresh(
      dashboard_, &state,
      {"ByRegion", "ByProduct"});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->iterations, 2);
  ASSERT_EQ(report->eliminated_selections.size(), 1u);
  EXPECT_EQ(report->eliminated_selections[0], "ByRegion.region: East");
  EXPECT_TRUE(state.selections["ByRegion"].find("region") ==
              state.selections["ByRegion"].end());
}

}  // namespace
}  // namespace vizq::dashboard
