// Execution-layer tests: expression evaluation (null semantics, collation,
// token fast paths), individual Volcano operators, the Exchange operator
// (threaded and serial-measurement modes), and the shared join build.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/common/str_util.h"
#include "src/tde/exec/aggregate.h"
#include "src/tde/exec/exchange.h"
#include "src/tde/exec/expression.h"
#include "src/tde/exec/join.h"
#include "src/tde/exec/rle_index.h"
#include "src/tde/exec/scan.h"
#include "src/tde/exec/sort.h"
#include "tests/test_util.h"

namespace vizq::tde {
namespace {

// One-column int batch.
Batch IntBatch(const std::vector<std::optional<int64_t>>& values) {
  Batch b;
  ColumnVector cv(DataType::Int64());
  for (const auto& v : values) {
    if (v.has_value()) {
      cv.AppendInt(*v);
    } else {
      cv.AppendNull();
    }
  }
  b.columns.push_back(std::move(cv));
  b.num_rows = static_cast<int64_t>(values.size());
  return b;
}

BatchSchema IntSchema(const std::string& name = "x") {
  BatchSchema s;
  s.names = {name};
  s.prototypes.emplace_back(DataType::Int64());
  return s;
}

TEST(ExpressionTest, ArithmeticAndTypePromotion) {
  Batch b = IntBatch({{10}, {20}});
  auto e = *BindExpr(Add(Col("x"), Lit(int64_t{5})), IntSchema());
  auto v = *EvalExpr(*e, b);
  EXPECT_EQ(v.ints[0], 15);

  // Division always yields float.
  auto d = *BindExpr(Div(Col("x"), Lit(int64_t{4})), IntSchema());
  auto dv = *EvalExpr(*d, b);
  EXPECT_EQ(dv.type.kind, TypeKind::kFloat64);
  EXPECT_DOUBLE_EQ(dv.doubles[0], 2.5);

  // Division by zero is NULL.
  auto z = *BindExpr(Div(Col("x"), Lit(int64_t{0})), IntSchema());
  auto zv = *EvalExpr(*z, b);
  EXPECT_TRUE(zv.IsNull(0));
}

TEST(ExpressionTest, NullPropagationAndKleeneLogic) {
  Batch b = IntBatch({{1}, std::nullopt, {3}});
  // x + 1 is null where x is null.
  auto add = *BindExpr(Add(Col("x"), Lit(int64_t{1})), IntSchema());
  auto av = *EvalExpr(*add, b);
  EXPECT_FALSE(av.IsNull(0));
  EXPECT_TRUE(av.IsNull(1));

  // (x > 0) OR TRUE is true even for null x; AND FALSE is false.
  auto or_true =
      *BindExpr(Or(Gt(Col("x"), Lit(int64_t{0})), Lit(true)), IntSchema());
  auto ov = *EvalExpr(*or_true, b);
  EXPECT_EQ(ov.ints[1], 1);
  EXPECT_FALSE(ov.IsNull(1));

  auto and_false =
      *BindExpr(And(Gt(Col("x"), Lit(int64_t{0})), Lit(false)), IntSchema());
  auto fv = *EvalExpr(*and_false, b);
  EXPECT_EQ(fv.ints[1], 0);
  EXPECT_FALSE(fv.IsNull(1));

  // (x > 0) AND TRUE stays null for null x.
  auto and_true =
      *BindExpr(And(Gt(Col("x"), Lit(int64_t{0})), Lit(true)), IntSchema());
  auto tv = *EvalExpr(*and_true, b);
  EXPECT_TRUE(tv.IsNull(1));

  // Comparisons with null are null, and EvalPredicate drops them.
  auto gt = *BindExpr(Gt(Col("x"), Lit(int64_t{0})), IntSchema());
  auto selected = *EvalPredicate(*gt, b);
  EXPECT_EQ(selected.size(), 2u);

  // IS NULL is never null.
  auto isnull = *BindExpr(IsNull(Col("x")), IntSchema());
  auto nv = *EvalExpr(*isnull, b);
  EXPECT_EQ(nv.ints[0], 0);
  EXPECT_EQ(nv.ints[1], 1);
}

TEST(ExpressionTest, CollatedStringComparison) {
  BatchSchema schema;
  schema.names = {"s"};
  schema.prototypes.emplace_back(
      DataType::String(Collation::kCaseInsensitive));
  Batch b;
  ColumnVector cv(DataType::String(Collation::kCaseInsensitive));
  cv.AppendString("Apple");
  cv.AppendString("BANANA");
  b.columns.push_back(std::move(cv));
  b.num_rows = 2;

  auto eq = *BindExpr(Eq(Col("s"), Lit("apple")), schema);
  auto v = *EvalExpr(*eq, b);
  EXPECT_EQ(v.ints[0], 1);  // case-insensitive match
  EXPECT_EQ(v.ints[1], 0);
}

TEST(ExpressionTest, ScalarFunctions) {
  BatchSchema schema;
  schema.names = {"s", "d"};
  schema.prototypes.emplace_back(DataType::String());
  schema.prototypes.emplace_back(DataType::Date());
  Batch b;
  ColumnVector s(DataType::String());
  s.AppendString("Hello");
  ColumnVector d(DataType::Date());
  d.AppendInt(*vizq::ParseDateDays("2014-06-01"));
  b.columns = {std::move(s), std::move(d)};
  b.num_rows = 1;

  auto upper = *BindExpr(Func(ScalarFunc::kUpper, {Col("s")}), schema);
  EXPECT_EQ((*EvalExpr(*upper, b)).GetValue(0).string_value(), "HELLO");
  auto len = *BindExpr(Func(ScalarFunc::kStrLen, {Col("s")}), schema);
  EXPECT_EQ((*EvalExpr(*len, b)).ints[0], 5);
  auto sub = *BindExpr(
      Func(ScalarFunc::kSubstr, {Col("s"), Lit(int64_t{2}), Lit(int64_t{3})}),
      schema);
  EXPECT_EQ((*EvalExpr(*sub, b)).GetValue(0).string_value(), "ell");
  auto year = *BindExpr(Func(ScalarFunc::kYear, {Col("d")}), schema);
  EXPECT_EQ((*EvalExpr(*year, b)).ints[0], 2014);
  auto month = *BindExpr(Func(ScalarFunc::kMonth, {Col("d")}), schema);
  EXPECT_EQ((*EvalExpr(*month, b)).ints[0], 6);
  // 2014-06-01 was a Sunday -> weekday 6 (Monday = 0).
  auto wd = *BindExpr(Func(ScalarFunc::kWeekday, {Col("d")}), schema);
  EXPECT_EQ((*EvalExpr(*wd, b)).ints[0], 6);
  auto iff = *BindExpr(
      Func(ScalarFunc::kIf,
           {Gt(Func(ScalarFunc::kStrLen, {Col("s")}), Lit(int64_t{3})),
            Lit(int64_t{1}), Lit(int64_t{0})}),
      schema);
  EXPECT_EQ((*EvalExpr(*iff, b)).ints[0], 1);
}

TEST(ExpressionTest, StructuralEqualityAndHash) {
  auto a = Gt(Col("x"), Lit(int64_t{5}));
  auto b = Gt(Col("x"), Lit(int64_t{5}));
  auto c = Gt(Col("x"), Lit(int64_t{6}));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_EQ(a->Hash(), b->Hash());
}

TEST(ExchangeTest, MergesAllInputsThreaded) {
  auto table = vizq::testing::MakeSalesTable(4000);
  std::vector<int64_t> offsets = SplitRows(table->num_rows(), 4);
  std::vector<OperatorPtr> inputs;
  for (int f = 0; f < 4; ++f) {
    inputs.push_back(std::make_unique<TableScanOperator>(
        table, std::vector<int>{2}, offsets[f], offsets[f + 1]));
  }
  ExecStats stats;
  ExchangeOperator exchange(std::move(inputs), &stats);
  int64_t rows = 0;
  ASSERT_TRUE(exchange.Open().ok());
  Batch batch;
  while (true) {
    auto more = exchange.Next(&batch);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    rows += batch.num_rows;
  }
  ASSERT_TRUE(exchange.Close().ok());
  EXPECT_EQ(rows, 4000);
  EXPECT_EQ(stats.fractions.size(), 4u);
}

TEST(ExchangeTest, SerialMeasurementModeMatches) {
  auto table = vizq::testing::MakeSalesTable(4000);
  for (bool serial : {false, true}) {
    std::vector<int64_t> offsets = SplitRows(table->num_rows(), 3);
    std::vector<OperatorPtr> inputs;
    for (int f = 0; f < 3; ++f) {
      inputs.push_back(std::make_unique<TableScanOperator>(
          table, std::vector<int>{2}, offsets[f], offsets[f + 1]));
    }
    ExecStats stats;
    ExchangeOperator exchange(std::move(inputs), &stats, serial);
    auto result = CollectToResultTable(&exchange);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->num_rows(), 4000);
    EXPECT_EQ(stats.fractions.size(), 3u);
  }
}

// Emits `total` one-row batches, so producers outpace any slow consumer
// and block on the Exchange's bounded queue.
class ManyBatchesOp : public Operator {
 public:
  explicit ManyBatchesOp(int64_t total)
      : total_(total), schema_(IntSchema()) {}
  const BatchSchema& schema() const override { return schema_; }
  Status Open() override {
    emitted_ = 0;
    return OkStatus();
  }
  StatusOr<bool> Next(Batch* out) override {
    if (emitted_ >= total_) return false;
    *out = IntBatch({{emitted_}});
    ++emitted_;
    return true;
  }
  Status Close() override { return OkStatus(); }

 private:
  int64_t total_;
  int64_t emitted_ = 0;
  BatchSchema schema_;
};

// Regression (satellite 1): cancelling mid-stream while producers are
// blocked on the full queue must surface a typed error promptly — the old
// thread-based producers ignored cancellation while blocked, and a slow
// consumer could hang the query (or worse, see a truncated-OK result).
TEST(ExchangeTest, CancelMidStreamWithSlowConsumer) {
  // Fresh context: copies share cancel state, so cancelling a copy of
  // ExecContext::Background() would poison the whole process.
  ExecContext ctx;
  std::vector<OperatorPtr> inputs;
  for (int f = 0; f < 3; ++f) {
    inputs.push_back(std::make_unique<ManyBatchesOp>(100000));
  }
  ExecStats stats;
  ExchangeOperator exchange(std::move(inputs), &stats, /*serial=*/false, ctx);
  ASSERT_TRUE(exchange.Open().ok());

  // Read a couple of batches so producers are running, then let them fill
  // the bounded queue and block.
  Batch batch;
  for (int i = 0; i < 2; ++i) {
    auto more = exchange.Next(&batch);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  auto cancelled_at = std::chrono::steady_clock::now();
  ctx.Cancel();

  // The consumer must see the cancellation as a typed error, not an
  // endless stream or a clean end-of-stream.
  Status seen = OkStatus();
  while (true) {
    auto more = exchange.Next(&batch);
    if (!more.ok()) {
      seen = more.status();
      break;
    }
    ASSERT_TRUE(*more) << "cancelled exchange ended with truncated OK";
  }
  EXPECT_EQ(seen.code(), StatusCode::kAborted) << seen;
  double waited_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - cancelled_at)
                         .count();
  EXPECT_LT(waited_ms, 2000.0) << "cancellation took too long to propagate";
  // Close must join the (cancelled) producers promptly; whether its
  // status carries the producer-recorded error or the consumer-side stop
  // won the race is timing-dependent, so only completion is asserted.
  (void)exchange.Close();
}

// Regression: when every producer wrapper is shed (here: scheduler shut
// down), TaskGroup runs them inline on the consumer thread during Open().
// They must run unbounded there — a bounded producer would fill max_queue_
// and then spin forever, since the consumer cannot drain its own queue
// while it is inside Open().
TEST(ExchangeTest, ShedProducersRunUnboundedOnConsumerThread) {
  Scheduler sched(SchedulerOptions{.num_threads = 1});
  sched.Shutdown();
  std::vector<OperatorPtr> inputs;
  for (int f = 0; f < 2; ++f) {
    // Well past max_queue_ (8) one-row batches per input.
    inputs.push_back(std::make_unique<ManyBatchesOp>(64));
  }
  ExecStats stats;
  ExchangeOperator exchange(std::move(inputs), &stats, /*serial=*/false,
                            ExecContext::Background(), &sched);
  ASSERT_TRUE(exchange.Open().ok());
  int64_t rows = 0;
  Batch batch;
  while (true) {
    auto more = exchange.Next(&batch);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    rows += batch.num_rows;
  }
  ASSERT_TRUE(exchange.Close().ok());
  EXPECT_EQ(rows, 128);
}

// Regression: a morsel-mode Exchange must be re-openable. The shared
// MorselQueue cursor is rewound by Open(), so a second run re-scans the
// table instead of silently returning zero rows from a drained queue.
TEST(ExchangeTest, MorselModeReopenRescans) {
  auto table = vizq::testing::MakeSalesTable(4000);
  auto queue = std::make_shared<MorselQueue>(table->num_rows(), 512);
  std::vector<OperatorPtr> inputs;
  for (int f = 0; f < 3; ++f) {
    auto scan =
        std::make_unique<TableScanOperator>(table, std::vector<int>{2});
    scan->SetMorselQueue(queue);
    inputs.push_back(std::move(scan));
  }
  ExecStats stats;
  ExchangeOperator exchange(std::move(inputs), &stats);
  exchange.AddMorselQueue(queue);
  for (int run = 0; run < 2; ++run) {
    ASSERT_TRUE(exchange.Open().ok());
    int64_t rows = 0;
    Batch batch;
    while (true) {
      auto more = exchange.Next(&batch);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      rows += batch.num_rows;
    }
    ASSERT_TRUE(exchange.Close().ok());
    EXPECT_EQ(rows, 4000) << "run " << run;
  }
}

TEST(SharedBuildTest, BuildHappensOnceAcrossProbes) {
  auto dim = vizq::testing::MakeProductDim();
  auto build_scan = std::make_unique<TableScanOperator>(
      dim, std::vector<int>{0, 1});
  BatchSchema dim_schema = build_scan->schema();
  auto key = *BindExpr(Col("name"), dim_schema);
  auto shared = std::make_shared<SharedBuildState>(
      std::move(build_scan), std::vector<ExprPtr>{key});

  auto fact = vizq::testing::MakeSalesTable(512);
  std::vector<int64_t> offsets = SplitRows(fact->num_rows(), 2);
  int64_t total = 0;
  for (int f = 0; f < 2; ++f) {
    auto probe = std::make_unique<TableScanOperator>(
        fact, std::vector<int>{1, 2}, offsets[f], offsets[f + 1]);
    auto probe_key = *BindExpr(Col("product"), probe->schema());
    HashJoinOperator join(std::move(probe), shared,
                          std::vector<ExprPtr>{probe_key}, JoinType::kInner);
    auto result = CollectToResultTable(&join);
    ASSERT_TRUE(result.ok()) << result.status();
    total += result->num_rows();
    // Joined output has left + right columns.
    EXPECT_EQ(result->num_columns(), 4);
  }
  EXPECT_EQ(total, 512);  // every sale matches exactly one product
}

TEST(JoinTest, LeftOuterKeepsUnmatched) {
  // Probe values 1..4 against build {2, 4}.
  Batch probe_data = IntBatch({{1}, {2}, {3}, {4}});
  // A scan stub over the probe batch.
  class OneBatchOp : public Operator {
   public:
    OneBatchOp(Batch b, BatchSchema s) : batch_(std::move(b)), schema_(s) {}
    const BatchSchema& schema() const override { return schema_; }
    Status Open() override {
      done_ = false;
      return OkStatus();
    }
    StatusOr<bool> Next(Batch* out) override {
      if (done_) return false;
      *out = batch_;
      done_ = true;
      return true;
    }
    Status Close() override { return OkStatus(); }

   private:
    Batch batch_;
    BatchSchema schema_;
    bool done_ = false;
  };

  auto build_op = std::make_unique<OneBatchOp>(IntBatch({{2}, {4}}),
                                               IntSchema("k"));
  auto build_key = *BindExpr(Col("k"), build_op->schema());
  auto shared = std::make_shared<SharedBuildState>(
      std::move(build_op), std::vector<ExprPtr>{build_key});
  auto probe_op =
      std::make_unique<OneBatchOp>(std::move(probe_data), IntSchema("x"));
  auto probe_key = *BindExpr(Col("x"), probe_op->schema());
  HashJoinOperator join(std::move(probe_op), shared,
                        std::vector<ExprPtr>{probe_key},
                        JoinType::kLeftOuter);
  auto result = *CollectToResultTable(&join);
  ASSERT_EQ(result.num_rows(), 4);
  // Rows 1 and 3 have null right side.
  ResultTable sorted = result;
  sorted.SortRowsByAllColumns();
  EXPECT_TRUE(sorted.at(0, 1).is_null());   // x=1 unmatched
  EXPECT_FALSE(sorted.at(1, 1).is_null());  // x=2 matched
}

TEST(SortTest, TopNAgreesWithFullSort) {
  auto table = vizq::testing::MakeSalesTable(2000);
  auto make_scan = [&] {
    return std::make_unique<TableScanOperator>(table, std::vector<int>{2, 3});
  };
  auto key_expr = *BindExpr(Col("units"), make_scan()->schema());
  std::vector<SortKey> keys = {SortKey{key_expr, false}};

  SortOperator sort(make_scan(), keys);
  auto sorted = *CollectToResultTable(&sort);
  TopNOperator topn(make_scan(), keys, 25);
  auto top = *CollectToResultTable(&topn);
  ASSERT_EQ(top.num_rows(), 25);
  for (int64_t i = 0; i < 25; ++i) {
    EXPECT_EQ(top.at(i, 0).int_value(), sorted.at(i, 0).int_value());
  }
}

TEST(RleIndexExecTest, MatchingRunsRespectPredicate) {
  ColumnBuilder key_builder(DataType::Int64());
  ColumnBuilder val_builder(DataType::Int64());
  for (int64_t i = 0; i < 900; ++i) {
    key_builder.AppendInt(i / 300);  // 3 runs of 300
    val_builder.AppendInt(i);
  }
  TableBuilder table_builder("t", {{"k", DataType::Int64()},
                                   {"v", DataType::Int64()}});
  table_builder.SetEncodingChoice(0, EncodingChoice::kForceRle);
  for (int64_t i = 0; i < 900; ++i) {
    (void)table_builder.AddRow({Value(i / 300), Value(i)});
  }
  auto table = *table_builder.Finish();

  BatchSchema run_schema;
  run_schema.names = {"k"};
  run_schema.prototypes.emplace_back(DataType::Int64());
  auto pred = *BindExpr(Eq(Col("k"), Lit(int64_t{1})), run_schema);
  auto ranges = ComputeMatchingRuns(*table, 0, pred);
  ASSERT_TRUE(ranges.ok()) << ranges.status();
  ASSERT_EQ(ranges->size(), 1u);
  EXPECT_EQ((*ranges)[0].start, 300);
  EXPECT_EQ((*ranges)[0].count, 300);

  RleIndexScanOperator scan(table, {0, 1}, *ranges);
  auto result = *CollectToResultTable(&scan);
  EXPECT_EQ(result.num_rows(), 300);
  EXPECT_EQ(result.at(0, 1).int_value(), 300);
}

TEST(RleIndexExecTest, SplitRangesBalancesLoad) {
  std::vector<RowRange> ranges = {{0, 1000}, {2000, 10},   {3000, 990},
                                  {5000, 500}, {7000, 500}};
  auto groups = SplitRanges(ranges, 3);
  ASSERT_EQ(groups.size(), 3u);
  int64_t total = 0;
  int64_t biggest = 0;
  for (const auto& g : groups) {
    int64_t load = 0;
    for (const RowRange& r : g) load += r.count;
    total += load;
    biggest = std::max(biggest, load);
  }
  EXPECT_EQ(total, 3000);
  EXPECT_LE(biggest, 1100);  // greedy balance keeps the max near 1000
}

TEST(AggregateTest, PartialFinalComposition) {
  auto table = vizq::testing::MakeSalesTable(1024);
  auto scan =
      std::make_unique<TableScanOperator>(table, std::vector<int>{0, 2});
  BatchSchema scan_schema = scan->schema();
  std::vector<GroupExpr> groups = {
      GroupExpr{"region", *BindExpr(Col("region"), scan_schema)}};
  std::vector<AggSpec> specs = {
      AggSpec{AggFunc::kAvg, *BindExpr(Col("units"), scan_schema), "mean"},
      AggSpec{AggFunc::kCountStar, nullptr, "n"}};

  auto partial = std::make_unique<HashAggregateOperator>(
      std::move(scan), groups, specs, AggPhase::kPartial);
  // Final over the partial: group expr is column 0 of the partial output,
  // args are positional.
  BatchSchema partial_schema = partial->schema();
  ASSERT_EQ(partial_schema.num_columns(), 4);  // region, mean$sum, mean$cnt, n
  std::vector<GroupExpr> final_groups = {
      GroupExpr{"region", ColIdx(0, partial_schema.prototypes[0].type)}};
  std::vector<AggSpec> final_specs = {
      AggSpec{AggFunc::kAvg, ColIdx(1, DataType::Float64()), "mean"},
      AggSpec{AggFunc::kCountStar, ColIdx(3, DataType::Int64()), "n"}};
  HashAggregateOperator final_agg(std::move(partial), final_groups,
                                  final_specs, AggPhase::kFinal);
  auto composed = *CollectToResultTable(&final_agg);

  // Ground truth: complete aggregation.
  auto scan2 =
      std::make_unique<TableScanOperator>(table, std::vector<int>{0, 2});
  HashAggregateOperator complete(std::move(scan2), groups, specs,
                                 AggPhase::kComplete);
  auto truth = *CollectToResultTable(&complete);
  EXPECT_TRUE(ResultTable::SameUnordered(composed, truth))
      << composed.ToCsv() << "\nvs\n" << truth.ToCsv();
}

TEST(AggregateTest, StreamingMatchesHashOnSortedInput) {
  auto table = vizq::testing::MakeSalesTable(2048);  // sorted by region
  auto make_scan = [&] {
    return std::make_unique<TableScanOperator>(table,
                                               std::vector<int>{0, 2});
  };
  BatchSchema schema = make_scan()->schema();
  std::vector<GroupExpr> groups = {
      GroupExpr{"region", *BindExpr(Col("region"), schema)}};
  std::vector<AggSpec> specs = {
      AggSpec{AggFunc::kSum, *BindExpr(Col("units"), schema), "total"},
      AggSpec{AggFunc::kMin, *BindExpr(Col("units"), schema), "lo"}};

  StreamingAggregateOperator streaming(make_scan(), groups, specs);
  auto s = *CollectToResultTable(&streaming);
  HashAggregateOperator hash(make_scan(), groups, specs, AggPhase::kComplete);
  auto h = *CollectToResultTable(&hash);
  EXPECT_TRUE(ResultTable::SameUnordered(s, h));
}

}  // namespace
}  // namespace vizq::tde
