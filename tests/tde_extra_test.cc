// Additional TDE end-to-end coverage: date literals, collated string
// columns, NULL handling in grouping/aggregation/ordering, dictionary
// token fast paths, empty tables, and larger plan compositions.

#include <gtest/gtest.h>

#include "src/common/str_util.h"
#include "src/tde/engine.h"
#include "tests/test_util.h"

namespace vizq::tde {
namespace {

std::shared_ptr<Database> MakeNullableDb() {
  auto db = std::make_shared<Database>("nullable");
  TableBuilder builder("t", {{"k", DataType::String()},
                             {"v", DataType::Int64()},
                             {"d", DataType::Date()}});
  int64_t day = *ParseDateDays("2014-06-01");
  (void)builder.AddRow({Value("a"), Value(int64_t{1}), Value(day)});
  (void)builder.AddRow({Value("a"), Value::Null(), Value(day + 1)});
  (void)builder.AddRow({Value::Null(), Value(int64_t{3}), Value(day + 40)});
  (void)builder.AddRow({Value("b"), Value(int64_t{4}), Value::Null()});
  (void)builder.AddRow({Value::Null(), Value::Null(), Value(day)});
  (void)db->AddTable(*builder.Finish());
  return db;
}

TEST(TdeNullsTest, NullsFormTheirOwnGroup) {
  TdeEngine engine(MakeNullableDb());
  auto result = engine.Query(
      "(order ((k asc)) (aggregate ((k k)) ((n count*) (s sum v)) (scan t)))");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 3);
  // NULL sorts first.
  EXPECT_TRUE(result->at(0, 0).is_null());
  EXPECT_EQ(result->at(0, 1).int_value(), 2);   // two null-key rows
  EXPECT_EQ(result->at(0, 2).int_value(), 3);   // sum skips the null v
  EXPECT_EQ(result->at(1, 0).string_value(), "a");
  EXPECT_EQ(result->at(1, 1).int_value(), 2);
  EXPECT_EQ(result->at(1, 2).int_value(), 1);   // null v skipped
}

TEST(TdeNullsTest, CountVsCountStarOnNulls) {
  TdeEngine engine(MakeNullableDb());
  auto result = engine.Query(
      "(aggregate () ((all count*) (vs count v) (ds count d)) (scan t))");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at(0, 0).int_value(), 5);
  EXPECT_EQ(result->at(0, 1).int_value(), 3);
  EXPECT_EQ(result->at(0, 2).int_value(), 4);
}

TEST(TdeNullsTest, FilterDropsNulls) {
  TdeEngine engine(MakeNullableDb());
  // v > 0 excludes null v rows (three-valued logic).
  auto result = engine.Query(
      "(aggregate () ((n count*)) (select (> v 0) (scan t)))");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at(0, 0).int_value(), 3);
  // isnull finds them.
  auto nulls = engine.Query(
      "(aggregate () ((n count*)) (select (isnull v) (scan t)))");
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ(nulls->at(0, 0).int_value(), 2);
}

TEST(TdeDateTest, DateLiteralsInTql) {
  TdeEngine engine(MakeNullableDb());
  auto result = engine.Query(
      "(aggregate () ((n count*))"
      " (select (and (>= d d\"2014-06-01\") (< d d\"2014-06-10\"))"
      " (scan t)))");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->at(0, 0).int_value(), 3);
  // year()/month() over the date column.
  auto parts = engine.Query(
      "(aggregate ((m (month d))) ((n count*)) (select (not (isnull d)) "
      "(scan t)))");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->num_rows(), 2);  // June and July
}

TEST(TdeCollationTest, CaseInsensitiveColumnGroupsAndFilters) {
  auto db = std::make_shared<Database>("collated");
  TableBuilder builder(
      "t", {{"name", DataType::String(Collation::kCaseInsensitive)},
            {"v", DataType::Int64()}});
  (void)builder.AddRow({Value("Apple"), Value(int64_t{1})});
  (void)builder.AddRow({Value("APPLE"), Value(int64_t{2})});
  (void)builder.AddRow({Value("apple"), Value(int64_t{4})});
  (void)builder.AddRow({Value("Banana"), Value(int64_t{8})});
  (void)db->AddTable(*builder.Finish());
  TdeEngine engine(db);

  // Grouping folds case.
  auto groups = engine.Query(
      "(aggregate ((name name)) ((s sum v)) (scan t))");
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_rows(), 2);

  // Filtering folds case too.
  auto filtered = engine.Query(
      "(aggregate () ((s sum v)) (select (= name \"aPpLe\") (scan t)))");
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->at(0, 0).int_value(), 7);

  // IN-set with mixed case.
  auto in_set = engine.Query(
      "(aggregate () ((s sum v)) (select (in name \"APPLE\" \"banana\") "
      "(scan t)))");
  ASSERT_TRUE(in_set.ok());
  EXPECT_EQ(in_set->at(0, 0).int_value(), 15);
}

TEST(TdeEmptyTest, EmptyTableBehaviours) {
  auto db = std::make_shared<Database>("empty");
  TableBuilder builder("t", {{"k", DataType::String()},
                             {"v", DataType::Int64()}});
  (void)db->AddTable(*builder.Finish());
  TdeEngine engine(db);

  auto group = engine.Query("(aggregate ((k k)) ((n count*)) (scan t))");
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->num_rows(), 0);

  auto scalar = engine.Query("(aggregate () ((n count*) (s sum v)) (scan t))");
  ASSERT_TRUE(scalar.ok());
  ASSERT_EQ(scalar->num_rows(), 1);
  EXPECT_EQ(scalar->at(0, 0).int_value(), 0);
  EXPECT_TRUE(scalar->at(0, 1).is_null());

  auto topn = engine.Query("(topn 5 ((v desc)) (scan t))");
  ASSERT_TRUE(topn.ok());
  EXPECT_EQ(topn->num_rows(), 0);

  // Parallel options on an empty table are harmless.
  QueryOptions par;
  par.parallel.min_rows_per_fraction = 1;
  auto p = engine.Execute("(aggregate ((k k)) ((n count*)) (scan t))", par);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->table.num_rows(), 0);
}

TEST(TdeCompositionTest, NestedAggregationOverAggregation) {
  auto db = vizq::testing::MakeTestDatabase(4096);
  TdeEngine engine(db);
  // Average per-product total by region: aggregate over an aggregate.
  auto result = engine.Query(
      "(order ((region asc))"
      " (aggregate ((region region)) ((avg_total avg total))"
      "  (aggregate ((region region) (product product))"
      "             ((total sum units)) (scan sales))))");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 4);
  // Cross-check one region by hand.
  auto per_product = engine.Query(
      "(aggregate ((product product)) ((total sum units))"
      " (select (= region \"East\") (scan sales)))");
  ASSERT_TRUE(per_product.ok());
  double sum = 0;
  for (int64_t r = 0; r < per_product->num_rows(); ++r) {
    sum += per_product->at(r, 1).AsDouble();
  }
  double expected = sum / static_cast<double>(per_product->num_rows());
  EXPECT_NEAR(result->at(0, 1).AsDouble(), expected, 1e-9);
}

TEST(TdeCompositionTest, TopNWithTies) {
  auto db = std::make_shared<Database>("ties");
  TableBuilder builder("t", {{"k", DataType::Int64()}});
  for (int i = 0; i < 10; ++i) {
    (void)builder.AddRow({Value(static_cast<int64_t>(i / 2))});
  }
  (void)db->AddTable(*builder.Finish());
  TdeEngine engine(db);
  auto result = engine.Query("(topn 3 ((k desc)) (scan t))");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 3);
  EXPECT_EQ(result->at(0, 0).int_value(), 4);
  EXPECT_EQ(result->at(1, 0).int_value(), 4);
  EXPECT_EQ(result->at(2, 0).int_value(), 3);
}

TEST(TdeCompositionTest, ProjectExpressionsThroughJoin) {
  auto db = vizq::testing::MakeTestDatabase(1024);
  TdeEngine engine(db);
  auto result = engine.Query(
      "(topn 5 ((rev desc))"
      " (project ((label (substr category 1 3)) (rev (* units price)))"
      "  (join inner ((product name)) (scan sales) (scan products)"
      "   referential)))");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 5);
  EXPECT_EQ(result->columns()[0].name, "label");
  EXPECT_LE(result->at(0, 0).string_value().size(), 3u);
}

}  // namespace
}  // namespace vizq::tde
