// ExecContext end-to-end: deadline/cancellation propagation through the
// query stack (scan operators, connection pool, simulated backends, the
// batch pipeline), trace span coverage, and per-request metrics.

#include "src/common/exec_context.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "src/dashboard/query_service.h"
#include "src/federation/connection_pool.h"
#include "src/federation/simulated_source.h"
#include "src/tde/exec/scan.h"
#include "src/workload/faa_generator.h"
#include "src/workload/flights_dashboards.h"
#include "tests/test_util.h"

namespace vizq {
namespace {

using query::AbstractQuery;
using query::QueryBuilder;

// --- primitives ---

TEST(ExecContextTest, DeadlineExpiryAndRemaining) {
  ExecContext ctx = ExecContext::WithDeadlineMs(60000);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_FALSE(ctx.deadline_expired());
  EXPECT_GT(ctx.remaining_ms(), 1000.0);
  EXPECT_TRUE(ctx.CheckContinue("test").ok());

  ExecContext expired = ExecContext::WithDeadlineMs(0);
  EXPECT_TRUE(expired.deadline_expired());
  Status s = expired.CheckContinue("step");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("step"), std::string::npos);
}

TEST(ExecContextTest, CancellationIsSharedAndSticky) {
  ExecContext ctx;
  ExecContext copy = ctx;  // copies share the token
  EXPECT_FALSE(ctx.cancelled());
  copy.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_EQ(ctx.CheckContinue("work").code(), StatusCode::kAborted);
}

TEST(ExecContextTest, BackgroundHasNoTraceOrMetrics) {
  const ExecContext& bg = ExecContext::Background();
  EXPECT_FALSE(bg.tracing_enabled());
  EXPECT_FALSE(bg.metrics_enabled());
  EXPECT_EQ(bg.StartSpan("x"), nullptr);
  bg.Count("nope");  // no-op, must not crash
  EXPECT_TRUE(bg.CheckContinue("bg").ok());
}

TEST(ExecContextTest, SpanTreeRendersTextAndJson) {
  ExecContext ctx;
  {
    ScopedSpan outer(ctx.StartSpan("outer"));
    ExecContext inner_ctx = ctx.WithSpan(outer.get());
    ScopedSpan inner(inner_ctx.StartSpan("inner"));
  }
  std::vector<std::string> names = ctx.trace()->SpanNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "request");
  EXPECT_EQ(names[1], "outer");
  EXPECT_EQ(names[2], "inner");

  std::string text = ctx.trace()->ToText();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("  inner"), std::string::npos);  // indented child
  std::string json = ctx.trace()->ToJson();
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
}

TEST(ExecContextTest, MetricsCountersAndHistograms) {
  ExecContext ctx;
  ctx.Count("hits");
  ctx.Count("hits", 2);
  ctx.Observe("wait_ms", 5.0);
  ctx.Observe("wait_ms", 15.0);
  EXPECT_EQ(ctx.metrics()->counter("hits"), 3);
  EXPECT_EQ(ctx.metrics()->counter("absent"), 0);
  auto h = ctx.metrics()->histogram("wait_ms");
  EXPECT_EQ(h.count, 2);
  EXPECT_DOUBLE_EQ(h.min, 5.0);
  EXPECT_DOUBLE_EQ(h.max, 15.0);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

// --- TDE operators ---

TEST(ExecContextTdeTest, ExpiredDeadlineStopsScan) {
  auto db = vizq::testing::MakeTestDatabase(8192);
  tde::TdeEngine engine(db);
  ExecContext ctx = ExecContext::WithDeadlineMs(0);
  auto result =
      engine.Execute("(aggregate ((region region)) ((total sum units)) "
                     "(scan sales))",
                     tde::QueryOptions(), ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTdeTest, CancellationStopsScanMidStream) {
  auto db = vizq::testing::MakeTestDatabase(16384);
  auto table = *db->GetTable("sales");
  ExecContext ctx;
  tde::TableScanOperator scan(table, {0, 2}, 0, -1, nullptr, ctx);
  ASSERT_TRUE(scan.Open().ok());
  tde::Batch batch;
  auto first = scan.Next(&batch);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(*first);
  ctx.Cancel();
  // The poll fires within the next few batches.
  Status err = OkStatus();
  for (int i = 0; i < 8; ++i) {
    auto next = scan.Next(&batch);
    if (!next.ok()) {
      err = next.status();
      break;
    }
    ASSERT_TRUE(*next) << "scan drained before the cancellation poll fired";
  }
  EXPECT_EQ(err.code(), StatusCode::kAborted);
  EXPECT_TRUE(scan.Close().ok());
}

TEST(ExecContextTdeTest, EngineRecordsOperatorSpansAndMetrics) {
  auto db = vizq::testing::MakeTestDatabase(4096);
  tde::TdeEngine engine(db);
  ExecContext ctx;
  auto result =
      engine.Execute("(aggregate ((region region)) ((total sum units)) "
                     "(scan sales))",
                     tde::QueryOptions(), ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  std::vector<std::string> names = ctx.trace()->SpanNames();
  auto has = [&](const std::string& prefix) {
    return std::any_of(names.begin(), names.end(), [&](const std::string& n) {
      return n.rfind(prefix, 0) == 0;
    });
  };
  EXPECT_TRUE(has("tde:compile"));
  EXPECT_TRUE(has("tde:run"));
  EXPECT_TRUE(has("op:scan(sales)"));
  // The table is sorted by the group key, so the optimizer may pick either
  // aggregate flavor.
  EXPECT_TRUE(has("op:aggregate") || has("op:streaming-aggregate"));
  EXPECT_GT(ctx.metrics()->counter("tde.rows_scanned"), 0);
}

// --- connection pool ---

TEST(ExecContextPoolTest, AcquireHonorsDeadlineAndCountsTimeouts) {
  auto db = vizq::testing::MakeTestDatabase(512);
  auto source = std::make_shared<federation::TdeDataSource>("tde", db);
  federation::ConnectionPool pool(source, /*max_size=*/1);
  auto held = pool.Acquire();
  ASSERT_TRUE(held.ok());

  ExecContext ctx = ExecContext::WithDeadlineMs(10);
  auto blocked = pool.Acquire(ctx);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(pool.stats().timeouts, 1);
  EXPECT_GE(ctx.metrics()->counter("pool.timeouts"), 1);

  held->Release();
  auto after = pool.Acquire(ExecContext::WithDeadlineMs(1000));
  EXPECT_TRUE(after.ok());
}

TEST(ExecContextPoolTest, MaxWaitBoundsAcquireWithoutDeadline) {
  auto db = vizq::testing::MakeTestDatabase(512);
  auto source = std::make_shared<federation::TdeDataSource>("tde", db);
  federation::PoolOptions options;
  options.max_size = 1;
  options.max_wait_ms = 20;
  federation::ConnectionPool pool(source, options);
  auto held = pool.Acquire();
  ASSERT_TRUE(held.ok());
  auto blocked = pool.Acquire();  // Background ctx: only max_wait applies
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.stats().timeouts, 1);
}

TEST(ExecContextPoolTest, CancellationAbortsBlockedAcquire) {
  auto db = vizq::testing::MakeTestDatabase(512);
  auto source = std::make_shared<federation::TdeDataSource>("tde", db);
  federation::ConnectionPool pool(source, /*max_size=*/1);
  auto held = pool.Acquire();
  ASSERT_TRUE(held.ok());

  ExecContext ctx;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ctx.Cancel();
  });
  auto blocked = pool.Acquire(ctx);
  canceller.join();
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kAborted);
}

// --- full pipeline over the FAA workload ---

class ExecContextPipelineTest : public ::testing::Test {
 protected:
  ExecContextPipelineTest() {
    workload::FaaOptions options;
    options.num_flights = 20000;
    db_ = *workload::GenerateFaaDatabase(options);
  }

  std::vector<AbstractQuery> FaaBatch() const {
    return {
        QueryBuilder("faa", workload::kFlightsView)
            .Dim("airline_name")
            .CountAll("flights")
            .Agg(AggFunc::kAvg, "arr_delay", "avg_delay")
            .Build(),
        QueryBuilder("faa", workload::kFlightsView)
            .Dim("origin_state")
            .CountAll("flights")
            .Build(),
        QueryBuilder("faa", workload::kFlightsView)
            .Dim("airline_name")
            .CountAll("flights")
            .Build(),
    };
  }

  std::shared_ptr<tde::Database> db_;
};

TEST_F(ExecContextPipelineTest, TinyDeadlineFailsBatchAndFreesPool) {
  auto source = federation::SimulatedDataSource::SingleThreadedSql("faa", db_);
  dashboard::QueryService service(source,
                                  std::make_shared<dashboard::CacheStack>());
  ASSERT_TRUE(service.RegisterView(workload::FlightsStarView()).ok());

  ExecContext ctx = ExecContext::WithDeadlineMs(1);
  auto results = service.ExecuteBatch(ctx, FaaBatch());
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kDeadlineExceeded);

  // Every pool slot must be back: all of them acquirable without blocking.
  EXPECT_EQ(service.pool().idle(), service.pool().size());
  auto conn = service.pool().Acquire(ExecContext::WithDeadlineMs(5000));
  EXPECT_TRUE(conn.ok()) << conn.status();
}

TEST_F(ExecContextPipelineTest, CancellationDuringConcurrentBatchFreesPool) {
  auto source = federation::SimulatedDataSource::SingleThreadedSql("faa", db_);
  dashboard::QueryService service(source, nullptr);
  ASSERT_TRUE(service.RegisterView(workload::FlightsStarView()).ok());

  dashboard::BatchOptions options;
  options.use_intelligent_cache = false;
  options.use_literal_cache = false;
  options.analyze_batch = false;  // keep every query remote & concurrent
  options.fuse_queries = false;

  ExecContext ctx;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ctx.Cancel();
  });
  auto results = service.ExecuteBatch(ctx, FaaBatch(), options);
  canceller.join();
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kAborted);
  EXPECT_EQ(service.pool().idle(), service.pool().size());
}

TEST_F(ExecContextPipelineTest, TraceCoversPipelineStagesAndOperators) {
  auto source = std::make_shared<federation::TdeDataSource>("faa", db_);
  auto caches = std::make_shared<dashboard::CacheStack>();
  dashboard::QueryService service(source, caches);
  ASSERT_TRUE(service.RegisterView(workload::FlightsStarView()).ok());

  ExecContext remote_ctx;
  auto results = service.ExecuteBatch(remote_ctx, FaaBatch());
  ASSERT_TRUE(results.ok()) << results.status();
  std::vector<std::string> names = remote_ctx.trace()->SpanNames();
  auto has = [&names](const std::string& prefix) {
    return std::any_of(names.begin(), names.end(), [&](const std::string& n) {
      return n.rfind(prefix, 0) == 0;
    });
  };
  EXPECT_TRUE(has("batch"));
  EXPECT_TRUE(has("cache-lookup"));
  EXPECT_TRUE(has("opportunity-analysis"));
  EXPECT_TRUE(has("fusion"));
  EXPECT_TRUE(has("compile"));
  EXPECT_TRUE(has("submit"));
  EXPECT_TRUE(has("op:"));  // at least one TDE operator span

  // The identical batch again: pure intelligent-cache hits — no compile,
  // no submit, no operators.
  ExecContext hit_ctx;
  auto again = service.ExecuteBatch(hit_ctx, FaaBatch());
  ASSERT_TRUE(again.ok());
  std::vector<std::string> hit_names = hit_ctx.trace()->SpanNames();
  auto hit_has = [&hit_names](const std::string& prefix) {
    return std::any_of(hit_names.begin(), hit_names.end(),
                       [&](const std::string& n) {
                         return n.rfind(prefix, 0) == 0;
                       });
  };
  EXPECT_TRUE(hit_has("cache-lookup"));
  EXPECT_FALSE(hit_has("submit"));
  EXPECT_FALSE(hit_has("op:"));
  // At least one query comes straight out of the intelligent cache; the
  // rest may be covered by batch analysis instead of individual lookups.
  EXPECT_GE(hit_ctx.metrics()->counter("cache.intelligent.exact_hit"), 1);
}

TEST_F(ExecContextPipelineTest, MetricsMatchQueryReportTallies) {
  auto source = std::make_shared<federation::TdeDataSource>("faa", db_);
  auto caches = std::make_shared<dashboard::CacheStack>();
  dashboard::QueryService service(source, caches);
  ASSERT_TRUE(service.RegisterView(workload::FlightsStarView()).ok());

  ExecContext ctx;
  dashboard::BatchReport report;
  auto results = service.ExecuteBatch(ctx, FaaBatch(), {}, &report);
  ASSERT_TRUE(results.ok()) << results.status();

  std::map<std::string, int64_t> expected;
  for (const dashboard::QueryReport& qr : report.queries) {
    ++expected[std::string("service.served.") +
               dashboard::ServedFromToString(qr.served_from)];
  }
  for (const auto& [name, count] : expected) {
    EXPECT_EQ(ctx.metrics()->counter(name), count) << name;
  }
  EXPECT_EQ(ctx.metrics()->counter("service.batches"), 1);
  EXPECT_EQ(ctx.metrics()->counter("service.queries"),
            static_cast<int64_t>(report.queries.size()));
}

}  // namespace
}  // namespace vizq
