// Property tests for the structured predicate model that powers the
// intelligent cache's subsumption proofs.

#include "src/query/predicate.h"

#include <gtest/gtest.h>

namespace vizq::query {
namespace {

Value V(const char* s) { return Value(s); }
Value V(int64_t i) { return Value(i); }

TEST(ColumnPredicateTest, SetImpliesSuperset) {
  auto small = ColumnPredicate::InSet("c", {V("a"), V("b")});
  auto big = ColumnPredicate::InSet("c", {V("a"), V("b"), V("d")});
  EXPECT_TRUE(small.Implies(big));
  EXPECT_FALSE(big.Implies(small));
  EXPECT_TRUE(small.Implies(small));
}

TEST(ColumnPredicateTest, SetOrderIsCanonical) {
  auto a = ColumnPredicate::InSet("c", {V("b"), V("a")});
  auto b = ColumnPredicate::InSet("c", {V("a"), V("b")});
  EXPECT_TRUE(a.EqualsPredicate(b));
  EXPECT_EQ(a.ToKeyString(), b.ToKeyString());
}

TEST(ColumnPredicateTest, RangeImplication) {
  auto narrow = ColumnPredicate::Range("x", Value(int64_t{10}), Value(int64_t{20}));
  auto wide = ColumnPredicate::Range("x", Value(int64_t{0}), Value(int64_t{100}));
  EXPECT_TRUE(narrow.Implies(wide));
  EXPECT_FALSE(wide.Implies(narrow));

  auto unbounded_hi = ColumnPredicate::Range("x", Value(int64_t{5}), std::nullopt);
  EXPECT_TRUE(narrow.Implies(unbounded_hi));
  EXPECT_FALSE(unbounded_hi.Implies(narrow));
}

TEST(ColumnPredicateTest, RangeInclusivityMatters) {
  auto closed = ColumnPredicate::Range("x", Value(int64_t{10}), Value(int64_t{20}),
                                       /*lower_inclusive=*/true,
                                       /*upper_inclusive=*/true);
  auto open = ColumnPredicate::Range("x", Value(int64_t{10}), Value(int64_t{20}),
                                     /*lower_inclusive=*/false,
                                     /*upper_inclusive=*/false);
  EXPECT_TRUE(open.Implies(closed));
  EXPECT_FALSE(closed.Implies(open));
}

TEST(ColumnPredicateTest, SetImpliesRange) {
  auto set = ColumnPredicate::InSet("x", {V(int64_t{5}), V(int64_t{7})});
  auto range = ColumnPredicate::Range("x", Value(int64_t{0}), Value(int64_t{10}));
  EXPECT_TRUE(set.Implies(range));
  auto out = ColumnPredicate::InSet("x", {V(int64_t{5}), V(int64_t{70})});
  EXPECT_FALSE(out.Implies(range));
  // A range never implies a finite set (no domain knowledge).
  EXPECT_FALSE(range.Implies(set));
}

TEST(PredicateSetTest, NormalizeIntersectsDuplicateColumns) {
  PredicateSet set;
  set.predicates.push_back(ColumnPredicate::InSet("c", {V("a"), V("b")}));
  set.predicates.push_back(ColumnPredicate::InSet("c", {V("b"), V("d")}));
  set.Normalize();
  ASSERT_EQ(set.predicates.size(), 1u);
  ASSERT_EQ(set.predicates[0].values.size(), 1u);
  EXPECT_EQ(set.predicates[0].values[0].string_value(), "b");
}

TEST(PredicateSetTest, NormalizeTightensRanges) {
  PredicateSet set;
  set.predicates.push_back(
      ColumnPredicate::Range("x", Value(int64_t{0}), Value(int64_t{50})));
  set.predicates.push_back(
      ColumnPredicate::Range("x", Value(int64_t{10}), Value(int64_t{100})));
  set.Normalize();
  ASSERT_EQ(set.predicates.size(), 1u);
  EXPECT_EQ(set.predicates[0].lower->int_value(), 10);
  EXPECT_EQ(set.predicates[0].upper->int_value(), 50);
}

TEST(PredicateSetTest, ImpliesRequiresAllPredicatesCovered) {
  PredicateSet strong;
  strong.predicates.push_back(ColumnPredicate::InSet("c", {V("a")}));
  strong.predicates.push_back(
      ColumnPredicate::Range("x", Value(int64_t{5}), Value(int64_t{6})));
  strong.Normalize();

  PredicateSet weak;
  weak.predicates.push_back(ColumnPredicate::InSet("c", {V("a"), V("b")}));
  weak.Normalize();

  EXPECT_TRUE(strong.Implies(weak));
  EXPECT_FALSE(weak.Implies(strong));
  PredicateSet empty;
  EXPECT_TRUE(strong.Implies(empty));   // no constraints to satisfy
  EXPECT_FALSE(empty.Implies(strong));  // unconstrained can't imply
}

TEST(PredicateSetTest, ResidualComputesUnguaranteedPredicates) {
  PredicateSet request;
  request.predicates.push_back(ColumnPredicate::InSet("c", {V("a")}));
  request.predicates.push_back(
      ColumnPredicate::Range("x", Value(int64_t{5}), Value(int64_t{6})));
  request.Normalize();

  PredicateSet stored;
  stored.predicates.push_back(ColumnPredicate::InSet("c", {V("a")}));
  stored.Normalize();

  auto residual = request.ResidualAgainst(stored);
  ASSERT_EQ(residual.size(), 1u);
  EXPECT_EQ(residual[0].column, "x");
}

// Property sweep: implication is consistent with explicit evaluation.
class ImplicationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationPropertyTest, ImpliesIsSoundOverSmallDomains) {
  // Enumerate subsets of a 5-value domain as IN-set predicates; check
  // Implies(a, b) == (eval(a) subset-of eval(b)) pointwise.
  int64_t domain[5] = {1, 2, 3, 5, 8};
  int mask_a = GetParam() & 31;
  for (int mask_b = 0; mask_b < 32; ++mask_b) {
    std::vector<Value> va, vb;
    for (int i = 0; i < 5; ++i) {
      if (mask_a & (1 << i)) va.push_back(Value(domain[i]));
      if (mask_b & (1 << i)) vb.push_back(Value(domain[i]));
    }
    auto pa = ColumnPredicate::InSet("x", va);
    auto pb = ColumnPredicate::InSet("x", vb);
    bool subset = (mask_a & mask_b) == mask_a;
    EXPECT_EQ(pa.Implies(pb), subset) << "a=" << mask_a << " b=" << mask_b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMasks, ImplicationPropertyTest,
                         ::testing::Range(0, 32));

TEST(PredicateExprTest, ToExprProducesBindableExpressions) {
  auto set = ColumnPredicate::InSet("c", {V("a"), V("b")});
  EXPECT_NE(set.ToExpr(), nullptr);
  auto range = ColumnPredicate::Range("x", Value(int64_t{1}), std::nullopt,
                                      /*lower_inclusive=*/false);
  tde::ExprPtr e = range.ToExpr();
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->binary_op, tde::BinaryOp::kGt);
}

}  // namespace
}  // namespace vizq::query
