// Robustness tests: deterministic fuzzing of the text entry points (TQL
// parser, CSV parser, cache/extract deserializers) — no crashes, clean
// Status on garbage — plus concurrency hammering of the shared caches and
// the connection pool.

#include <gtest/gtest.h>

#include <atomic>

#include "src/cache/intelligent_cache.h"
#include "src/cache/literal_cache.h"
#include "src/cache/persistence.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/extract/csv_parser.h"
#include "src/extract/type_inference.h"
#include "src/federation/connection_pool.h"
#include "src/tde/plan/tql_parser.h"
#include "src/tde/storage/file_format.h"
#include "tests/test_util.h"

namespace vizq {
namespace {

std::string RandomText(Rng& rng, int max_len, const std::string& alphabet) {
  int len = static_cast<int>(rng.Below(max_len + 1));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out += alphabet[rng.Below(alphabet.size())];
  }
  return out;
}

class FuzzSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeedTest, TqlParserNeverCrashes) {
  Rng rng(GetParam() * 131 + 7);
  const std::string alphabet = "()abcdef sel scan proj 0123456789\"<>=+-*";
  for (int i = 0; i < 200; ++i) {
    std::string input = RandomText(rng, 120, alphabet);
    auto plan = tde::ParseTql(input);  // any Status is fine; no crash
    if (plan.ok()) {
      // Whatever parsed must at least print.
      EXPECT_FALSE((*plan)->ToString().empty());
    }
  }
}

TEST_P(FuzzSeedTest, TqlNearMissesFailCleanly) {
  // Mutations of a valid query: drop/duplicate random characters.
  const std::string valid =
      "(topn 5 ((total desc)) (aggregate ((region region)) "
      "((total sum units)) (select (> units 3) (scan sales))))";
  Rng rng(GetParam());
  auto db = vizq::testing::MakeTestDatabase(256);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = valid;
    int edits = 1 + static_cast<int>(rng.Below(3));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Below(mutated.size());
      if (rng.Chance(0.5)) {
        mutated.erase(pos, 1);
      } else {
        mutated.insert(pos, 1, mutated[pos]);
      }
    }
    auto plan = tde::ParseTql(mutated);
    if (!plan.ok()) continue;
    // If it parses it might still fail to bind; both must be clean.
    tde::TdeEngine engine(db);
    auto result = engine.Execute(*plan, tde::QueryOptions::Serial());
    (void)result;
  }
}

TEST_P(FuzzSeedTest, CsvParserNeverCrashes) {
  Rng rng(GetParam() * 977 + 3);
  const std::string alphabet = "ab,\"\n\r 1.x";
  for (int i = 0; i < 300; ++i) {
    std::string input = RandomText(rng, 200, alphabet);
    auto records = extract::ParseCsv(input);
    if (records.ok() && !records->empty()) {
      extract::InferredSchema schema = extract::InferSchema(*records);
      EXPECT_EQ(schema.columns.size(), (*records)[0].size());
    }
  }
}

TEST_P(FuzzSeedTest, DeserializersRejectGarbage) {
  Rng rng(GetParam() * 31 + 1);
  for (int i = 0; i < 50; ++i) {
    std::string junk = RandomText(rng, 400, std::string("\x00\x01VZRTQCH", 8));
    (void)ResultTable::Deserialize(junk);
    (void)tde::DatabaseSerializer::Unpack(junk);
    cache::IntelligentCache ic;
    cache::LiteralCache lc;
    (void)cache::DeserializeCaches(junk, &ic, &lc);
    (void)query::AbstractQuery::Deserialize(junk);
  }
  // Bit-flips of a valid cache image must never crash.
  cache::IntelligentCache ic;
  cache::LiteralCache lc;
  ResultTable t(std::vector<ResultColumn>{{"x", DataType::Int64()}});
  t.AddRow({Value(int64_t{1})});
  lc.Put("q", t, 5.0);
  std::string image = cache::SerializeCaches(ic, lc);
  for (int i = 0; i < 100; ++i) {
    std::string corrupted = image;
    corrupted[rng.Below(corrupted.size())] ^=
        static_cast<char>(1 << rng.Below(8));
    cache::IntelligentCache ic2;
    cache::LiteralCache lc2;
    (void)cache::DeserializeCaches(corrupted, &ic2, &lc2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Range(1, 9));

TEST(ConcurrencyTest, CacheSurvivesParallelMixedUse) {
  cache::IntelligentCacheOptions options;
  options.max_bytes = 64 * 1024;  // force continuous eviction
  cache::IntelligentCache cache(options);
  ResultTable t(std::vector<ResultColumn>{{"region", DataType::String()},
                                          {"n", DataType::Int64()}});
  t.AddRow({Value("East"), Value(int64_t{5})});

  std::atomic<int64_t> hits{0};
  {
    ThreadPool pool(8);
    for (int worker = 0; worker < 8; ++worker) {
      pool.Submit([&, worker] {
        Rng rng(worker);
        for (int i = 0; i < 300; ++i) {
          query::AbstractQuery q =
              query::QueryBuilder("s", "v")
                  .Dim("region")
                  .CountAll("n")
                  .FilterIn("region",
                            {Value(std::to_string(rng.Below(40)))})
                  .Build();
          if (rng.Chance(0.5)) {
            cache.Put(q, t, 5.0);
          } else if (cache.Lookup(q).has_value()) {
            hits.fetch_add(1);
          }
          if (i % 100 == 0) cache.InvalidateDataSource("s");
        }
      });
    }
    pool.Wait();
  }
  // No crashes/deadlocks; counters consistent.
  EXPECT_GE(cache.stats().inserts, 1);
  EXPECT_EQ(cache.stats().hits(), hits.load() + 0);
}

TEST(ConcurrencyTest, PoolHammeredFromManyThreads) {
  auto source = std::make_shared<federation::TdeDataSource>(
      "tde", vizq::testing::MakeTestDatabase(512));
  federation::ConnectionPool pool(source, 3);
  std::atomic<int> completed{0};
  {
    ThreadPool workers(8);
    for (int i = 0; i < 64; ++i) {
      workers.Submit([&] {
        auto conn = pool.Acquire();
        ASSERT_TRUE(conn.ok());
        completed.fetch_add(1);
      });
    }
    workers.Wait();
  }
  EXPECT_EQ(completed.load(), 64);
  EXPECT_LE(pool.size(), 3);
  EXPECT_EQ(pool.idle(), pool.size());
}

}  // namespace
}  // namespace vizq
