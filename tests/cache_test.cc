// Tests of the intelligent cache's view-matching and post-processing, the
// literal cache, eviction, persistence, and the distributed tier.

#include <gtest/gtest.h>

#include "src/cache/distributed.h"
#include "src/cache/intelligent_cache.h"
#include "src/cache/literal_cache.h"
#include "src/cache/persistence.h"
#include "src/dashboard/query_service.h"
#include "src/federation/data_source.h"
#include "tests/test_util.h"

namespace vizq::cache {
namespace {

using dashboard::BatchOptions;
using dashboard::CacheStack;
using dashboard::QueryService;
using query::AbstractQuery;
using query::QueryBuilder;

// Ground truth executor: runs a query with no caching whatsoever.
class CacheTestEnv {
 public:
  CacheTestEnv()
      : source_(std::make_shared<federation::TdeDataSource>(
            "tde", vizq::testing::MakeTestDatabase(8192))),
        truth_service_(source_, nullptr) {
    (void)truth_service_.RegisterTableView("sales");
  }

  ResultTable Truth(const AbstractQuery& q) {
    BatchOptions opts;
    opts.use_intelligent_cache = false;
    opts.use_literal_cache = false;
    opts.fuse_queries = false;
    opts.analyze_batch = false;
    opts.adjust.decompose_avg = false;
    auto result = truth_service_.ExecuteQuery(q, opts);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : ResultTable();
  }

  std::shared_ptr<federation::DataSource> source_;
  QueryService truth_service_;
};

AbstractQuery BaseQuery() {
  return QueryBuilder("tde", "sales")
      .Dim("region")
      .Dim("product")
      .Agg(AggFunc::kSum, "units", "total")
      .Agg(AggFunc::kCount, "units", "n")
      .Agg(AggFunc::kMin, "units", "lo")
      .Agg(AggFunc::kMax, "units", "hi")
      .Build();
}

TEST(IntelligentCacheTest, ExactHit) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery q = BaseQuery();
  ResultTable truth = env.Truth(q);
  cache.Put(q, truth, 10.0);
  auto hit = cache.Lookup(q);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(ResultTable::SameUnordered(*hit, truth));
  EXPECT_EQ(cache.stats().exact_hits, 1);
}

TEST(IntelligentCacheTest, RollupMatchesDirectExecution) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery stored = BaseQuery();
  cache.Put(stored, env.Truth(stored), 10.0);

  // Coarser granularity: roll product out.
  AbstractQuery rolled = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Agg(AggFunc::kCount, "units", "n")
                             .Agg(AggFunc::kMin, "units", "lo")
                             .Agg(AggFunc::kMax, "units", "hi")
                             .Build();
  auto hit = cache.Lookup(rolled);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(ResultTable::SameUnordered(*hit, env.Truth(rolled)))
      << hit->ToCsv() << "\nvs\n" << env.Truth(rolled).ToCsv();
  EXPECT_EQ(cache.stats().derived_hits, 1);
}

TEST(IntelligentCacheTest, ResidualFilterOnDimension) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery stored = BaseQuery();
  cache.Put(stored, env.Truth(stored), 10.0);

  AbstractQuery filtered = QueryBuilder("tde", "sales")
                               .Dim("region")
                               .Dim("product")
                               .Agg(AggFunc::kSum, "units", "total")
                               .Agg(AggFunc::kCount, "units", "n")
                               .Agg(AggFunc::kMin, "units", "lo")
                               .Agg(AggFunc::kMax, "units", "hi")
                               .FilterIn("region", {Value("East"), Value("West")})
                               .Build();
  auto hit = cache.Lookup(filtered);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(ResultTable::SameUnordered(*hit, env.Truth(filtered)));
}

TEST(IntelligentCacheTest, RollupPlusFilterPlusTopN) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery stored = BaseQuery();
  cache.Put(stored, env.Truth(stored), 10.0);

  AbstractQuery request = QueryBuilder("tde", "sales")
                              .Dim("product")
                              .Agg(AggFunc::kSum, "units", "total")
                              .FilterIn("region", {Value("South")})
                              .OrderBy("total", /*ascending=*/false)
                              .Limit(3)
                              .Build();
  auto hit = cache.Lookup(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->num_rows(), 3);
  EXPECT_TRUE(ResultTable::SameUnordered(*hit, env.Truth(request)))
      << hit->ToCsv() << "\nvs\n" << env.Truth(request).ToCsv();
}

TEST(IntelligentCacheTest, AvgDerivedFromSumAndCount) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery stored = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Dim("product")
                             .Agg(AggFunc::kSum, "price", "")
                             .Agg(AggFunc::kCount, "price", "")
                             .Build();
  cache.Put(stored, env.Truth(stored), 10.0);

  AbstractQuery request = QueryBuilder("tde", "sales")
                              .Dim("region")
                              .Agg(AggFunc::kAvg, "price", "mean")
                              .Build();
  auto hit = cache.Lookup(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TABLES_EQUIVALENT(env.Truth(request), *hit);
}

TEST(IntelligentCacheTest, CountDistinctFromDimension) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery stored = BaseQuery();  // has product as a dimension
  cache.Put(stored, env.Truth(stored), 10.0);

  AbstractQuery request = QueryBuilder("tde", "sales")
                              .Dim("region")
                              .Agg(AggFunc::kCountDistinct, "product", "nd")
                              .Build();
  auto hit = cache.Lookup(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(ResultTable::SameUnordered(*hit, env.Truth(request)));
}

TEST(IntelligentCacheTest, MismatchesMiss) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery stored = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Agg(AggFunc::kSum, "units", "total")
                             .FilterIn("region", {Value("East")})
                             .Build();
  cache.Put(stored, env.Truth(stored), 10.0);

  // Weaker filter than stored: stored lacks the rows.
  AbstractQuery weaker = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Build();
  EXPECT_FALSE(cache.Lookup(weaker).has_value());

  // Finer granularity than stored.
  AbstractQuery finer = QueryBuilder("tde", "sales")
                            .Dim("region")
                            .Dim("product")
                            .Agg(AggFunc::kSum, "units", "total")
                            .FilterIn("region", {Value("East")})
                            .Build();
  EXPECT_FALSE(cache.Lookup(finer).has_value());

  // Measure not derivable (needs raw data).
  AbstractQuery needs_raw = QueryBuilder("tde", "sales")
                                .Dim("region")
                                .Agg(AggFunc::kCountDistinct, "units", "nd")
                                .FilterIn("region", {Value("East")})
                                .Build();
  EXPECT_FALSE(cache.Lookup(needs_raw).has_value());

  // Different view entirely.
  AbstractQuery other_view = QueryBuilder("tde", "products")
                                 .Dim("category")
                                 .CountAll("n")
                                 .Build();
  EXPECT_FALSE(cache.Lookup(other_view).has_value());
}

TEST(IntelligentCacheTest, StoredTopNOnlyServesExactRequests) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery stored = QueryBuilder("tde", "sales")
                             .Dim("product")
                             .Agg(AggFunc::kSum, "units", "total")
                             .OrderBy("total", false)
                             .Limit(3)
                             .Build();
  cache.Put(stored, env.Truth(stored), 10.0);

  EXPECT_TRUE(cache.Lookup(stored).has_value());

  AbstractQuery rolled = QueryBuilder("tde", "sales")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Build();
  EXPECT_FALSE(cache.Lookup(rolled).has_value());
}

TEST(IntelligentCacheTest, ResidualFilterOnNonDimensionMisses) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery stored = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Build();
  cache.Put(stored, env.Truth(stored), 10.0);

  // Filter on product, which is not in the stored granularity.
  AbstractQuery request = QueryBuilder("tde", "sales")
                              .Dim("region")
                              .Agg(AggFunc::kSum, "units", "total")
                              .FilterIn("product", {Value("apple")})
                              .Build();
  EXPECT_FALSE(cache.Lookup(request).has_value());
}

TEST(IntelligentCacheTest, AdjustForReuseDecomposesAvg) {
  AbstractQuery q = QueryBuilder("tde", "sales")
                        .Dim("region")
                        .Agg(AggFunc::kAvg, "price", "mean")
                        .Build();
  AbstractQuery adjusted = AdjustForReuse(q, AdjustOptions{});
  bool has_avg = false, has_sum = false, has_cnt = false;
  for (const query::Measure& m : adjusted.measures) {
    has_avg |= m.func == AggFunc::kAvg;
    has_sum |= m.func == AggFunc::kSum && m.column == "price";
    has_cnt |= m.func == AggFunc::kCount && m.column == "price";
  }
  EXPECT_FALSE(has_avg);
  EXPECT_TRUE(has_sum);
  EXPECT_TRUE(has_cnt);
  // And the adjusted result answers the original.
  auto plan = MatchQueries(adjusted, {}, q);
  EXPECT_TRUE(plan.has_value());
}

TEST(IntelligentCacheTest, AdjustAddFilterDimensionsEnablesReuse) {
  AbstractQuery q = QueryBuilder("tde", "sales")
                        .Dim("region")
                        .Agg(AggFunc::kSum, "units", "total")
                        .FilterIn("product", {Value("apple"), Value("fig")})
                        .Build();
  AdjustOptions opts;
  opts.add_filter_dimensions = true;
  AbstractQuery adjusted = AdjustForReuse(q, opts);
  // product became a dimension, so a later deselection is post-processable.
  AbstractQuery narrower = QueryBuilder("tde", "sales")
                               .Dim("region")
                               .Agg(AggFunc::kSum, "units", "total")
                               .FilterIn("product", {Value("apple")})
                               .Build();
  EXPECT_TRUE(MatchQueries(adjusted, {}, q).has_value());
  EXPECT_TRUE(MatchQueries(adjusted, {}, narrower).has_value());
}

TEST(IntelligentCacheTest, EvictionRespectsCapacityAndInvalidations) {
  CacheTestEnv env;
  IntelligentCacheOptions options;
  options.max_bytes = 1;  // force immediate eviction
  IntelligentCache tiny(options);
  AbstractQuery q = BaseQuery();
  tiny.Put(q, env.Truth(q), 10.0);
  EXPECT_EQ(tiny.num_entries(), 0);
  EXPECT_EQ(tiny.stats().evictions, 1);

  IntelligentCache normal;
  normal.Put(q, env.Truth(q), 10.0);
  EXPECT_EQ(normal.num_entries(), 1);
  normal.InvalidateDataSource("tde");
  EXPECT_EQ(normal.num_entries(), 0);
  EXPECT_FALSE(normal.Lookup(q).has_value());
}

TEST(IntelligentCacheTest, MinEvalCostGatesAdmission) {
  CacheTestEnv env;
  IntelligentCacheOptions options;
  options.min_eval_cost_ms = 5.0;
  IntelligentCache cache(options);
  AbstractQuery q = BaseQuery();
  cache.Put(q, env.Truth(q), 1.0);  // too cheap to bother caching
  EXPECT_EQ(cache.num_entries(), 0);
  cache.Put(q, env.Truth(q), 50.0);
  EXPECT_EQ(cache.num_entries(), 1);
}

TEST(LiteralCacheTest, HitsOnExactTextOnly) {
  LiteralCache cache;
  ResultTable t(std::vector<ResultColumn>{{"x", DataType::Int64()}});
  t.AddRow({Value(int64_t{1})});
  cache.Put("SELECT 1", t, 5.0, "src");
  EXPECT_TRUE(cache.Lookup("SELECT 1").has_value());
  EXPECT_FALSE(cache.Lookup("SELECT  1").has_value());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  cache.InvalidateDataSource("src");
  EXPECT_FALSE(cache.Lookup("SELECT 1").has_value());
}

TEST(PersistenceTest, RoundTripsBothCaches) {
  CacheTestEnv env;
  IntelligentCache intelligent;
  LiteralCache literal;
  AbstractQuery q = BaseQuery();
  intelligent.Put(q, env.Truth(q), 12.0);
  ResultTable t(std::vector<ResultColumn>{{"x", DataType::Int64()}});
  t.AddRow({Value(int64_t{42})});
  literal.Put("SELECT 42", t, 3.0, "tde");

  std::string bytes = SerializeCaches(intelligent, literal);

  IntelligentCache restored_i;
  LiteralCache restored_l;
  ASSERT_TRUE(DeserializeCaches(bytes, &restored_i, &restored_l).ok());
  EXPECT_TRUE(restored_i.Lookup(q).has_value());
  EXPECT_TRUE(restored_l.Lookup("SELECT 42").has_value());

  // Corrupt image fails cleanly.
  std::string corrupt = bytes.substr(0, bytes.size() / 2);
  IntelligentCache scratch_i;
  LiteralCache scratch_l;
  EXPECT_FALSE(DeserializeCaches(corrupt, &scratch_i, &scratch_l).ok());
}

TEST(PersistenceTest, StatsSurviveRoundTrip) {
  CacheTestEnv env;
  IntelligentCache intelligent;
  LiteralCache literal;

  // Drive a mixed history: one exact hit, one derived (roll-up) hit, and
  // misses with two distinct typed reasons.
  AbstractQuery stored = BaseQuery();
  intelligent.Put(stored, env.Truth(stored), 12.0);
  EXPECT_TRUE(intelligent.Lookup(stored).has_value());  // exact
  AbstractQuery rolled = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Build();
  EXPECT_TRUE(intelligent.Lookup(rolled).has_value());  // derived
  AbstractQuery other_view = QueryBuilder("tde", "returns")
                                 .Dim("region")
                                 .CountAll("n")
                                 .Build();
  EXPECT_FALSE(intelligent.Lookup(other_view).has_value());  // no_candidate
  AbstractQuery extra_dim = QueryBuilder("tde", "sales")
                                .Dim("region")
                                .Dim("product")
                                .Dim("day")
                                .Agg(AggFunc::kSum, "units", "total")
                                .Build();
  EXPECT_FALSE(intelligent.Lookup(extra_dim).has_value());  // dim_not_stored

  ResultTable t(std::vector<ResultColumn>{{"x", DataType::Int64()}});
  t.AddRow({Value(int64_t{42})});
  literal.Put("SELECT 42", t, 3.0, "tde");
  EXPECT_TRUE(literal.Lookup("SELECT 42").has_value());
  EXPECT_FALSE(literal.Lookup("SELECT 43").has_value());
  literal.InvalidateDataSource("tde");

  CacheStats before = intelligent.stats();
  ASSERT_EQ(before.exact_hits, 1);
  ASSERT_EQ(before.derived_hits, 1);
  ASSERT_EQ(before.misses, 2);
  ASSERT_EQ(
      before.miss_reasons[static_cast<int>(MissReason::kNoCandidate)], 1);
  ASSERT_EQ(
      before.miss_reasons[static_cast<int>(MissReason::kDimensionNotStored)],
      1);

  std::string bytes = SerializeCaches(intelligent, literal);
  IntelligentCache restored_i;
  LiteralCache restored_l;
  ASSERT_TRUE(DeserializeCaches(bytes, &restored_i, &restored_l).ok());

  // Every counter — including the per-reason breakdown — survives, and
  // the sum(miss_reasons) == misses invariant still holds after restore.
  CacheStats after = restored_i.stats();
  EXPECT_EQ(after.exact_hits, before.exact_hits);
  EXPECT_EQ(after.derived_hits, before.derived_hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.inserts, before.inserts);
  EXPECT_EQ(after.evictions, before.evictions);
  EXPECT_EQ(after.invalidations, before.invalidations);
  int64_t reason_sum = 0;
  for (int i = 0; i < kNumMissReasons; ++i) {
    EXPECT_EQ(after.miss_reasons[i], before.miss_reasons[i])
        << MissReasonToString(static_cast<MissReason>(i));
    reason_sum += after.miss_reasons[i];
  }
  EXPECT_EQ(reason_sum, after.misses);
  EXPECT_EQ(restored_l.hits(), literal.hits());
  EXPECT_EQ(restored_l.misses(), literal.misses());
  EXPECT_EQ(restored_l.invalidations(), literal.invalidations());
}

TEST(DistributedTest, SecondNodeStaysWarm) {
  CacheTestEnv env;
  DistributedCacheTier::Options tier_options;
  tier_options.net.simulate_latency = false;
  auto tier = std::make_shared<DistributedCacheTier>(tier_options);
  NodeCacheLayer node_a("a", tier);
  NodeCacheLayer node_b("b", tier);

  AbstractQuery q = BaseQuery();
  ResultTable truth = env.Truth(q);
  node_a.Put(q, truth, 20.0);

  // Node B never saw the query but gets it from the shared tier.
  auto hit = node_b.Lookup(q);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(ResultTable::SameUnordered(*hit, truth));
  EXPECT_EQ(node_b.shared_hits(), 1);

  // Second lookup on B is local.
  ASSERT_TRUE(node_b.Lookup(q).has_value());
  EXPECT_EQ(node_b.shared_hits(), 1);
  EXPECT_GE(tier->hits(), 1);
}

// --- Null-semantics differential tests (engine vs cache-derived) ---
// The TDE engine skips NULLs in COUNTD and rejects NULL rows in IN-set
// filters; cache post-processing must agree or derived hits silently
// diverge from remote execution.

class NullSemanticsEnv {
 public:
  NullSemanticsEnv()
      : source_(std::make_shared<federation::TdeDataSource>(
            "nulltde", vizq::testing::MakeNullableTestDatabase(512))),
        truth_service_(source_, nullptr) {
    (void)truth_service_.RegisterTableView("orders");
  }

  ResultTable Truth(const AbstractQuery& q) {
    BatchOptions opts;
    opts.use_intelligent_cache = false;
    opts.use_literal_cache = false;
    opts.fuse_queries = false;
    opts.analyze_batch = false;
    opts.adjust.decompose_avg = false;
    auto result = truth_service_.ExecuteQuery(q, opts);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : ResultTable();
  }

  std::shared_ptr<federation::DataSource> source_;
  QueryService truth_service_;
};

TEST(NullSemanticsTest, DerivedCountDistinctSkipsNullDimensionValues) {
  NullSemanticsEnv env;
  AbstractQuery stored = QueryBuilder("nulltde", "orders")
                             .Dim("region")
                             .Dim("product")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Build();
  ResultTable stored_truth = env.Truth(stored);
  // The fixture must actually exercise the null path: at least one group
  // with a NULL product per the generator's 20% null rate.
  bool has_null_dim = false;
  for (int64_t r = 0; r < stored_truth.num_rows(); ++r) {
    if (stored_truth.at(r, 1).is_null()) has_null_dim = true;
  }
  ASSERT_TRUE(has_null_dim) << "fixture lost its null dimension values";

  IntelligentCache cache;
  cache.Put(stored, stored_truth, 10.0);
  AbstractQuery request = QueryBuilder("nulltde", "orders")
                              .Dim("region")
                              .Agg(AggFunc::kCountDistinct, "product", "nd")
                              .Build();
  auto hit = cache.Lookup(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.stats().derived_hits, 1);
  // A COUNTD that counted the null group would be +1 on every row with a
  // null-bearing region; the engine's answer is the spec.
  EXPECT_TRUE(ResultTable::SameUnordered(*hit, env.Truth(request)))
      << hit->ToCsv() << "\nvs engine:\n" << env.Truth(request).ToCsv();
}

TEST(NullSemanticsTest, DerivedInSetFilterRejectsNullRows) {
  NullSemanticsEnv env;
  AbstractQuery stored = QueryBuilder("nulltde", "orders")
                             .Dim("region")
                             .Dim("product")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Agg(AggFunc::kCount, "units", "n")
                             .Build();
  IntelligentCache cache;
  cache.Put(stored, env.Truth(stored), 10.0);

  // A predicate set containing a NULL literal must not admit NULL rows:
  // SQL IN uses =, and NULL = NULL is not true. The engine enforces this;
  // the residual post-filter has to match it.
  AbstractQuery request =
      QueryBuilder("nulltde", "orders")
          .Dim("region")
          .Agg(AggFunc::kSum, "units", "total")
          .Agg(AggFunc::kCount, "units", "n")
          .FilterIn("product", {Value("apple"), Value("banana"), Value::Null()})
          .Build();
  auto hit = cache.Lookup(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.stats().derived_hits, 1);
  EXPECT_TRUE(ResultTable::SameUnordered(*hit, env.Truth(request)))
      << hit->ToCsv() << "\nvs engine:\n" << env.Truth(request).ToCsv();
}

// --- Stats lifecycle (Clear / InvalidateDataSource observability) ---

TEST(IntelligentCacheTest, ClearResetsStatsAndInvalidationsAreCounted) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery q = BaseQuery();
  cache.Put(q, env.Truth(q), 10.0);
  (void)cache.Lookup(q);                             // exact hit
  (void)cache.Lookup(QueryBuilder("tde", "other").Dim("x").Build());  // miss
  EXPECT_EQ(cache.stats().exact_hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().inserts, 1);

  cache.InvalidateDataSource("tde");
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.total_bytes(), 0);

  cache.Put(q, env.Truth(q), 10.0);
  cache.Clear();
  // Post-clear the cache reports as-new: hit-rate accounting restarts.
  CacheStats s = cache.stats();
  EXPECT_EQ(s.exact_hits, 0);
  EXPECT_EQ(s.derived_hits, 0);
  EXPECT_EQ(s.misses, 0);
  EXPECT_EQ(s.inserts, 0);
  EXPECT_EQ(s.invalidations, 0);
  EXPECT_EQ(s.hits(), 0);
  EXPECT_EQ(cache.num_entries(), 0);
  EXPECT_EQ(cache.total_bytes(), 0);
  // And counting resumes from zero.
  cache.Put(q, env.Truth(q), 10.0);
  (void)cache.Lookup(q);
  EXPECT_EQ(cache.stats().exact_hits, 1);
}

TEST(LiteralCacheTest, ClearResetsCountersAndInvalidationsAreCounted) {
  LiteralCache cache;
  ResultTable t(std::vector<ResultColumn>{{"x", DataType::Int64()}});
  t.AddRow({Value(int64_t{1})});
  cache.Put("SELECT 1", t, 5.0, "src");
  cache.Put("SELECT 2", t, 5.0, "src");
  cache.Put("SELECT 3", t, 5.0, "other");
  (void)cache.Lookup("SELECT 1");
  (void)cache.Lookup("SELECT nope");
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);

  cache.InvalidateDataSource("src");
  EXPECT_EQ(cache.invalidations(), 2);
  EXPECT_EQ(cache.num_entries(), 1);

  cache.Clear();
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_EQ(cache.invalidations(), 0);
  EXPECT_EQ(cache.num_entries(), 0);
  EXPECT_EQ(cache.total_bytes(), 0);
}

// --- Sharded-layout behavior ---

TEST(IntelligentCacheTest, LookupHitSharesSnapshotsWithoutCopying) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery q = BaseQuery();
  cache.Put(q, env.Truth(q), 10.0);

  auto first = cache.LookupHit(q);
  auto second = cache.LookupHit(q);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(first->exact);
  EXPECT_TRUE(second->exact);
  // Exact hits share one immutable snapshot: a refcount bump, not a copy.
  EXPECT_EQ(first->table.get(), second->table.get());

  AbstractQuery rolled = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Build();
  auto derived = cache.LookupHit(rolled);
  ASSERT_TRUE(derived.has_value());
  EXPECT_FALSE(derived->exact);
  EXPECT_TRUE(ResultTable::SameUnordered(*derived->table, env.Truth(rolled)));
}

TEST(IntelligentCacheTest, SnapshotRestoreRoundTripsAcrossShardLayouts) {
  CacheTestEnv env;
  IntelligentCacheOptions wide;
  wide.num_shards = 32;
  IntelligentCache cache(wide);
  // Entries across several (data_source, view) buckets → several shards.
  std::vector<AbstractQuery> queries;
  for (int v = 0; v < 6; ++v) {
    AbstractQuery q = BaseQuery();
    q.view = "sales_v" + std::to_string(v);
    q.Canonicalize();
    queries.push_back(q);
    cache.Put(q, env.Truth(BaseQuery()), 10.0 + v);
  }
  EXPECT_EQ(cache.num_entries(), 6);
  EXPECT_EQ(cache.num_shards(), 32);
  int64_t occupied = 0;
  for (int64_t n : cache.ShardOccupancy()) occupied += n;
  EXPECT_EQ(occupied, 6);

  auto snapshot = cache.TakeSnapshot();
  ASSERT_EQ(snapshot.size(), 6u);

  // Restore into a cache with a different stripe width: the layout is an
  // implementation detail, the entries must all come back.
  IntelligentCacheOptions narrow;
  narrow.num_shards = 2;
  IntelligentCache restored(narrow);
  restored.Restore(std::move(snapshot));
  EXPECT_EQ(restored.num_entries(), 6);
  EXPECT_EQ(restored.total_bytes(), cache.total_bytes());
  for (const AbstractQuery& q : queries) {
    auto hit = restored.LookupHit(q);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->exact);
  }
}

TEST(LiteralCacheTest, SnapshotRestoreRoundTripsAcrossShardLayouts) {
  LiteralCacheOptions wide;
  wide.num_shards = 32;
  LiteralCache cache(wide);
  ResultTable t(std::vector<ResultColumn>{{"x", DataType::Int64()}});
  t.AddRow({Value(int64_t{7})});
  for (int i = 0; i < 10; ++i) {
    cache.Put("SELECT " + std::to_string(i), t, 5.0, "src");
  }
  auto snapshot = cache.TakeSnapshot();
  ASSERT_EQ(snapshot.size(), 10u);

  LiteralCacheOptions narrow;
  narrow.num_shards = 1;
  LiteralCache restored(narrow);
  restored.Restore(std::move(snapshot));
  EXPECT_EQ(restored.num_entries(), 10);
  EXPECT_EQ(restored.total_bytes(), cache.total_bytes());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(restored.Lookup("SELECT " + std::to_string(i)).has_value());
  }
}

// Parameterized sweep: every (stored granularity, requested granularity,
// filter) combination answered from cache must equal direct execution.
struct SweepCase {
  std::vector<std::string> stored_dims;
  std::vector<std::string> requested_dims;
  bool filter_region;
};

class CacheEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(CacheEquivalenceSweep, DerivedResultsMatchTruth) {
  static CacheTestEnv* env = new CacheTestEnv();
  const std::vector<std::vector<std::string>> granularities = {
      {"region", "product"}, {"region"}, {"product"}, {}};
  int param = GetParam();
  const auto& stored_dims = granularities[param % 4];
  const auto& requested_dims = granularities[(param / 4) % 4];
  bool filter_region = (param / 16) % 2 == 1;

  // Requested must be derivable: requested dims subset of stored dims and
  // (when filtering on region) region in stored dims.
  auto contains = [](const std::vector<std::string>& v, const std::string& s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };
  bool derivable = true;
  for (const std::string& d : requested_dims) {
    if (!contains(stored_dims, d)) derivable = false;
  }
  if (filter_region && !contains(stored_dims, "region")) derivable = false;

  QueryBuilder stored_builder("tde", "sales");
  for (const std::string& d : stored_dims) stored_builder.Dim(d);
  stored_builder.Agg(AggFunc::kSum, "units", "total")
      .Agg(AggFunc::kCount, "units", "n");
  AbstractQuery stored = stored_builder.Build();

  QueryBuilder req_builder("tde", "sales");
  for (const std::string& d : requested_dims) req_builder.Dim(d);
  req_builder.Agg(AggFunc::kSum, "units", "total")
      .Agg(AggFunc::kAvg, "units", "mean");
  if (filter_region) {
    req_builder.FilterIn("region", {Value("East"), Value("North")});
  }
  AbstractQuery requested = req_builder.Build();

  IntelligentCache cache;
  cache.Put(stored, env->Truth(stored), 10.0);
  auto hit = cache.Lookup(requested);
  if (!derivable) {
    EXPECT_FALSE(hit.has_value());
    return;
  }
  ASSERT_TRUE(hit.has_value());
  EXPECT_TABLES_EQUIVALENT(env->Truth(requested), *hit);
}

INSTANTIATE_TEST_SUITE_P(GranularityByFilter, CacheEquivalenceSweep,
                         ::testing::Range(0, 32));

// Minimized from fuzz_differential (derived_hit lane): a scalar request
// whose residual filter removes every stored group must still produce the
// engine's single scalar row — counts 0, extremes/sums NULL — not an
// empty table.
TEST(IntelligentCacheTest, ScalarRollupOverEmptiedGroupsKeepsOneRow) {
  CacheTestEnv env;
  IntelligentCache cache;
  AbstractQuery stored = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Agg(AggFunc::kMax, "product")
                             .Agg(AggFunc::kCount, "units")
                             .Build();
  cache.Put(stored, env.Truth(stored), 10.0);

  AbstractQuery request = QueryBuilder("tde", "sales")
                              .Agg(AggFunc::kMax, "product")
                              .Agg(AggFunc::kCount, "units")
                              .FilterIn("region", {Value("Atlantis")})
                              .Build();
  auto hit = cache.Lookup(request);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->num_rows(), 1);
  EXPECT_TRUE(hit->at(0, 0).is_null());
  EXPECT_EQ(hit->at(0, 1).int_value(), 0);
  EXPECT_TABLES_EQUIVALENT(env.Truth(request), *hit);
}

// Minimized from fuzz_differential: SQL NULL and the literal string
// "NULL" are distinct group keys; the roll-up used to merge them because
// its group key rendered both as the same text.
TEST(IntelligentCacheTest, RollupKeepsNullAndLiteralNullStringApart) {
  using namespace vizq::tde;
  TableBuilder builder("t", {{"g", DataType::String()},
                             {"h", DataType::String()},
                             {"v", DataType::Int64()}});
  (void)builder.AddRow({Value("a"), Value::Null(), Value(int64_t{1})});
  (void)builder.AddRow({Value("a"), Value("NULL"), Value(int64_t{10})});
  (void)builder.AddRow({Value("b"), Value::Null(), Value(int64_t{2})});
  (void)builder.AddRow({Value("b"), Value("NULL"), Value(int64_t{20})});
  auto db = std::make_shared<Database>("nullstr");
  (void)db->AddTable(*builder.Finish());
  auto source = std::make_shared<federation::TdeDataSource>(
      "tde", db, QueryOptions::Serial());
  QueryService service(source, nullptr);
  ASSERT_TRUE(service.RegisterTableView("t").ok());
  BatchOptions opts;
  opts.use_intelligent_cache = false;
  opts.use_literal_cache = false;
  opts.fuse_queries = false;
  opts.analyze_batch = false;
  opts.adjust.decompose_avg = false;

  AbstractQuery stored = QueryBuilder("tde", "t")
                             .Dim("g")
                             .Dim("h")
                             .Agg(AggFunc::kSum, "v", "s")
                             .Build();
  AbstractQuery request =
      QueryBuilder("tde", "t").Dim("h").Agg(AggFunc::kSum, "v", "s").Build();
  auto stored_result = service.ExecuteQuery(stored, opts);
  ASSERT_TRUE(stored_result.ok()) << stored_result.status();

  IntelligentCache cache;
  cache.Put(stored, *stored_result, 10.0);
  auto hit = cache.Lookup(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->num_rows(), 2);  // one NULL group, one "NULL" group
  auto truth = service.ExecuteQuery(request, opts);
  ASSERT_TRUE(truth.ok()) << truth.status();
  EXPECT_TABLES_EQUIVALENT(*truth, *hit);
}

// Minimized from fuzz_differential (batch_fused lane): widening a query
// with its filter columns must keep COUNTD derivable — the COUNTD column
// has to ride along as a dimension, because distinct counts cannot be
// re-aggregated through the roll-up.
TEST(AdjustForReuseTest, CountDistinctSurvivesFilterDimensionWidening) {
  CacheTestEnv env;
  AbstractQuery q = QueryBuilder("tde", "sales")
                        .Agg(AggFunc::kCountDistinct, "product", "nd")
                        .FilterIn("region", {Value("East"), Value("West")})
                        .Build();
  AdjustOptions options;
  options.add_filter_dimensions = true;
  AbstractQuery adjusted = AdjustForReuse(q, options);

  ResultTable wide = env.Truth(adjusted);
  auto plan = MatchQueries(adjusted, wide.columns(), q);
  ASSERT_TRUE(plan.has_value())
      << "widened query cannot serve the original: " << adjusted.ToKeyString();
  auto derived = ApplyMatchPlan(wide, *plan, q);
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_TABLES_EQUIVALENT(env.Truth(q), *derived);
}

}  // namespace
}  // namespace vizq::cache
