// Common-layer tests: Status/StatusOr, Value semantics, string/date
// utilities, ResultTable serialization, the thread pool, and binary I/O.

#include <gtest/gtest.h>

#include <atomic>

#include "src/common/binary_io.h"
#include "src/common/result_table.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/str_util.h"
#include "src/common/thread_pool.h"
#include "src/common/value.h"

namespace vizq {
namespace {

TEST(StatusTest, CodesAndMessages) {
  Status ok = OkStatus();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = NotFound("table 'x'");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: table 'x'");
}

StatusOr<int> Half(int v) {
  if (v % 2 != 0) return InvalidArgument("odd");
  return v / 2;
}

StatusOr<int> Quarter(int v) {
  VIZQ_ASSIGN_OR_RETURN(int half, Half(v));
  VIZQ_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusTest, MacrosPropagate) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // half=3 fails at the second step
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ValueTest, CompareAcrossNumericKinds) {
  EXPECT_EQ(Value(int64_t{3}).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(int64_t{2}).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(true).Compare(Value(false)), 0);
  // NULL sorts first and equals itself.
  EXPECT_LT(Value::Null().Compare(Value(int64_t{-100})), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CollatedStringEquality) {
  Value a("Hello");
  Value b("HELLO");
  EXPECT_FALSE(a.Equals(b));
  EXPECT_TRUE(a.Equals(b, Collation::kCaseInsensitive));
  EXPECT_EQ(a.Hash(Collation::kCaseInsensitive),
            b.Hash(Collation::kCaseInsensitive));
}

TEST(ValueTest, HashConsistentWithEquals) {
  // 1 == 1.0 must hash-agree (numeric widening in Compare).
  EXPECT_TRUE(Value(int64_t{1}).Equals(Value(1.0)));
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
}

TEST(StrUtilTest, SplitJoinStrip) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrJoin({"x", "y"}, "--"), "x--y");
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtilTest, StrictParsers) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("42x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5e1"), 25.0);
  EXPECT_FALSE(ParseDouble("2.5.1").has_value());
  EXPECT_TRUE(*ParseBool("TRUE"));
  EXPECT_FALSE(*ParseBool("0"));
  EXPECT_FALSE(ParseBool("yep").has_value());
}

TEST(StrUtilTest, DateRoundTripAndProperties) {
  // Round-trip across eras, leap years and month boundaries.
  const char* dates[] = {"1970-01-01", "2000-02-29", "1999-12-31",
                         "2014-06-01", "2024-02-29", "1969-07-20",
                         "2100-01-01"};
  for (const char* d : dates) {
    auto days = ParseDateDays(d);
    ASSERT_TRUE(days.has_value()) << d;
    EXPECT_EQ(FormatDateDays(*days), d);
  }
  EXPECT_FALSE(ParseDateDays("2014-13-01").has_value());
  EXPECT_FALSE(ParseDateDays("2023-02-29").has_value());
  EXPECT_FALSE(ParseDateDays("2014-6-01").has_value());
  // Weekday anchors: 1970-01-01 Thursday (3), 2014-06-01 Sunday (6).
  EXPECT_EQ(DayOfWeek(*ParseDateDays("1970-01-01")), 3);
  EXPECT_EQ(DayOfWeek(*ParseDateDays("2014-06-01")), 6);
  // Consecutive days advance the weekday mod 7.
  int64_t base = *ParseDateDays("2014-01-01");
  for (int i = 1; i < 400; ++i) {
    EXPECT_EQ(DayOfWeek(base + i), (DayOfWeek(base) + i) % 7);
  }
}

TEST(ResultTableTest, SerializeDeserializeExact) {
  ResultTable t(std::vector<ResultColumn>{
      {"s", DataType::String()}, {"i", DataType::Int64()},
      {"f", DataType::Float64()}, {"b", DataType::Bool()}});
  t.AddRow({Value("hello"), Value(int64_t{-5}), Value(2.25), Value(true)});
  t.AddRow({Value::Null(), Value::Null(), Value::Null(), Value::Null()});
  t.AddRow({Value(""), Value(int64_t{1} << 40), Value(-0.0), Value(false)});

  auto restored = ResultTable::Deserialize(t.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(t == *restored);

  EXPECT_FALSE(ResultTable::Deserialize("junk").ok());
  std::string truncated = t.Serialize();
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(ResultTable::Deserialize(truncated).ok());
}

TEST(ResultTableTest, SameUnorderedIgnoresRowOrder) {
  ResultTable a(std::vector<ResultColumn>{{"x", DataType::Int64()}});
  a.AddRow({Value(int64_t{1})});
  a.AddRow({Value(int64_t{2})});
  ResultTable b(std::vector<ResultColumn>{{"x", DataType::Int64()}});
  b.AddRow({Value(int64_t{2})});
  b.AddRow({Value(int64_t{1})});
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(ResultTable::SameUnordered(a, b));
  b.AddRow({Value(int64_t{3})});
  EXPECT_FALSE(ResultTable::SameUnordered(a, b));
}

TEST(ThreadPoolTest, RunsAllTasksAndWaits) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
    // Pool reusable after Wait.
    pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), 101);
  }
}

TEST(ThreadPoolTest, DestructorJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 20);
  pool.Shutdown();  // idempotent
}

// A Submit after Shutdown is a hard programming error: the task would
// silently never run. The pool aborts loudly instead.
TEST(ThreadPoolDeathTest, SubmitAfterShutdownAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_DEATH(pool.Submit([] {}), "Submit called after shutdown");
}

TEST(BinaryIoTest, AllFieldKindsRoundTrip) {
  BinaryWriter w;
  w.U8(7);
  w.U32(1u << 30);
  w.I64(-12345678901234LL);
  w.F64(3.5);
  w.Str("abc");
  w.Val(Value::Null());
  w.Val(Value("xyz"));
  w.Val(Value(false));

  BinaryReader r(w.bytes());
  uint8_t u8;
  uint32_t u32;
  int64_t i64;
  double f64;
  std::string s;
  Value v1, v2, v3;
  ASSERT_TRUE(r.U8(&u8) && r.U32(&u32) && r.I64(&i64) && r.F64(&f64) &&
              r.Str(&s) && r.Val(&v1) && r.Val(&v2) && r.Val(&v3));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 1u << 30);
  EXPECT_EQ(i64, -12345678901234LL);
  EXPECT_EQ(f64, 3.5);
  EXPECT_EQ(s, "abc");
  EXPECT_TRUE(v1.is_null());
  EXPECT_EQ(v2.string_value(), "xyz");
  EXPECT_FALSE(v3.bool_value());
  EXPECT_TRUE(r.AtEnd());
  // Reading past the end fails cleanly.
  uint8_t extra;
  EXPECT_FALSE(r.U8(&extra));
}

TEST(RngTest, DeterministicAndZipfSkewed) {
  Rng a(5), b(5), c(6);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());

  Rng rng(1);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Rank 0 dominates rank 50 heavily.
  EXPECT_GT(counts[0], counts[50] * 5);
  // Range stays in bounds.
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

}  // namespace
}  // namespace vizq
