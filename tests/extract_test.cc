// Shadow extract tests (§4.4): CSV parsing, schema inference, schema
// files, extraction into the TDE, persistence, and refresh semantics.

#include "src/extract/shadow_extract.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/extract/csv_parser.h"
#include "src/extract/type_inference.h"
#include "src/workload/faa_generator.h"

namespace vizq::extract {
namespace {

TEST(CsvParserTest, BasicRecords) {
  auto records = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[1][1], "2");
}

TEST(CsvParserTest, QuotedFieldsWithSeparatorsAndNewlines) {
  auto records = ParseCsv(
      "name,notes\n"
      "\"Smith, John\",\"line1\nline2\"\n"
      "plain,\"embedded \"\"quotes\"\"\"\n");
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[1][0], "Smith, John");
  EXPECT_EQ((*records)[1][1], "line1\nline2");
  EXPECT_EQ((*records)[2][1], "embedded \"quotes\"");
}

TEST(CsvParserTest, CrLfAndFinalLineWithoutNewline) {
  auto records = ParseCsv("a,b\r\n1,2\r\n3,4");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[2][1], "4");
}

TEST(CsvParserTest, RaggedRowsFail) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvParserTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(TypeInferenceTest, HeaderAndTypesDetected) {
  auto records = *ParseCsv(
      "city,population,avg_temp,founded,active\n"
      "Springfield,30000,12.5,1900-01-02,true\n"
      "Shelbyville,NULL,13.0,1910-07-20,false\n");
  InferredSchema schema = InferSchema(records);
  EXPECT_TRUE(schema.first_row_is_header);
  ASSERT_EQ(schema.columns.size(), 5u);
  EXPECT_EQ(schema.columns[0].type.kind, TypeKind::kString);
  EXPECT_EQ(schema.columns[1].type.kind, TypeKind::kInt64);
  EXPECT_EQ(schema.columns[2].type.kind, TypeKind::kFloat64);
  EXPECT_EQ(schema.columns[3].type.kind, TypeKind::kDate);
  EXPECT_EQ(schema.columns[4].type.kind, TypeKind::kBool);
}

TEST(TypeInferenceTest, NoHeaderGetsGeneratedNames) {
  auto records = *ParseCsv("1,2.5\n3,4.5\n");
  InferredSchema schema = InferSchema(records);
  EXPECT_FALSE(schema.first_row_is_header);
  ASSERT_EQ(schema.columns.size(), 2u);
  EXPECT_EQ(schema.columns[0].name, "F1");
  EXPECT_EQ(schema.columns[0].type.kind, TypeKind::kInt64);
  EXPECT_EQ(schema.columns[1].type.kind, TypeKind::kFloat64);
}

TEST(TypeInferenceTest, MixedIntFloatWidensAndMixedOtherCollapses) {
  auto records = *ParseCsv("a,b\n1,1\n2.5,x\n");
  InferredSchema schema = InferSchema(records);
  EXPECT_EQ(schema.columns[0].type.kind, TypeKind::kFloat64);
  EXPECT_EQ(schema.columns[1].type.kind, TypeKind::kString);
}

TEST(TypeInferenceTest, SchemaFileParsing) {
  auto cols = ParseSchemaFile(
      "# flights schema\n"
      "carrier:string:nocase\n"
      "fl_date:date\n"
      "delay:int64\n");
  ASSERT_TRUE(cols.ok()) << cols.status();
  ASSERT_EQ(cols->size(), 3u);
  EXPECT_EQ((*cols)[0].type.collation, Collation::kCaseInsensitive);
  EXPECT_EQ((*cols)[1].type.kind, TypeKind::kDate);

  EXPECT_FALSE(ParseSchemaFile("bad line here\n").ok());
  EXPECT_FALSE(ParseSchemaFile("x:frobnitz\n").ok());
  EXPECT_FALSE(ParseSchemaFile("# only comments\n").ok());
}

TEST(ShadowExtractTest, ExtractAndQuery) {
  workload::FaaOptions options;
  options.num_flights = 2000;
  std::string csv = *workload::GenerateFaaCsv(options);

  auto db = std::make_shared<tde::Database>("extracts");
  ShadowExtractManager manager(db);
  ExtractOptions eopts;
  eopts.sort_by = {"carrier"};
  ExtractStats stats;
  auto table = manager.ExtractCsv("flights", csv, eopts, &stats);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 2000);
  EXPECT_GT(stats.parse_ms, 0);
  EXPECT_EQ((*table)->sort_columns().size(), 1u);

  // Queries now run in the TDE.
  tde::TdeEngine engine(manager.shared_database());
  auto result = engine.Query(
      "(aggregate ((carrier carrier)) ((n count*)) (scan flights))");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->num_rows(), 2);
}

TEST(ShadowExtractTest, RefreshReplacesExtract) {
  auto db = std::make_shared<tde::Database>("extracts");
  ShadowExtractManager manager(db);
  ASSERT_TRUE(manager.ExtractCsv("t", "x\n1\n2\n").ok());
  ASSERT_TRUE(manager.ExtractCsv("t", "x\n1\n2\n3\n").ok());
  auto table = db->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 3);
}

TEST(ShadowExtractTest, PersistAndRestoreSkipsReextraction) {
  std::string path = ::testing::TempDir() + "/vizq_extract_test.tde";
  {
    auto db = std::make_shared<tde::Database>("extracts");
    ShadowExtractManager manager(db);
    ASSERT_TRUE(manager.ExtractCsv("t", "x,y\n1,a\n2,b\n").ok());
    ASSERT_TRUE(manager.PersistTo(path).ok());
  }
  {
    auto db = std::make_shared<tde::Database>("empty");
    ShadowExtractManager manager(db);
    ASSERT_TRUE(manager.RestoreFrom(path).ok());
    auto table = manager.database().GetTable("t");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->num_rows(), 2);
    EXPECT_EQ((*table)->column_info(1).type.kind, TypeKind::kString);
  }
  std::remove(path.c_str());
}

TEST(ShadowExtractTest, ExplicitSchemaOverridesInference) {
  auto db = std::make_shared<tde::Database>("extracts");
  ShadowExtractManager manager(db);
  ExtractOptions options;
  options.schema = {
      InferredColumn{"code", DataType::String(Collation::kCaseInsensitive)},
      InferredColumn{"amount", DataType::Float64()},
  };
  auto table = manager.ExtractCsv("t", "code,amount\nAA,1\nbb,2\n", options);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 2);  // header skipped
  EXPECT_EQ((*table)->column_info(0).type.collation,
            Collation::kCaseInsensitive);
  EXPECT_EQ((*table)->column_info(1).type.kind, TypeKind::kFloat64);
}

}  // namespace
}  // namespace vizq::extract
