// Tests for the observability layer (src/obs/): MetricsRegistry exactness
// under concurrency, histogram percentile monotonicity, JSON parsing and
// Chrome-trace validation, PerfRecorder retention/export, and the
// operator-level EXPLAIN ANALYZE plumbing — including the acceptance
// criterion that a fixed-seed FAA batch exports a schema-valid Chrome
// trace that is stable across runs modulo timestamps.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "src/cache/intelligent_cache.h"
#include "src/cluster/coordinator.h"
#include "src/common/phase_timeline.h"
#include "src/dashboard/query_service.h"
#include "src/federation/data_source.h"
#include "src/obs/exemplar.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/perf_recorder.h"
#include "src/obs/plan_profile.h"
#include "src/obs/slo.h"
#include "src/workload/faa_generator.h"
#include "src/workload/flights_dashboards.h"
#include "tests/test_util.h"

namespace vizq::obs {
namespace {

using dashboard::BatchOptions;
using dashboard::QueryService;
using query::AbstractQuery;
using query::QueryBuilder;

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, ConcurrentCountersAndHistogramsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;

  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      Counter& mine = registry.GetCounter("stress.thread." + std::to_string(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        registry.Add("stress.shared", 1);
        mine.Add(2);
        registry.Observe("stress.lat_us", static_cast<double>(i % 1000) + 0.5);
        registry.SetGauge("stress.gauge", static_cast<double>(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  MetricsSnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("stress.shared"), kThreads * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counters.at("stress.thread." + std::to_string(t)),
              2 * kOpsPerThread);
  }
  ASSERT_EQ(snap.histograms.size(), 1u);
  const MetricsSnapshot::HistogramRow& h = snap.histograms[0];
  EXPECT_EQ(h.name, "stress.lat_us");
  EXPECT_EQ(h.count, kThreads * kOpsPerThread);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 999.5);
  // Percentiles are monotone and inside [min, max] by construction.
  EXPECT_LE(h.min, h.p50);
  EXPECT_LE(h.p50, h.p95);
  EXPECT_LE(h.p95, h.p99);
  EXPECT_LE(h.p99, h.max);
  // The bucket layout is exponential, so interpolation error is bounded by
  // one bucket's growth factor (~1.58x).
  EXPECT_GT(h.p50, 250.0);
  EXPECT_LT(h.p50, 900.0);
}

TEST(MetricsRegistryTest, HistogramSumMinMaxAndMean) {
  Histogram h;
  h.Observe(1.0);
  h.Observe(10.0);
  h.Observe(100.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 111.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 37.0);
  EXPECT_GE(h.Percentile(100), h.Percentile(50));
  EXPECT_LE(h.Percentile(0), h.Percentile(50));
}

TEST(MetricsRegistryTest, InstrumentKindsAreSticky) {
  MetricsRegistry registry;
  registry.Add("metric.a", 1);
  // Same name as a histogram: dropped, not crashed or converted.
  registry.Observe("metric.a", 3.0);
  MetricsSnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("metric.a"), 1);
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsRegistryTest, ExpositionFormats) {
  MetricsRegistry registry;
  registry.Add("cache.hits", 7);
  registry.SetGauge("pool.occupancy", 3.5);
  registry.Observe("batch.ms", 12.0);
  std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("vizq_cache_hits 7"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.95\""), std::string::npos);
  // The JSON snapshot parses with our own parser.
  auto parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* hits = counters->Find("cache.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(static_cast<int64_t>(hits->number()), 7);
}

TEST(MetricsRegistryTest, GlobalSinkReceivesExecContextMetrics) {
  MetricsRegistry& global = GlobalMetrics();  // installs the sink
  Counter& c = global.GetCounter("obs_test.count");
  int64_t before = c.value();
  ExecContext ctx;
  ctx.Count("obs_test.count", 3);
  EXPECT_EQ(c.value(), before + 3);
  // Background() forwards nothing.
  ExecContext::Background().Count("obs_test.count", 5);
  EXPECT_EQ(c.value(), before + 3);
}

// --- JSON parser / Chrome-trace validator ---

TEST(JsonTest, ParsesNestedDocument) {
  auto v = ParseJson(
      R"({"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}})");
  ASSERT_TRUE(v.ok()) << v.status();
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[1].number(), 2.5);
  const JsonValue* c = v->Find("b")->Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->string(), "x\ny");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
}

TEST(JsonTest, ValidateChromeTraceCatchesSchemaViolations) {
  int n = 0;
  EXPECT_TRUE(ValidateChromeTrace(
                  R"({"traceEvents": [{"name": "x", "ph": "X", "ts": 1,)"
                  R"( "dur": 2, "pid": 1, "tid": 0}]})",
                  &n)
                  .ok());
  EXPECT_EQ(n, 1);
  // Missing "name".
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents": [{"ph": "X", "ts": 1, "pid": 1,)"
                   R"( "tid": 0}]})")
                   .ok());
  // Negative timestamp.
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents": [{"name": "x", "ph": "i", "ts": -4,)"
                   R"( "pid": 1, "tid": 0}]})")
                   .ok());
  // No traceEvents array.
  EXPECT_FALSE(ValidateChromeTrace(R"({"events": []})").ok());
}

// --- PerfRecorder ---

// Builds a context with a finished two-level span tree and breadcrumbs.
ExecContext MakeTracedWork(const std::string& crumb) {
  ExecContext ctx;
  ctx.LogEvent("test", crumb);
  Span* child = ctx.trace()->root()->StartChild("stage");
  child->StartChild("inner")->End();
  child->End();
  ctx.Attach("note", "attachment body");
  return ctx;
}

TEST(PerfRecorderTest, RecordsSpansEventsAndAttachments) {
  PerfRecorder recorder;
  ExecContext ctx = MakeTracedWork("decision made");
  int64_t id = recorder.Record(ctx, ctx.trace()->root(), "req:a");
  ASSERT_GT(id, 0);
  RecordedRequest r = recorder.FindById(id);
  EXPECT_EQ(r.id, id);
  EXPECT_EQ(r.name, "req:a");
  EXPECT_EQ(r.root.TotalSpans(), 3);  // request -> stage -> inner
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].detail, "decision made");
  EXPECT_EQ(r.attachments.at("note"), "attachment body");
  EXPECT_EQ(recorder.total_recorded(), 1);
  // Background contexts record nothing.
  EXPECT_EQ(recorder.Record(ExecContext::Background(), nullptr, "x"), 0);
}

TEST(PerfRecorderTest, RingEvictsOldest) {
  PerfRecorderOptions options;
  options.ring_capacity = 2;
  options.slow_log_capacity = 0;  // ring only
  PerfRecorder recorder(options);
  for (int i = 0; i < 4; ++i) {
    ExecContext ctx = MakeTracedWork("r" + std::to_string(i));
    recorder.Record(ctx, ctx.trace()->root(), "req:" + std::to_string(i));
  }
  std::vector<RecordedRequest> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 2u);  // ring kept the newest two
  EXPECT_EQ(recent[0].name, "req:3");
  EXPECT_EQ(recent[1].name, "req:2");
  EXPECT_TRUE(recorder.Slowest().empty());
  EXPECT_EQ(recorder.total_recorded(), 4);
  // Evicted entries no longer resolve.
  EXPECT_EQ(recorder.FindById(1).id, 0);
}

TEST(PerfRecorderTest, SlowLogRetainsEntriesTheRingEvicted) {
  PerfRecorderOptions options;
  options.ring_capacity = 1;
  options.slow_log_capacity = 2;
  options.slow_threshold_ms = 0.0;  // everything is "slow"
  PerfRecorder recorder(options);
  std::vector<int64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ExecContext ctx = MakeTracedWork("r" + std::to_string(i));
    ids.push_back(
        recorder.Record(ctx, ctx.trace()->root(), "req:" + std::to_string(i)));
  }
  ASSERT_EQ(recorder.Recent().size(), 1u);
  std::vector<RecordedRequest> slow = recorder.Slowest();
  ASSERT_EQ(slow.size(), 2u);  // fastest were evicted, slowest retained
  EXPECT_GE(slow[0].duration_us, slow[1].duration_us);
  // Slow-log entries stay resolvable by id even after the ring moved on.
  for (const RecordedRequest& r : slow) {
    EXPECT_EQ(recorder.FindById(r.id).id, r.id);
  }
  // Records in neither structure no longer resolve: of the four ids, the
  // ring holds the newest and the slow log two more, so at least one is
  // fully evicted.
  int resolved = 0;
  for (int64_t id : ids) {
    if (recorder.FindById(id).id != 0) ++resolved;
  }
  EXPECT_LE(resolved, 3);
}

TEST(PerfRecorderTest, ChromeTraceExportValidates) {
  PerfRecorder recorder;
  ExecContext ctx = MakeTracedWork("crumb");
  recorder.Record(ctx, ctx.trace()->root(), "req:x");
  int n = 0;
  Status s = ValidateChromeTrace(recorder.AllToChromeTrace(), &n);
  EXPECT_TRUE(s.ok()) << s;
  // 3 spans + 1 instant + at least 1 metadata event.
  EXPECT_GE(n, 5);
}

// --- end-to-end: fixed-seed FAA batch through the service ---

struct FaaFixture {
  std::shared_ptr<tde::Database> db;
  std::unique_ptr<QueryService> service;

  FaaFixture() {
    workload::FaaOptions faa;
    faa.num_flights = 5000;
    faa.seed = 2015;
    db = *workload::GenerateFaaDatabase(faa);
    auto source = std::make_shared<federation::TdeDataSource>("faa", db);
    service = std::make_unique<QueryService>(
        source, std::make_shared<dashboard::CacheStack>());
    Status registered = service->RegisterView(workload::FlightsStarView());
    if (!registered.ok()) ADD_FAILURE() << registered;
  }

  static std::vector<AbstractQuery> Batch() {
    std::vector<AbstractQuery> batch;
    batch.push_back(QueryBuilder("faa", workload::kFlightsView)
                        .Dim("carrier")
                        .CountAll("flights")
                        .OrderBy("flights", false)
                        .Build());
    batch.push_back(QueryBuilder("faa", workload::kFlightsView)
                        .Dim("dest_state")
                        .Agg(AggFunc::kAvg, "dep_delay", "avg_delay")
                        .Build());
    batch.push_back(QueryBuilder("faa", workload::kFlightsView)
                        .CountAll("n")
                        .Build());
    return batch;
  }
};

// Strips every "ts"/"dur" value so two exports of the same workload can
// be compared structurally (names, phases, nesting, pids/tids).
std::string NormalizeTrace(const std::string& trace_json) {
  auto parsed = ParseJson(trace_json);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  if (!parsed.ok()) return "";
  std::string out;
  const JsonValue* events = parsed->Find("traceEvents");
  if (events == nullptr) return "";
  for (const JsonValue& e : events->array()) {
    const JsonValue* name = e.Find("name");
    const JsonValue* ph = e.Find("ph");
    const JsonValue* tid = e.Find("tid");
    out += (name != nullptr ? name->string() : "?");
    out += "|" + (ph != nullptr ? ph->string() : "?");
    out += "|" + std::to_string(
                     tid != nullptr ? static_cast<int64_t>(tid->number()) : -1);
    out += "\n";
  }
  return out;
}

TEST(ObservabilityEndToEndTest, FaaBatchTraceIsValidAndStableModuloTime) {
  std::string normalized[2];
  for (int run = 0; run < 2; ++run) {
    FaaFixture fx;  // fresh service + caches: identical cold-start state
    PerfRecorder recorder;
    ExecContext ctx;
    auto results = fx.service->ExecuteBatch(ctx, FaaFixture::Batch(), {},
                                            nullptr);
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_EQ(results->size(), 3u);
    // Record into a private recorder for a deterministic single entry.
    int64_t id = recorder.Record(ctx, ctx.trace()->root(), "batch:faa");
    RecordedRequest r = recorder.FindById(id);
    EXPECT_GE(r.root.TotalSpans(), 2);
    std::string trace = PerfRecorder::ToChromeTrace(r);
    int n = 0;
    Status valid = ValidateChromeTrace(trace, &n);
    ASSERT_TRUE(valid.ok()) << valid;
    EXPECT_GT(n, 0);
    normalized[run] = NormalizeTrace(trace);
    ASSERT_FALSE(normalized[run].empty());
  }
  EXPECT_EQ(normalized[0], normalized[1])
      << "trace structure should be deterministic for a fixed seed";
}

TEST(ObservabilityEndToEndTest, ExplainAnalyzeRootRowsMatchResult) {
  FaaFixture fx;
  BatchOptions opts;
  opts.use_intelligent_cache = false;
  opts.use_literal_cache = false;
  AbstractQuery q = QueryBuilder("faa", workload::kFlightsView)
                        .Dim("carrier")
                        .Dim("dest_state")
                        .Agg(AggFunc::kSum, "dep_delay", "total_delay")
                        .Build();
  ExecContext ctx;
  auto result = fx.service->ExecuteQuery(ctx, q, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  std::string plan = ctx.log()->attachment("tde.analyze");
  ASSERT_FALSE(plan.empty());
  EXPECT_NE(plan.find("Aggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("rows="), std::string::npos) << plan;
  EXPECT_EQ(ctx.log()->attachment("tde.analyze.root_rows"),
            std::to_string(result->num_rows()));
}

TEST(ObservabilityEndToEndTest, CacheMissReasonsReachGlobalRegistry) {
  MetricsRegistry& global = GlobalMetrics();
  Counter& miss_counter =
      global.GetCounter("cache.intelligent.miss.dimension_not_stored");
  int64_t before = miss_counter.value();

  cache::IntelligentCache cache;
  ResultTable t(std::vector<ResultColumn>{{"carrier", DataType::String()},
                                          {"n", DataType::Int64()}});
  t.AddRow({Value("AA"), Value(int64_t{10})});
  AbstractQuery stored = QueryBuilder("faa", "flights_star")
                             .Dim("carrier")
                             .CountAll("n")
                             .Build();
  cache.Put(stored, t, 10.0);
  AbstractQuery asks_more = QueryBuilder("faa", "flights_star")
                                .Dim("carrier")
                                .Dim("dest_state")
                                .CountAll("n")
                                .Build();
  ExecContext ctx;
  EXPECT_FALSE(cache.LookupHit(asks_more, ctx).has_value());
  EXPECT_EQ(miss_counter.value(), before + 1);
  // The typed reason also lands in the per-request breadcrumbs.
  bool found = false;
  for (const auto& e : ctx.log()->events()) {
    if (e.detail.find("reason=dimension_not_stored") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- Histogram quantile interpolation ---

TEST(HistogramQuantilesTest, BucketBoundsTile) {
  EXPECT_DOUBLE_EQ(Histogram::LowerBound(0), 0.0);
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::LowerBound(i), Histogram::UpperBound(i - 1));
    EXPECT_GT(Histogram::UpperBound(i), Histogram::LowerBound(i));
  }
}

TEST(HistogramQuantilesTest, MonotoneOnAdversarialFills) {
  // Fills engineered to stress the interpolation: everything in one
  // bucket, two far-apart spikes, values at exact bucket bounds, and a
  // heavy-tailed sweep. Quantiles must be monotone and clamped to
  // [min, max] on every one of them.
  std::vector<std::vector<double>> fills;
  fills.push_back(std::vector<double>(1000, 5.0));  // single value
  {
    std::vector<double> two_spikes(500, 0.001);
    two_spikes.insert(two_spikes.end(), 500, 1e9);
    fills.push_back(std::move(two_spikes));
  }
  {
    std::vector<double> at_bounds;
    for (int i = 0; i < Histogram::kNumBuckets; i += 4) {
      at_bounds.insert(at_bounds.end(), 17, Histogram::UpperBound(i));
    }
    fills.push_back(std::move(at_bounds));
  }
  {
    std::vector<double> heavy;
    for (int i = 0; i < 2000; ++i) {
      heavy.push_back(1.0 + (i % 97) * (i % 89) * 0.5);
    }
    heavy.push_back(-3.0);  // below-zero lands in bucket 0
    heavy.push_back(0.0);
    fills.push_back(std::move(heavy));
  }
  const std::vector<double> ps = {0, 1, 10, 25, 50, 75, 90, 95, 99, 99.9,
                                  100};
  for (const std::vector<double>& fill : fills) {
    Histogram h;
    for (double v : fill) h.Observe(v);
    std::vector<double> qs = h.Quantiles(ps);
    ASSERT_EQ(qs.size(), ps.size());
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_GE(qs[i], h.min()) << "p" << ps[i];
      EXPECT_LE(qs[i], h.max()) << "p" << ps[i];
      if (i > 0) {
        EXPECT_LE(qs[i - 1], qs[i])
            << "p" << ps[i - 1] << " > p" << ps[i];
      }
    }
    // The single-quantile form agrees with the batch form.
    EXPECT_DOUBLE_EQ(h.Percentile(50), qs[4]);
  }
}

TEST(HistogramQuantilesTest, UnsortedRequestOrderStillMapsCorrectly) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  std::vector<double> qs = h.Quantiles({99, 50, 1});
  ASSERT_EQ(qs.size(), 3u);
  // Values come back in the REQUESTED order, computed from one pass.
  EXPECT_GT(qs[0], qs[1]);
  EXPECT_GT(qs[1], qs[2]);
  EXPECT_DOUBLE_EQ(qs[1], h.Percentile(50));
}

TEST(HistogramQuantilesTest, EmptyHistogramReportsZero) {
  Histogram h;
  std::vector<double> qs = h.Quantiles({50, 95, 99});
  for (double q : qs) EXPECT_DOUBLE_EQ(q, 0.0);
}

// --- PhaseTimeline / PhaseScope ---

TEST(PhaseTimelineTest, NestedScopesAccountExclusively) {
  PhaseTimeline tl;
  auto t0 = std::chrono::steady_clock::now();
  {
    PhaseScope exec(&tl, Phase::kExecution);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    {
      // Nested scope pauses the parent: its time must NOT also count as
      // execution.
      PhaseScope cache(&tl, Phase::kCacheLookup);
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  double exec_ms = tl.phase_ms(Phase::kExecution);
  double cache_ms = tl.phase_ms(Phase::kCacheLookup);
  EXPECT_GE(cache_ms, 10.0);
  EXPECT_GE(exec_ms, 15.0);
  // Exclusive: execution excludes the nested cache time...
  EXPECT_LT(exec_ms, wall_ms - cache_ms + 5.0);
  // ...and the two together decompose the wall time.
  EXPECT_LE(tl.attributed_ms(), wall_ms + 1.0);
  EXPECT_GE(tl.attributed_ms(), 0.9 * wall_ms - 1.0);
}

TEST(PhaseTimelineTest, EndIsIdempotentAndDetailPhasesExcluded) {
  PhaseTimeline tl;
  PhaseScope s(&tl, Phase::kPlan);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  s.End();
  double after_first = tl.phase_ms(Phase::kPlan);
  EXPECT_GT(after_first, 0.0);
  s.End();  // no double charge
  EXPECT_DOUBLE_EQ(tl.phase_ms(Phase::kPlan), after_first);
  // Detail phases never count toward the attributed (root) sum.
  tl.Add(Phase::kQueueInteractive, 50'000'000);
  EXPECT_DOUBLE_EQ(tl.attributed_ms(), after_first);
  EXPECT_FALSE(IsRootPhase(Phase::kQueueInteractive));
  EXPECT_TRUE(IsRootPhase(Phase::kLadder));
}

TEST(PhaseTimelineTest, ToStringCarriesVerdict) {
  PhaseTimeline tl;
  tl.Add(Phase::kCacheLookup, 1'500'000);  // 1.5ms
  tl.SetRung(2);
  tl.SetOutcome("derived");
  std::string s = tl.ToString();
  EXPECT_NE(s.find("cache_lookup=1.500ms"), std::string::npos) << s;
  EXPECT_NE(s.find("rung=2"), std::string::npos) << s;
  EXPECT_NE(s.find("outcome=derived"), std::string::npos) << s;
  EXPECT_EQ(s.find("execution"), std::string::npos) << s;  // zero: omitted
}

TEST(PhaseTimelineTest, KillSwitchDropsTimelineFromNewContexts) {
  ASSERT_TRUE(PhaseTimeline::Enabled());
  ExecContext with;
  EXPECT_NE(with.timeline(), nullptr);
  PhaseTimeline::SetEnabled(false);
  ExecContext without;
  EXPECT_EQ(without.timeline(), nullptr);
  {
    // Scopes on a null timeline are inert, not crashes.
    PhaseScope s(without.timeline(), Phase::kExecution);
  }
  PhaseTimeline::SetEnabled(true);
  ExecContext restored;
  EXPECT_NE(restored.timeline(), nullptr);
  // Background contexts never carry a timeline.
  EXPECT_EQ(ExecContext::Background().timeline(), nullptr);
}

// --- SloMonitor ---

TEST(SloMonitorTest, FiresOnSustainedBadTrafficOnly) {
  SloMonitorOptions opt;
  opt.threshold_ms = 100.0;
  opt.target = 0.9;
  opt.min_requests_to_fire = 20;
  SloMonitor good_monitor(opt);
  for (int i = 0; i < 50; ++i) good_monitor.Record(10.0);
  SloSnapshot healthy = good_monitor.Snapshot();
  EXPECT_EQ(healthy.total, 50);
  EXPECT_EQ(healthy.good, 50);
  EXPECT_FALSE(healthy.firing);
  EXPECT_DOUBLE_EQ(healthy.long_burn, 0.0);

  SloMonitor bad_monitor(opt);
  for (int i = 0; i < 50; ++i) bad_monitor.Record(500.0);  // all late
  SloSnapshot burning = bad_monitor.Snapshot();
  EXPECT_EQ(burning.good, 0);
  // All-bad traffic burns at 1.0 / (1 - 0.9) = 10x the budget rate.
  EXPECT_NEAR(burning.long_burn, 10.0, 0.01);
  EXPECT_TRUE(burning.firing);
}

TEST(SloMonitorTest, MinRequestFloorSuppressesBlips) {
  SloMonitorOptions opt;
  opt.min_requests_to_fire = 20;
  SloMonitor monitor(opt);
  for (int i = 0; i < 19; ++i) monitor.RecordBad();
  EXPECT_FALSE(monitor.Snapshot().firing) << "blip below the floor paged";
  monitor.RecordBad();
  EXPECT_TRUE(monitor.Snapshot().firing);
}

TEST(SloMonitorTest, ShedsAreTrackedOutsideTheSlo) {
  SloMonitor monitor;
  for (int i = 0; i < 100; ++i) monitor.RecordShed();
  SloSnapshot snap = monitor.Snapshot();
  EXPECT_EQ(snap.sheds, 100);
  EXPECT_EQ(snap.total, 0);
  EXPECT_FALSE(snap.firing)
      << "typed sheds must not burn the SLO budget";
  monitor.Reset();
  SloSnapshot fresh = monitor.Snapshot();
  EXPECT_EQ(fresh.sheds, 0);
  EXPECT_EQ(fresh.total, 0);
}

// --- TailExemplarStore ---

TEST(TailExemplarStoreTest, KeepsSlowestAndShedLanes) {
  TailExemplarOptions opt;
  opt.top_k = 2;
  opt.shed_k = 1;
  TailExemplarStore store(opt);
  for (int i = 1; i <= 5; ++i) {
    ExecContext ctx = MakeTracedWork("req" + std::to_string(i));
    store.Offer(ctx, ctx.trace()->root(), "req:" + std::to_string(i),
                static_cast<double>(10 * i), "content", /*shed=*/false);
  }
  // A fast request no longer competes once the lane is full of slower ones.
  EXPECT_FALSE(store.WouldAdmit(1.0));
  EXPECT_TRUE(store.WouldAdmit(100.0));
  {
    ExecContext ctx;  // no spans: the store synthesizes a root span
    store.Offer(ctx, nullptr, "shed:zone", 3.0, "shed", /*shed=*/true);
  }
  std::vector<Exemplar> kept = store.Snapshot();
  ASSERT_EQ(kept.size(), 3u);  // top_k slow + 1 shed
  EXPECT_EQ(kept[0].request.name, "req:5");  // slowest first
  EXPECT_DOUBLE_EQ(kept[0].duration_ms, 50.0);
  EXPECT_EQ(kept[1].request.name, "req:4");
  EXPECT_TRUE(kept[2].shed);
  EXPECT_GE(kept[2].request.root.TotalSpans(), 1);
  EXPECT_DOUBLE_EQ(store.Slowest().duration_ms, 50.0);
  EXPECT_EQ(store.total_offered(), 6);
  // Lifetime admissions: every content offer won a slot when it arrived
  // (each displaced a then-faster one), plus the shed.
  EXPECT_EQ(store.total_retained(), 6);

  int n = 0;
  Status valid = ValidateChromeTrace(store.ToChromeTrace(), &n);
  EXPECT_TRUE(valid.ok()) << valid;
  EXPECT_GT(n, 0);

  store.Clear();
  EXPECT_TRUE(store.Snapshot().empty());
  EXPECT_DOUBLE_EQ(store.Slowest().duration_ms, 0.0);
}

TEST(TailExemplarStoreTest, TimelineTextRidesAlong) {
  TailExemplarStore store;
  ExecContext ctx;
  ASSERT_NE(ctx.timeline(), nullptr);
  ctx.timeline()->Add(Phase::kExecution, 42'000'000);
  store.Offer(ctx, nullptr, "req:tl", 42.0, "content", /*shed=*/false);
  std::vector<Exemplar> kept = store.Snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_NE(kept[0].timeline_text.find("execution=42.000ms"),
            std::string::npos)
      << kept[0].timeline_text;
}

TEST(TailExemplarStoreTest, MinDurationFloorFiltersFastRequests) {
  TailExemplarOptions opt;
  opt.min_duration_ms = 25.0;
  TailExemplarStore store(opt);
  EXPECT_FALSE(store.WouldAdmit(10.0));
  ExecContext fast;
  store.Offer(fast, nullptr, "req:fast", 10.0, "content", false);
  ExecContext slow;
  store.Offer(slow, nullptr, "req:slow", 30.0, "content", false);
  std::vector<Exemplar> kept = store.Snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].request.name, "req:slow");
}

// A traced scatter/gather batch retains its per-node RPC spans: the
// retrying channel opens an "rpc:<node>" span per attempt under the
// caller's trace, so a tail exemplar of a clustered request shows WHICH
// nodes the gather waited on, not just that it was slow.
TEST(TailExemplarStoreTest, ClusterBatchTraceCarriesPerNodeRpcSpans) {
  auto db = vizq::testing::MakeTestDatabase(512);
  auto backend = std::make_shared<federation::TdeDataSource>("tde", db);
  cluster::ClusterOptions copts;
  copts.num_nodes = 3;
  copts.transport.net.simulate_latency = false;
  copts.shared_tier.net.simulate_latency = false;
  cluster::ClusterCoordinator coord(copts);
  std::vector<std::string> views;
  for (int s = 0; s < 4; ++s) {
    cluster::SourceSpec spec;
    spec.view.name = "obs" + std::to_string(s);
    spec.view.fact_table = "sales";
    spec.backend = backend;
    ASSERT_TRUE(coord.Publish(spec).ok());
    views.push_back(spec.view.name);
  }
  std::vector<AbstractQuery> batch;
  for (const auto& view : views) {
    batch.push_back(QueryBuilder("tde", view).Dim("region").Build());
  }

  ExecContext ctx;  // traced by default
  ASSERT_NE(ctx.trace(), nullptr);
  auto results = coord.ExecuteBatch(ctx, batch, {}, nullptr);
  ASSERT_TRUE(results.ok()) << results.status();

  TailExemplarStore store;
  store.Offer(ctx, ctx.trace()->root(), "req:cluster", 12.0, "content",
              /*shed=*/false);
  std::string trace = store.ToChromeTrace();
  int n = 0;
  ASSERT_TRUE(ValidateChromeTrace(trace, &n).ok());
  // Every node that owns one of the batch's views shows up as an rpc span.
  std::set<std::string> owners;
  for (const auto& view : views) owners.insert(coord.OwnerOf(view));
  EXPECT_GE(owners.size(), 2u);  // the batch actually scattered
  for (const auto& owner : owners) {
    EXPECT_NE(trace.find("rpc:" + owner), std::string::npos)
        << "missing rpc span for " << owner << " in:\n"
        << trace;
  }
}

// --- PlanProfileRegistry ---

TEST(PlanProfileRegistryTest, ProfilesKeyedBySignature) {
  PlanProfileRegistry registry;
  for (int i = 0; i < 10; ++i) {
    registry.Record("Aggregate(Scan t)", 10.0 + i);
  }
  registry.Record("Join(Scan a,Scan b)", 100.0);
  registry.Record("", 5.0);  // empty signature: dropped
  std::vector<PlanProfileRegistry::Profile> profiles = registry.Snapshot();
  ASSERT_EQ(profiles.size(), 2u);
  // Most-executed first.
  EXPECT_EQ(profiles[0].signature, "Aggregate(Scan t)");
  EXPECT_EQ(profiles[0].count, 10);
  EXPECT_LE(profiles[0].p50_ms, profiles[0].p95_ms);
  EXPECT_LE(profiles[0].p95_ms, profiles[0].p99_ms);
  EXPECT_GE(profiles[0].min_ms, 9.9);
  EXPECT_LE(profiles[0].max_ms, 19.1);
  EXPECT_EQ(profiles[1].count, 1);

  auto parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* plans = parsed->Find("plans");
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ(plans->array().size(), 2u);

  registry.Reset();
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(PlanProfileRegistryTest, EngineFeedsGlobalRegistry) {
  GlobalPlanProfiles().Reset();
  FaaFixture fx;
  BatchOptions opts;
  opts.use_intelligent_cache = false;
  opts.use_literal_cache = false;
  AbstractQuery q = QueryBuilder("faa", workload::kFlightsView)
                        .Dim("carrier")
                        .CountAll("flights")
                        .Build();
  ExecContext ctx;
  auto result = fx.service->ExecuteQuery(ctx, q, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  std::vector<PlanProfileRegistry::Profile> profiles =
      GlobalPlanProfiles().Snapshot();
  ASSERT_FALSE(profiles.empty());
  bool found = false;
  for (const auto& p : profiles) {
    if (p.signature.find("Aggregate") != std::string::npos &&
        p.signature.find("Scan") != std::string::npos) {
      found = true;
      EXPECT_GT(p.count, 0);
    }
  }
  EXPECT_TRUE(found) << "no Aggregate-over-Scan shape recorded";
}

}  // namespace
}  // namespace vizq::obs
