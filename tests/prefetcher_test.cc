// Prefetcher tests (§7 future-work extension): speculation warms the
// shared cache so a predicted interaction refreshes without any remote
// query.

#include "src/dashboard/prefetcher.h"

#include <gtest/gtest.h>

#include "src/federation/data_source.h"
#include "src/workload/faa_generator.h"
#include "src/workload/flights_dashboards.h"

namespace vizq::dashboard {
namespace {

class PrefetcherTest : public ::testing::Test {
 protected:
  PrefetcherTest() {
    workload::FaaOptions faa;
    faa.num_flights = 20000;
    auto db = workload::GenerateFaaDatabase(faa);
    EXPECT_TRUE(db.ok());
    source_ = std::make_shared<federation::TdeDataSource>("faa", *db);
    caches_ = std::make_shared<CacheStack>();
    service_ = std::make_unique<QueryService>(source_, caches_);
    EXPECT_TRUE(service_->RegisterView(workload::FlightsStarView()).ok());
  }

  std::shared_ptr<federation::TdeDataSource> source_;
  std::shared_ptr<CacheStack> caches_;
  std::unique_ptr<QueryService> service_;
};

TEST_F(PrefetcherTest, PredictedSelectionIsServedFromCache) {
  Dashboard dash = workload::BuildFigure2Dashboard("faa");
  DashboardRenderer renderer(service_.get());
  InteractionState state;
  BatchOptions options;

  auto load = renderer.Render(dash, &state, options);
  ASSERT_TRUE(load.ok()) << load.status();

  Prefetcher prefetcher(service_.get());
  int scheduled =
      prefetcher.PrefetchAfterRender(dash, state, *load, options);
  EXPECT_GT(scheduled, 0);
  prefetcher.Wait();

  // The user clicks the top market — exactly what the prefetcher
  // speculated on. The refresh must be all cache hits.
  const ResultTable& markets = load->zone_results.at("Market");
  state.Select("Market", "market", {markets.at(0, 0)});
  auto refresh =
      renderer.Refresh(dash, &state, dash.ActionTargets("Market"), options);
  ASSERT_TRUE(refresh.ok()) << refresh.status();
  ASSERT_FALSE(refresh->batches.empty());
  EXPECT_EQ(refresh->batches[0].remote_queries, 0)
      << refresh->batches[0].Summary();
}

TEST_F(PrefetcherTest, UnpredictedSelectionStillWorks) {
  Dashboard dash = workload::BuildFigure2Dashboard("faa");
  DashboardRenderer renderer(service_.get());
  InteractionState state;
  BatchOptions options;
  auto load = renderer.Render(dash, &state, options);
  ASSERT_TRUE(load.ok());

  Prefetcher prefetcher(service_.get());
  prefetcher.PrefetchAfterRender(dash, state, *load, options);
  prefetcher.Wait();

  // Select a market beyond the speculation horizon: correctness unharmed.
  const ResultTable& markets = load->zone_results.at("Market");
  ASSERT_GT(markets.num_rows(), 5);
  state.Select("Market", "market", {markets.at(5, 0)});
  auto refresh =
      renderer.Refresh(dash, &state, dash.ActionTargets("Market"), options);
  ASSERT_TRUE(refresh.ok()) << refresh.status();
  EXPECT_GT(refresh->zone_results.at("AirlineName").num_rows(), 0);
}

TEST_F(PrefetcherTest, RespectsQueryBudget) {
  Dashboard dash = workload::BuildFigure1Dashboard("faa");
  DashboardRenderer renderer(service_.get());
  InteractionState state;
  BatchOptions options;
  auto load = renderer.Render(dash, &state, options);
  ASSERT_TRUE(load.ok());

  PrefetchOptions popts;
  popts.max_queries = 3;
  Prefetcher prefetcher(service_.get(), popts);
  int scheduled =
      prefetcher.PrefetchAfterRender(dash, state, *load, options);
  EXPECT_LE(scheduled, 3);
  prefetcher.Wait();
}

TEST_F(PrefetcherTest, NothingToSpeculateOnIsFine) {
  Dashboard dash("empty");
  Zone z;
  z.name = "solo";
  z.base = query::QueryBuilder("faa", workload::kFlightsView)
               .Dim("carrier")
               .CountAll("n")
               .Build();
  ASSERT_TRUE(dash.AddZone(std::move(z)).ok());  // no actions
  DashboardRenderer renderer(service_.get());
  InteractionState state;
  auto load = renderer.Render(dash, &state, BatchOptions());
  ASSERT_TRUE(load.ok());
  Prefetcher prefetcher(service_.get());
  EXPECT_EQ(
      prefetcher.PrefetchAfterRender(dash, state, *load, BatchOptions()), 0);
}

}  // namespace
}  // namespace vizq::dashboard
