// Deterministic coverage of the million-user traffic stack: the session
// navigation machine (dashboard-open -> filter -> drill, exponential think
// time, Zipfian workbook popularity), the cache freshness/staleness
// labeling the load-shed ladder depends on, fair admission (greedy vs
// polite, with a revert-verify pass that disables fairness to prove the
// mechanism is what produces the bound), the scheduler's per-session queue
// cap, and shed-under-cancel ticket hygiene (the TSan stress target).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/intelligent_cache.h"
#include "src/common/rng.h"
#include "src/common/scheduler.h"
#include "src/dashboard/query_service.h"
#include "src/federation/data_source.h"
#include "src/federation/simulated_source.h"
#include "src/server/admission.h"
#include "src/server/frontend.h"
#include "src/workload/sessions.h"
#include "tests/test_util.h"

namespace vizq {
namespace {

using cache::CacheHit;
using cache::IntelligentCache;
using cache::IntelligentCacheOptions;
using cache::LookupOptions;
using cache::MissReason;
using dashboard::BatchOptions;
using dashboard::CacheStack;
using dashboard::QueryService;
using query::AbstractQuery;
using query::QueryBuilder;
using server::AdmissionController;
using server::AdmissionDecision;
using server::AdmissionOptions;
using server::Frontend;
using server::FrontendOptions;
using server::ServeOutcome;
using server::ServeReport;
using workload::BuildWorkbookSet;
using workload::SampleThinkMs;
using workload::Session;
using workload::SessionAction;
using workload::SessionProfile;
using workload::Workbook;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------------------
// Session navigation machine.

TEST(TrafficSessionTest, DeterministicPerSeed) {
  auto workbooks = BuildWorkbookSet("sim", 4);
  ASSERT_EQ(workbooks.size(), 4u);
  for (const Workbook& wb : workbooks) {
    Session a(7, &wb, {}, 1234), b(7, &wb, {}, 1234);
    for (int i = 0; i < 16; ++i) {
      auto sa = a.Next(), sb = b.Next();
      ASSERT_EQ(sa.has_value(), sb.has_value()) << wb.name << " step " << i;
      if (!sa.has_value()) break;
      EXPECT_EQ(sa->action, sb->action);
      EXPECT_EQ(sa->zone, sb->zone);
      EXPECT_EQ(sa->column, sb->column);
      EXPECT_EQ(sa->think_ms, sb->think_ms);
      EXPECT_EQ(sa->dirty_zones, sb->dirty_zones);
    }
  }
  // A different seed explores differently (same workbook, same profile).
  Session a(7, &workbooks[0], {}, 1), b(7, &workbooks[0], {}, 2);
  bool diverged = false;
  for (int i = 0; i < 16 && !diverged; ++i) {
    auto sa = a.Next(), sb = b.Next();
    if (sa.has_value() != sb.has_value()) diverged = true;
    if (!sa.has_value() || !sb.has_value()) break;
    if (sa->action != sb->action || sa->zone != sb->zone ||
        sa->think_ms != sb->think_ms) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged) << "seeds 1 and 2 produced identical traces";
}

TEST(TrafficSessionTest, NavigationShapeIsValid) {
  auto workbooks = BuildWorkbookSet("sim", 2);
  for (const Workbook& wb : workbooks) {
    std::vector<std::string> zones = wb.dash.QueryZoneNames();
    ASSERT_FALSE(zones.empty());
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      SessionProfile profile;  // defaults: max_steps = 10
      Session s(seed, &wb, profile, seed);
      int steps = 0;
      bool first = true;
      while (auto step = s.Next()) {
        ++steps;
        ASSERT_LE(steps, profile.max_steps);
        if (first) {
          EXPECT_EQ(step->action, SessionAction::kOpen);
          EXPECT_EQ(step->think_ms, 0.0);
          // Opening a dashboard renders every query zone.
          EXPECT_EQ(step->dirty_zones, zones);
          first = false;
        } else {
          EXPECT_TRUE(step->action == SessionAction::kFilter ||
                      step->action == SessionAction::kDrill ||
                      step->action == SessionAction::kQuickFilter)
              << workload::SessionActionName(step->action);
          EXPECT_GE(step->think_ms, 0.0);
          EXPECT_FALSE(step->column.empty());
        }
        EXPECT_FALSE(step->dirty_zones.empty());
        for (const std::string& z : step->dirty_zones) {
          EXPECT_NE(wb.dash.FindZone(z), nullptr) << z;
        }
        auto batch = s.BuildBatch(*step);
        ASSERT_TRUE(batch.ok()) << batch.status();
        if (step->action == SessionAction::kOpen) {
          EXPECT_FALSE(batch->empty());
        }
        for (const AbstractQuery& q : *batch) {
          EXPECT_EQ(q.data_source, "sim");
        }
      }
      EXPECT_TRUE(s.done());
      EXPECT_GE(steps, 1);  // at least the open renders
    }
  }
}

TEST(TrafficSessionTest, ThinkTimeIsExponentialWithRequestedMean) {
  Rng rng(99);
  const double mean = 120.0;
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    double t = SampleThinkMs(rng, mean);
    ASSERT_GE(t, 0.0);
    sum += t;
  }
  double sample_mean = sum / n;
  // Exponential(120): the sample mean's std error is ~0.85ms at n=20000,
  // so [100, 140] is a many-sigma bound — deterministic given the seed.
  EXPECT_GT(sample_mean, 100.0);
  EXPECT_LT(sample_mean, 140.0);
  EXPECT_EQ(SampleThinkMs(rng, 0.0), 0.0);
}

TEST(TrafficSessionTest, ZipfWorkbookPopularityIsSkewedAndDeterministic) {
  const int n = 8;
  ZipfDistribution zipf_a(n, 1.2), zipf_b(n, 1.2);
  Rng rng_a(5), rng_b(5);
  std::vector<int> hist_a(n, 0), hist_b(n, 0);
  for (int i = 0; i < 20000; ++i) {
    ++hist_a[zipf_a.Sample(rng_a)];
    ++hist_b[zipf_b.Sample(rng_b)];
  }
  EXPECT_EQ(hist_a, hist_b);
  // Head much hotter than tail — the cache-sharing skew the harness needs.
  EXPECT_GT(hist_a[0], 2 * hist_a[n - 1]);
  EXPECT_GT(hist_a[0], hist_a[n / 2]);
}

// ---------------------------------------------------------------------------
// Cache freshness: the labeling contract rungs 1-2 of the ladder rely on.

// Ground-truth executor over the shared test database, no caching.
class TruthEnv {
 public:
  TruthEnv()
      : source_(std::make_shared<federation::TdeDataSource>(
            "tde", vizq::testing::MakeTestDatabase(8192))),
        truth_service_(source_, nullptr) {
    (void)truth_service_.RegisterTableView("sales");
  }

  ResultTable Truth(const AbstractQuery& q) {
    BatchOptions opts;
    opts.use_intelligent_cache = false;
    opts.use_literal_cache = false;
    opts.fuse_queries = false;
    opts.analyze_batch = false;
    opts.adjust.decompose_avg = false;
    auto result = truth_service_.ExecuteQuery(q, opts);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : ResultTable();
  }

 private:
  std::shared_ptr<federation::DataSource> source_;
  QueryService truth_service_;
};

TEST(TrafficStaleCacheTest, FreshTtlLabelsAgeAndBoundsStaleness) {
  TruthEnv env;
  IntelligentCacheOptions opts;
  opts.fresh_ttl_ms = 40.0;
  IntelligentCache cache(opts);
  auto q = QueryBuilder("tde", "sales")
               .Dim("region")
               .Agg(AggFunc::kSum, "units", "total")
               .Build();
  cache.Put(q, env.Truth(q), 10.0);

  auto fresh = cache.LookupHit(q);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->stale);
  EXPECT_LT(fresh->age_ms, 40.0);

  SleepMs(80);  // monotonic age crosses the TTL — a threshold, not a race

  // Default (fresh-only) lookup now misses, with the stale reason counted.
  EXPECT_FALSE(cache.LookupHit(q).has_value());
  auto stats = cache.stats();
  EXPECT_GE(stats.miss_reasons[static_cast<int>(MissReason::kEntryStale)], 1);

  // A stale-tolerant lookup serves the entry, LABELED with its real age.
  LookupOptions tolerant;
  tolerant.max_age_ms = 10000.0;
  auto stale = cache.LookupHit(q, ExecContext::Background(), tolerant);
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->stale);
  EXPECT_GT(stale->age_ms, 40.0);
  EXPECT_LT(stale->age_ms, 10000.0);
  EXPECT_GE(cache.stats().stale_hits, 1);

  // The bound binds: an entry older than max_age_ms stays a miss.
  LookupOptions bounded;
  bounded.max_age_ms = 50.0;  // entry is ~80ms old by now
  EXPECT_FALSE(
      cache.LookupHit(q, ExecContext::Background(), bounded).has_value());
}

TEST(TrafficStaleCacheTest, ExactOnlySkipsSubsumption) {
  TruthEnv env;
  IntelligentCache cache;  // ttl 0: entries never go stale
  auto stored = QueryBuilder("tde", "sales")
                    .Dim("region")
                    .Dim("product")
                    .Agg(AggFunc::kSum, "units", "total")
                    .Build();
  auto rollup = QueryBuilder("tde", "sales")
                    .Dim("region")
                    .Agg(AggFunc::kSum, "units", "total")
                    .Build();
  cache.Put(stored, env.Truth(stored), 10.0);

  // The roll-up is derivable from the finer stored result...
  auto derived = cache.LookupHit(rollup);
  ASSERT_TRUE(derived.has_value());
  EXPECT_FALSE(derived->exact);

  // ...but rung 1 of the ladder asks for exact entries only.
  LookupOptions exact_only;
  exact_only.exact_only = true;
  EXPECT_FALSE(
      cache.LookupHit(rollup, ExecContext::Background(), exact_only)
          .has_value());
  auto exact = cache.LookupHit(stored, ExecContext::Background(), exact_only);
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(exact->exact);
}

// ---------------------------------------------------------------------------
// Fair admission: greedy vs polite, deterministically.

TEST(TrafficAdmissionTest, SessionCapClipsGreedyAndRevertVerifies) {
  AdmissionOptions opts;
  opts.fair = true;
  opts.max_global_inflight = 8;
  opts.max_session_inflight = 2;
  AdmissionController ctrl(opts);

  // A greedy session fires 6 concurrent requests: exactly the cap admits.
  std::vector<AdmissionController::Ticket> greedy(6);
  int admitted = 0, degraded = 0;
  for (int i = 0; i < 6; ++i) {
    std::string reason;
    if (ctrl.Admit(1, &greedy[i], &reason) == AdmissionDecision::kAdmit) {
      ++admitted;
    } else {
      ++degraded;
      EXPECT_EQ(reason, "session_inflight");
    }
  }
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(degraded, 4);

  // A polite session is untouched by the greedy one's pressure.
  AdmissionController::Ticket polite;
  EXPECT_EQ(ctrl.Admit(2, &polite), AdmissionDecision::kAdmit);
  EXPECT_EQ(ctrl.stats().peak_session_inflight, 2);
  EXPECT_EQ(ctrl.stats().degraded_session, 4);

  // Revert-verify: with fairness off the SAME greedy pattern swallows the
  // whole global cap, and the polite session is the one degraded — the
  // fairness mechanism, not luck, is what produced the bound above.
  ctrl.set_fair(false);
  std::vector<AdmissionController::Ticket> unfair(8);
  int unfair_admits = 0;
  for (int i = 0; i < 8; ++i) {
    if (ctrl.Admit(1, &unfair[i]) == AdmissionDecision::kAdmit) {
      ++unfair_admits;
    }
  }
  EXPECT_EQ(unfair_admits, 5);  // 3 already in flight (2 greedy + 1 polite)
  EXPECT_EQ(ctrl.stats().peak_session_inflight, 7);  // greedy holds 2 + 5
  AdmissionController::Ticket late_polite;
  std::string reason;
  EXPECT_EQ(ctrl.Admit(3, &late_polite, &reason),
            AdmissionDecision::kDegrade);
  EXPECT_EQ(reason, "global_inflight");

  for (auto& t : greedy) t.Release();
  for (auto& t : unfair) t.Release();
  polite.Release();
  EXPECT_EQ(ctrl.stats().inflight, 0);
}

TEST(TrafficAdmissionTest, CreditBucketThrottlesTightLoops) {
  AdmissionOptions opts;
  opts.fair = true;
  opts.max_global_inflight = -1;   // unlimited
  opts.max_session_inflight = 0;   // unlimited
  opts.credits_per_s = 0.001;      // effectively no refill within the test
  opts.credit_burst = 2.0;
  AdmissionController ctrl(opts);

  // Releasing the ticket does not refund the credit: a tight loop burns
  // its burst even though it never holds two requests at once.
  for (int i = 0; i < 2; ++i) {
    AdmissionController::Ticket t;
    EXPECT_EQ(ctrl.Admit(5, &t), AdmissionDecision::kAdmit) << i;
  }
  AdmissionController::Ticket t;
  std::string reason;
  EXPECT_EQ(ctrl.Admit(5, &t, &reason), AdmissionDecision::kDegrade);
  EXPECT_EQ(reason, "credits");
  EXPECT_EQ(ctrl.stats().degraded_credits, 1);

  // Sessionless requests (id 0) are exempt from per-session fairness.
  for (int i = 0; i < 8; ++i) {
    AdmissionController::Ticket s;
    EXPECT_EQ(ctrl.Admit(0, &s), AdmissionDecision::kAdmit);
  }
}

TEST(TrafficAdmissionTest, DisabledAdmitsEverythingZeroCapAdmitsNothing) {
  AdmissionOptions off;
  off.enabled = false;
  off.max_global_inflight = 0;
  AdmissionController disabled(off);
  std::vector<AdmissionController::Ticket> held(20);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(disabled.Admit(1, &held[i]), AdmissionDecision::kAdmit);
  }

  AdmissionOptions zero;
  zero.max_global_inflight = 0;  // the stale_shed lane's overload injection
  AdmissionController saturated(zero);
  AdmissionController::Ticket t;
  std::string reason;
  EXPECT_EQ(saturated.Admit(1, &t, &reason), AdmissionDecision::kDegrade);
  EXPECT_EQ(reason, "global_inflight");
  EXPECT_FALSE(t.admitted());
}

// ---------------------------------------------------------------------------
// Scheduler per-session queue cap (what admission degrades fall back on).

// Holds the scheduler's only worker busy until Release(), so the test can
// stage a queue deterministically (same helper shape as scheduler_test).
class WorkerGate {
 public:
  explicit WorkerGate(Scheduler* sched) {
    Status s = sched->Submit(TaskClass::kInteractive, [this] {
      std::unique_lock<std::mutex> lock(mu_);
      running_ = true;
      running_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::unique_lock<std::mutex> lock(mu_);
    running_cv_.wait(lock, [this] { return running_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable running_cv_, release_cv_;
  bool running_ = false;
  bool released_ = false;
};

TEST(TrafficSchedulerTest, PerSessionQueueCapShedsTyped) {
  SchedulerOptions opts;
  opts.num_threads = 1;
  opts.max_queued_per_session = 2;
  Scheduler sched(opts);
  WorkerGate gate(&sched);

  std::atomic<int> ran{0};
  SubmitOptions session7;
  session7.session_id = 7;
  auto task = [&] { ran.fetch_add(1); };

  // The capped session queues up to its limit, then sheds typed.
  EXPECT_TRUE(sched.Submit(TaskClass::kInteractive, task,
                           ExecContext::Background(), session7)
                  .ok());
  EXPECT_TRUE(sched.Submit(TaskClass::kInteractive, task,
                           ExecContext::Background(), session7)
                  .ok());
  Status third = sched.Submit(TaskClass::kInteractive, task,
                              ExecContext::Background(), session7);
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(sched.session_queued(7), 2);
  EXPECT_EQ(sched.session_shed(), 1);

  // Sessionless work and other sessions are unaffected.
  EXPECT_TRUE(sched.Submit(TaskClass::kInteractive, task).ok());
  SubmitOptions session9;
  session9.session_id = 9;
  EXPECT_TRUE(sched.Submit(TaskClass::kInteractive, task,
                           ExecContext::Background(), session9)
                  .ok());

  gate.Release();
  EXPECT_TRUE(sched.WaitForCompleted(TaskClass::kInteractive, 5,
                                     std::chrono::seconds(10)));
  EXPECT_EQ(ran.load(), 4);  // the shed task never ran
  EXPECT_EQ(sched.session_queued(7), 0);
  EXPECT_EQ(sched.session_queued(9), 0);
}

// ---------------------------------------------------------------------------
// Frontend end-to-end: the ladder and fairness over a real serving stack.

struct ServingStack {
  std::shared_ptr<federation::SimulatedDataSource> source;
  std::shared_ptr<CacheStack> caches;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Frontend> frontend;
};

// A slow-ish simulated backend (tens of ms per uncached query) over the
// shared sales table, so admitted requests genuinely overlap in time.
ServingStack MakeServingStack(FrontendOptions fo, double fresh_ttl_ms) {
  ServingStack s;
  auto db = vizq::testing::MakeTestDatabase(8192);
  federation::PerformanceModel m;
  m.connect_ms = 1.0;
  m.dispatch_ms = 0.2;
  m.rows_per_ms = 300;  // ~27ms of scan per uncached query
  m.cpu_slots = 2;
  m.max_parallel_per_query = 1;
  m.network_rtt_ms = 0.1;
  query::Capabilities caps = query::Capabilities::SingleThreadedSql();
  caps.max_connections = 16;
  caps.max_concurrent_queries = 16;
  s.source = std::make_shared<federation::SimulatedDataSource>(
      "sim", db, m, caps, query::SqlDialect::MssqlLike());
  IntelligentCacheOptions iopts;
  iopts.fresh_ttl_ms = fresh_ttl_ms;
  s.caches = std::make_shared<CacheStack>(iopts);
  s.service = std::make_unique<QueryService>(s.source, s.caches);
  EXPECT_TRUE(s.service->RegisterTableView("sales").ok());
  s.frontend = std::make_unique<Frontend>(s.service.get(), fo);
  return s;
}

AbstractQuery PoliteQuery() {
  return QueryBuilder("sim", "sales")
      .Dim("region")
      .Agg(AggFunc::kSum, "units", "total")
      .Build();
}

// A query the cache has never seen: a distinct filter value per call.
AbstractQuery ColdQuery(int thread_id, int i) {
  return QueryBuilder("sim", "sales")
      .Dim("region")
      .Dim("product")
      .Agg(AggFunc::kSum, "units", "total")
      .FilterIn("product",
                {Value("p" + std::to_string(thread_id) + "_" +
                       std::to_string(i))})
      .Build();
}

TEST(TrafficFrontendTest, LadderServesBoundedStaleThenTypedShed) {
  FrontendOptions fo;
  fo.admission.enabled = true;
  fo.admission.max_global_inflight = 0;  // saturated: nothing admitted
  fo.stale_serve_ms = 10000.0;
  ServingStack s = MakeServingStack(fo, /*fresh_ttl_ms=*/40.0);

  // Warm the cache through the service directly (the frontend would shed).
  auto warm = s.service->ExecuteQuery(PoliteQuery(), {});
  ASSERT_TRUE(warm.ok()) << warm.status();
  SleepMs(80);  // entry ages past the TTL

  ServeReport report;
  auto res = s.frontend->Serve(1, ExecContext(), {PoliteQuery()}, &report);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(report.outcome, ServeOutcome::kStale);
  EXPECT_GT(report.max_age_ms, 40.0);
  EXPECT_LE(report.max_age_ms, 10000.0);
  EXPECT_NE(report.degrade_reason.find("global_inflight"), std::string::npos);
  ASSERT_EQ(res->size(), 1u);
  EXPECT_TRUE(ResultTable::SameUnordered((*res)[0], *warm));

  // A query with no cache answer within the bound sheds, typed.
  ServeReport shed_report;
  auto shed = s.frontend->Serve(1, ExecContext(), {ColdQuery(0, 0)},
                                &shed_report);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed_report.outcome, ServeOutcome::kShed);
  EXPECT_EQ(s.frontend->stats().shed, 1);
  EXPECT_EQ(s.frontend->stats().stale, 1);
  EXPECT_EQ(s.frontend->admission().stats().inflight, 0);
}

TEST(TrafficFrontendTest, FairAdmissionShieldsPoliteSessionFromGreedyLoad) {
  FrontendOptions fo;
  fo.admission.enabled = true;
  fo.admission.fair = true;
  fo.admission.max_global_inflight = 8;
  fo.admission.max_session_inflight = 2;
  fo.stale_serve_ms = 10000.0;
  ServingStack s = MakeServingStack(fo, /*fresh_ttl_ms=*/0.0);

  auto warm = s.service->ExecuteQuery(PoliteQuery(), {});
  ASSERT_TRUE(warm.ok()) << warm.status();

  constexpr int kGreedyThreads = 3;
  constexpr int kGreedyRequests = 8;
  std::atomic<bool> go{false};
  std::vector<std::thread> greedy;
  for (int t = 0; t < kGreedyThreads; ++t) {
    greedy.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kGreedyRequests; ++i) {
        ServeReport r;
        (void)s.frontend->Serve(1, ExecContext::WithDeadlineMs(5000),
                                {ColdQuery(t, i)}, &r);
      }
    });
  }

  // The polite session interleaves with the greedy burst: every one of its
  // requests must be admitted (degrade_reason empty => rung 0) because the
  // greedy session can hold at most 2 of the 8 global slots.
  int polite_ok = 0;
  std::atomic<bool> polite_done{false};
  std::thread polite([&] {
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 12; ++i) {
      ServeReport r;
      auto res = s.frontend->Serve(2, ExecContext::WithDeadlineMs(5000),
                                   {PoliteQuery()}, &r);
      if (res.ok() && r.degrade_reason.empty()) ++polite_ok;
      SleepMs(5);
    }
    polite_done.store(true);
  });
  go.store(true);
  polite.join();
  for (auto& t : greedy) t.join();
  EXPECT_TRUE(polite_done.load());
  EXPECT_EQ(polite_ok, 12);

  auto stats = s.frontend->admission().stats();
  // The fairness invariant: no session ever held more than its cap.
  EXPECT_LE(stats.peak_session_inflight, 2);
  // The greedy session actually hit the cap (its requests overlap for tens
  // of milliseconds of simulated backend time each).
  EXPECT_GE(stats.degraded_session, 1);
  EXPECT_EQ(stats.inflight, 0) << "admission tickets leaked";

  // Revert-verify at the stack level: with fairness off the same burst
  // drives one session's concurrency past the per-session cap.
  s.frontend->admission().set_fair(false);
  std::atomic<bool> go2{false};
  std::vector<std::thread> unfair;
  for (int t = 0; t < kGreedyThreads; ++t) {
    unfair.emplace_back([&, t] {
      while (!go2.load()) std::this_thread::yield();
      for (int i = 0; i < kGreedyRequests; ++i) {
        ServeReport r;
        (void)s.frontend->Serve(1, ExecContext::WithDeadlineMs(5000),
                                {ColdQuery(100 + t, i)}, &r);
      }
    });
  }
  go2.store(true);
  for (auto& t : unfair) t.join();
  EXPECT_GT(s.frontend->admission().stats().peak_session_inflight, 2);
  EXPECT_EQ(s.frontend->admission().stats().inflight, 0);
}

// Shed-under-cancel stress (the TSan target): cancelled and expired
// requests racing saturated admission must classify cleanly and leak
// nothing — no stuck in-flight tickets, no stranded session queue claims.
TEST(TrafficFrontendTest, ShedUnderCancelLeaksNothing) {
  FrontendOptions fo;
  fo.admission.enabled = true;
  fo.admission.fair = true;
  fo.admission.max_global_inflight = 2;  // heavily saturated
  fo.admission.max_session_inflight = 1;
  fo.stale_serve_ms = 5000.0;
  ServingStack s = MakeServingStack(fo, /*fresh_ttl_ms=*/0.0);
  auto warm = s.service->ExecuteQuery(PoliteQuery(), {});
  ASSERT_TRUE(warm.ok()) << warm.status();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  std::atomic<int64_t> served{0}, failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Rotate patience: already-expired deadlines, deadlines that expire
        // mid-flight, and healthy ones — all racing the admission caps.
        ExecContext ctx = i % 3 == 0   ? ExecContext::WithDeadlineMs(0.01)
                          : i % 3 == 1 ? ExecContext::WithDeadlineMs(8)
                                       : ExecContext::WithDeadlineMs(5000);
        if (i % 3 == 0) SleepMs(1);  // guarantee the deadline is spent
        ServeReport r;
        auto res = s.frontend->Serve(
            static_cast<uint64_t>(t + 1), ctx,
            {i % 2 == 0 ? PoliteQuery() : ColdQuery(t, i)}, &r);
        (res.ok() ? served : failed).fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every request terminated with a classified outcome...
  auto fs = s.frontend->stats();
  EXPECT_EQ(fs.fresh + fs.stale + fs.derived + fs.shed + fs.errors,
            kThreads * kPerThread);
  EXPECT_EQ(served.load() + failed.load(), kThreads * kPerThread);
  // ...and nothing leaked: no in-flight admission tickets, no stranded
  // per-session queue claims in the global scheduler.
  EXPECT_EQ(s.frontend->admission().stats().inflight, 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(Scheduler::Global().session_queued(
                  static_cast<uint64_t>(t + 1)),
              0)
        << "session " << t + 1;
  }
}

}  // namespace
}  // namespace vizq
