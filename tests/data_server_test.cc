// Data Server tests (§5): publishing, metadata, shared calculations,
// row-level permissions, temp tables and shared temp definitions.

#include "src/server/data_server.h"

#include <gtest/gtest.h>

#include "src/federation/data_source.h"
#include "tests/test_util.h"

namespace vizq::server {
namespace {

using query::AbstractQuery;
using query::QueryBuilder;

class DataServerTest : public ::testing::Test {
 protected:
  DataServerTest() {
    backend_ = std::make_shared<federation::TdeDataSource>(
        "backend", vizq::testing::MakeTestDatabase(8192));
    PublishedDataSource source;
    source.name = "SalesAnalytics";
    source.view.fact_table = "sales";
    source.view.joins.push_back(
        query::ViewJoin{"products", "product", "name", true});
    // A shared calculation: total units, defined once (§5.2).
    source.calculations["Total Units"] =
        query::Measure{AggFunc::kSum, "units", ""};
    // Row-level security: east_rep only sees the East region.
    query::PredicateSet east_only;
    east_only.predicates.push_back(
        query::ColumnPredicate::InSet("region", {Value("East")}));
    source.permissions.SetUserFilter("east_rep", std::move(east_only));
    EXPECT_TRUE(server_.Publish(std::move(source), backend_).ok());
  }

  std::shared_ptr<federation::TdeDataSource> backend_;
  DataServer server_;
};

TEST_F(DataServerTest, ConnectReturnsMetadata) {
  auto session = server_.Connect("alice", "SalesAnalytics");
  ASSERT_TRUE(session.ok()) << session.status();
  const SourceMetadata& md = (*session)->metadata();
  EXPECT_EQ(md.source_name, "SalesAnalytics");
  EXPECT_GT(md.columns.size(), 4u);  // fact + dim columns
  ASSERT_EQ(md.calculation_names.size(), 1u);
  EXPECT_EQ(md.calculation_names[0], "Total Units");
  EXPECT_TRUE(md.supports_temp_tables);
}

TEST_F(DataServerTest, UnknownSourceFails) {
  EXPECT_FALSE(server_.Connect("alice", "Nope").ok());
}

TEST_F(DataServerTest, QueriesRunThroughTheProxy) {
  auto session = server_.Connect("alice", "SalesAnalytics");
  ASSERT_TRUE(session.ok());
  ClientQuery cq;
  cq.query = QueryBuilder("", "")
                 .Dim("region")
                 .Agg(AggFunc::kSum, "units", "total")
                 .Build();
  auto result = (*session)->Query(cq);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 4);
}

TEST_F(DataServerTest, SharedCalculationExpands) {
  auto session = server_.Connect("alice", "SalesAnalytics");
  ASSERT_TRUE(session.ok());
  ClientQuery cq;
  // Reference the published calculation by name.
  cq.query.dimensions = {"region"};
  cq.query.measures.push_back(
      query::Measure{AggFunc::kSum, "Total Units", "tu"});
  auto result = (*session)->Query(cq);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_columns(), 2);
  EXPECT_EQ(result->columns()[1].name, "tu");
}

TEST_F(DataServerTest, RowLevelPermissionsRestrictResults) {
  auto alice = server_.Connect("alice", "SalesAnalytics");
  auto east = server_.Connect("east_rep", "SalesAnalytics");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(east.ok());

  ClientQuery cq;
  cq.query = QueryBuilder("", "").Dim("region").CountAll("n").Build();
  auto full = (*alice)->Query(cq);
  auto restricted = (*east)->Query(cq);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(full->num_rows(), 4);
  ASSERT_EQ(restricted->num_rows(), 1);
  EXPECT_EQ(restricted->at(0, 0).string_value(), "East");

  // The user cannot widen their own access: an explicit filter for West
  // intersects with the East-only policy, yielding nothing.
  ClientQuery sneaky;
  sneaky.query = QueryBuilder("", "")
                     .Dim("region")
                     .CountAll("n")
                     .FilterIn("region", {Value("West")})
                     .Build();
  auto denied = (*east)->Query(sneaky);
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->num_rows(), 0);
}

TEST_F(DataServerTest, DenyUnlistedUsersPolicy) {
  PublishedDataSource locked;
  locked.name = "Locked";
  locked.view.fact_table = "sales";
  locked.permissions.set_deny_unlisted_users(true);
  query::PredicateSet all;
  locked.permissions.SetUserFilter("boss", std::move(all));
  ASSERT_TRUE(server_.Publish(std::move(locked), backend_).ok());
  EXPECT_FALSE(server_.Connect("intruder", "Locked").ok());
  EXPECT_TRUE(server_.Connect("boss", "Locked").ok());
}

TEST_F(DataServerTest, TempTablesReduceClientTraffic) {
  auto session = server_.Connect("alice", "SalesAnalytics");
  ASSERT_TRUE(session.ok());

  std::vector<Value> units;
  for (int i = 0; i < 40; ++i) units.push_back(Value(int64_t{i}));
  ASSERT_TRUE((*session)
                  ->CreateTempTable("myfilter", "units", DataType::Int64(),
                                    units)
                  .ok());
  EXPECT_TRUE((*session)->HasTempTable("myfilter"));

  ClientQuery cq;
  cq.query = QueryBuilder("", "").Dim("region").CountAll("n").Build();
  cq.temp_filters["units"] = "myfilter";
  auto result = (*session)->Query(cq);
  ASSERT_TRUE(result.ok()) << result.status();

  // Equivalent inline query matches.
  ClientQuery inline_q;
  inline_q.query = QueryBuilder("", "")
                       .Dim("region")
                       .CountAll("n")
                       .FilterIn("units", units)
                       .Build();
  auto inline_result = (*session)->Query(inline_q);
  ASSERT_TRUE(inline_result.ok());
  EXPECT_TRUE(ResultTable::SameUnordered(*result, *inline_result));

  // Referencing the table twice saves 2x the enumeration in traffic.
  ASSERT_TRUE((*session)->Query(cq).ok());
  EXPECT_EQ(server_.values_saved_by_temp_refs(), 80);

  EXPECT_FALSE((*session)->Query(ClientQuery{
                              QueryBuilder("", "").CountAll("n").Build(),
                              {{"units", "nosuch"}}})
                   .ok());
}

TEST_F(DataServerTest, TempDefinitionsSharedAcrossSessions) {
  auto s1 = server_.Connect("u1", "SalesAnalytics");
  auto s2 = server_.Connect("u2", "SalesAnalytics");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  std::vector<Value> vals = {Value(int64_t{1}), Value(int64_t{2})};
  ASSERT_TRUE(
      (*s1)->CreateTempTable("t", "units", DataType::Int64(), vals).ok());
  ASSERT_TRUE(
      (*s2)->CreateTempTable("t", "units", DataType::Int64(), vals).ok());
  // Identical contents share one definition (§5.4).
  EXPECT_EQ(server_.temp_registry().num_definitions(), 1);
  EXPECT_EQ(server_.temp_registry().shared_acquisitions(), 1);

  // Reclaimed when the last reference closes.
  (*s1)->Close();
  EXPECT_EQ(server_.temp_registry().num_definitions(), 1);
  (*s2)->Close();
  EXPECT_EQ(server_.temp_registry().num_definitions(), 0);

  // Closed sessions refuse work.
  EXPECT_FALSE((*s1)->Query(ClientQuery{
                              QueryBuilder("", "").CountAll("n").Build(),
                              {}})
                   .ok());
}

TEST_F(DataServerTest, InMemoryTempTablesCanBeDisabled) {
  DataServerOptions options;
  options.enable_in_memory_temp_tables = false;
  DataServer server(options);
  PublishedDataSource source;
  source.name = "S";
  source.view.fact_table = "sales";
  ASSERT_TRUE(server.Publish(std::move(source), backend_).ok());
  auto session = server.Connect("u", "S");
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->metadata().supports_temp_tables);
  EXPECT_FALSE(
      (*session)
          ->CreateTempTable("t", "units", DataType::Int64(), {Value(int64_t{1})})
          .ok());
}

TEST_F(DataServerTest, ProxyCachesServeRepeatQueriesAcrossUsers) {
  auto u1 = server_.Connect("u1", "SalesAnalytics");
  auto u2 = server_.Connect("u2", "SalesAnalytics");
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  ClientQuery cq;
  cq.query = QueryBuilder("", "").Dim("product").CountAll("n").Build();
  dashboard::BatchReport r1, r2;
  ASSERT_TRUE((*u1)->Query(cq, &r1).ok());
  ASSERT_TRUE((*u2)->Query(cq, &r2).ok());
  EXPECT_EQ(r1.remote_queries, 1);
  EXPECT_EQ(r2.remote_queries, 0);  // §3.2 multi-user sharing
  EXPECT_EQ(r2.cache_hits, 1);
}

}  // namespace
}  // namespace vizq::server
