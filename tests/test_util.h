// Shared helpers for VizQuery tests: small deterministic tables and a
// database the TQL tests run against.

#ifndef VIZQUERY_TESTS_TEST_UTIL_H_
#define VIZQUERY_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tde/engine.h"
#include "src/tde/storage/database.h"
#include "src/tde/storage/table.h"
#include "src/testing/table_diff.h"

namespace vizq::testing {

// Order-insensitive, tolerance-aware result comparison (table_diff.h):
// rows are matched canonically, int cells exactly, doubles within
// DiffOptions tolerances, NULL only equal to NULL. Use wherever row order
// is not part of the contract under test.
inline ::testing::AssertionResult TablesEquivalent(
    const ResultTable& expected, const ResultTable& actual,
    const DiffOptions& options = DiffOptions{}) {
  DiffResult diff = DiffTables(expected, actual, options);
  if (diff.equivalent) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << diff.message;
}

#define EXPECT_TABLES_EQUIVALENT(expected, actual) \
  EXPECT_TRUE(::vizq::testing::TablesEquivalent((expected), (actual)))

// Builds the "sales" table: region (string, 4 values), product (string,
// 8 values), units (int), price (float), day (date-ish int). Sorted by
// region, then product. Region/product are dictionary-compressible and
// region is heavily run-length encoded (sorted).
inline std::shared_ptr<tde::Table> MakeSalesTable(int64_t rows,
                                                  uint64_t seed = 7) {
  using namespace vizq::tde;
  std::vector<ColumnInfo> schema = {
      {"region", DataType::String()},   {"product", DataType::String()},
      {"units", DataType::Int64()},     {"price", DataType::Float64()},
      {"day", DataType::Date()},
  };
  const char* regions[] = {"East", "North", "South", "West"};
  const char* products[] = {"apple", "banana", "cherry", "date",
                            "elder", "fig",    "grape",  "honey"};
  TableBuilder builder("sales", schema);
  Rng rng(seed);
  // Generate sorted (region, product) pairs by construction.
  int64_t per_region = rows / 4;
  for (int r = 0; r < 4; ++r) {
    int64_t n = r == 3 ? rows - 3 * per_region : per_region;
    // within a region, products in sorted order
    int64_t per_product = n / 8;
    for (int p = 0; p < 8; ++p) {
      int64_t m = p == 7 ? n - 7 * per_product : per_product;
      for (int64_t i = 0; i < m; ++i) {
        std::vector<Value> row;
        row.emplace_back(Value(regions[r]));
        row.emplace_back(Value(products[p]));
        row.emplace_back(Value(static_cast<int64_t>(rng.Range(0, 100))));
        row.emplace_back(Value(rng.NextDouble() * 50.0));
        row.emplace_back(Value(static_cast<int64_t>(16000 + rng.Range(0, 365))));
        builder.AddRow(row);
      }
    }
  }
  builder.DeclareSorted({0, 1});
  auto table = builder.Finish();
  return *table;
}

// A small dimension table keyed by product name.
inline std::shared_ptr<tde::Table> MakeProductDim() {
  using namespace vizq::tde;
  std::vector<ColumnInfo> schema = {
      {"name", DataType::String()},
      {"category", DataType::String()},
      {"weight", DataType::Float64()},
  };
  TableBuilder builder("products", schema);
  const char* products[] = {"apple", "banana", "cherry", "date",
                            "elder", "fig",    "grape",  "honey"};
  const char* cats[] = {"fruit", "fruit", "fruit", "dried",
                        "berry", "dried", "fruit", "sweet"};
  for (int i = 0; i < 8; ++i) {
    builder.AddRow({Value(products[i]), Value(cats[i]),
                    Value(static_cast<double>(i) * 1.5 + 0.5)});
  }
  return *builder.Finish();
}

inline std::shared_ptr<tde::Database> MakeTestDatabase(int64_t sales_rows = 4096) {
  auto db = std::make_shared<tde::Database>("testdb");
  (void)db->AddTable(MakeSalesTable(sales_rows));
  (void)db->AddTable(MakeProductDim());
  return db;
}

// "orders" table with NULLs sprinkled into a dimension (product) and a
// measure (units): the fixture for engine-vs-cache differential tests of
// null semantics (COUNTD, IN-set filtering).
inline std::shared_ptr<tde::Table> MakeNullableOrdersTable(
    int64_t rows = 512, uint64_t seed = 11) {
  using namespace vizq::tde;
  std::vector<ColumnInfo> schema = {
      {"region", DataType::String()},
      {"product", DataType::String()},
      {"units", DataType::Int64()},
  };
  const char* regions[] = {"East", "North", "South", "West"};
  const char* products[] = {"apple", "banana", "cherry", "date", "elder"};
  TableBuilder builder("orders", schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    row.emplace_back(Value(regions[rng.Below(4)]));
    // ~20% null products: every region group sees null dimension values.
    if (rng.Chance(0.2)) {
      row.emplace_back(Value::Null());
    } else {
      row.emplace_back(Value(products[rng.Below(5)]));
    }
    if (rng.Chance(0.1)) {
      row.emplace_back(Value::Null());
    } else {
      row.emplace_back(Value(static_cast<int64_t>(rng.Range(0, 50))));
    }
    (void)builder.AddRow(row);
  }
  return *builder.Finish();
}

inline std::shared_ptr<tde::Database> MakeNullableTestDatabase(
    int64_t rows = 512) {
  auto db = std::make_shared<tde::Database>("nulldb");
  (void)db->AddTable(MakeNullableOrdersTable(rows));
  return db;
}

}  // namespace vizq::testing

#endif  // VIZQUERY_TESTS_TEST_UTIL_H_
