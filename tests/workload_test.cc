// Workload-generation tests: determinism, schema shape, sort metadata,
// CSV/database agreement, the Fig. 1/2 dashboard definitions and the
// traffic generator.

#include <gtest/gtest.h>

#include "src/common/str_util.h"
#include "src/workload/faa_generator.h"
#include "src/workload/flights_dashboards.h"
#include "src/workload/traffic.h"

namespace vizq::workload {
namespace {

TEST(FaaGeneratorTest, DeterministicForSeed) {
  FaaOptions options;
  options.num_flights = 2000;
  auto a = GenerateFaaDatabase(options);
  auto b = GenerateFaaDatabase(options);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = *(*a)->GetTable("flights");
  auto tb = *(*b)->GetTable("flights");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (int64_t r = 0; r < 100; ++r) {
    for (int c = 0; c < ta->num_columns(); ++c) {
      EXPECT_TRUE(ta->column(c)->GetValue(r).Equals(
          tb->column(c)->GetValue(r)));
    }
  }
  options.seed = 77;
  auto c = GenerateFaaDatabase(options);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  auto tc = *(*c)->GetTable("flights");
  for (int64_t r = 0; r < 100 && !any_diff; ++r) {
    if (!ta->column(4)->GetValue(r).Equals(tc->column(4)->GetValue(r))) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaaGeneratorTest, SchemaAndSortMetadata) {
  FaaOptions options;
  options.num_flights = 3000;
  auto db = *GenerateFaaDatabase(options);
  auto flights = *db->GetTable("flights");
  EXPECT_EQ(flights->num_rows(), 3000);
  EXPECT_EQ(flights->num_columns(), 13);
  ASSERT_EQ(flights->sort_columns().size(), 2u);
  EXPECT_EQ(flights->column_info(flights->sort_columns()[0]).name, "carrier");
  // market = origin-dest.
  for (int64_t r = 0; r < 50; ++r) {
    std::string origin = flights->column(4)->GetValue(r).string_value();
    std::string dest = flights->column(5)->GetValue(r).string_value();
    std::string market = flights->column(8)->GetValue(r).string_value();
    EXPECT_EQ(market, origin + "-" + dest);
    EXPECT_NE(origin, dest);
  }
  auto carriers = *db->GetTable("carriers");
  EXPECT_EQ(carriers->num_rows(), 10);
}

TEST(FaaGeneratorTest, WeekdayColumnConsistentWithDate) {
  FaaOptions options;
  options.num_flights = 500;
  auto db = *GenerateFaaDatabase(options);
  auto flights = *db->GetTable("flights");
  for (int64_t r = 0; r < flights->num_rows(); ++r) {
    int64_t date = flights->column(1)->GetValue(r).int_value();
    int64_t weekday = flights->column(2)->GetValue(r).int_value();
    EXPECT_EQ(weekday, vizq::DayOfWeek(date));
  }
}

TEST(FaaGeneratorTest, CsvMatchesDatabaseRowCount) {
  FaaOptions options;
  options.num_flights = 800;
  auto csv = *GenerateFaaCsv(options);
  int64_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 801);  // header + rows
}

TEST(FlightsDashboardsTest, Figure1Structure) {
  dashboard::Dashboard dash = BuildFigure1Dashboard("faa");
  EXPECT_EQ(dash.QueryZoneNames().size(), 9u);  // 7 viz + 2 quick filters
  EXPECT_NE(dash.FindZone("Legend"), nullptr);
  EXPECT_FALSE(dash.FindZone("Legend")->has_query());
  // Both maps drive the bottom charts.
  EXPECT_EQ(dash.ActionTargets("OriginMap").size(), 5u);
  EXPECT_EQ(dash.ActionTargets("DestMap").size(), 5u);
  // Quick filters skip their own widget zone.
  auto targets = dash.QuickFilterTargets("carrier");
  for (const std::string& t : targets) {
    EXPECT_NE(t, "CarrierFilter");
  }
}

TEST(FlightsDashboardsTest, Figure2ActionsMatchThePaper) {
  dashboard::Dashboard dash = BuildFigure2Dashboard("faa");
  ASSERT_EQ(dash.actions().size(), 2u);
  EXPECT_EQ(dash.actions()[0].source_zone, "Market");
  EXPECT_EQ(dash.actions()[0].targets.size(), 2u);
  EXPECT_EQ(dash.actions()[1].source_zone, "Carrier");
  ASSERT_EQ(dash.actions()[1].targets.size(), 1u);
  EXPECT_EQ(dash.actions()[1].targets[0], "AirlineName");

  // The Carrier zone query carries the paper's top-5 shape.
  dashboard::InteractionState state;
  auto q = dash.BuildZoneQuery("Carrier", state);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->limit, 5);
}

TEST(FlightsDashboardsTest, SelectionsFlowIntoZoneQueries) {
  dashboard::Dashboard dash = BuildFigure2Dashboard("faa");
  dashboard::InteractionState state;
  state.Select("Market", "market", {Value("LAX-SFO")});
  state.Select("Carrier", "carrier", {Value("AA")});

  auto airline = *dash.BuildZoneQuery("AirlineName", state);
  EXPECT_NE(airline.filters.Find("market"), nullptr);
  EXPECT_NE(airline.filters.Find("carrier"), nullptr);
  // The Carrier zone gets the market filter but not its own selection.
  auto carrier = *dash.BuildZoneQuery("Carrier", state);
  EXPECT_NE(carrier.filters.Find("market"), nullptr);
  EXPECT_EQ(carrier.filters.Find("carrier"), nullptr);
  // Market is a source only; it receives no filters.
  auto market = *dash.BuildZoneQuery("Market", state);
  EXPECT_TRUE(market.filters.predicates.empty());
}

TEST(TrafficTest, PublicStyleTrafficIsLoadDominated) {
  TrafficOptions options;
  options.num_users = 200;
  options.interaction_probability = 0.1;
  std::vector<Selectable> selectable = {
      Selectable{"Z", "c", {Value("a"), Value("b")}, false}};
  auto events = GenerateTraffic(options, selectable);
  int loads = 0, interactions = 0;
  for (const TrafficEvent& e : events) {
    if (e.kind == TrafficEvent::Kind::kInitialLoad) {
      ++loads;
    } else {
      ++interactions;
    }
  }
  EXPECT_EQ(loads, 200);
  EXPECT_LT(interactions, 80);  // saturated by initial loads
  // Deterministic.
  auto again = GenerateTraffic(options, selectable);
  ASSERT_EQ(again.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].user, events[i].user);
    EXPECT_EQ(static_cast<int>(again[i].kind),
              static_cast<int>(events[i].kind));
  }
}

}  // namespace
}  // namespace vizq::workload
