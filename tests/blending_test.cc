// Data blending tests: aggregated results from two independent data
// sources (each with its own pipeline and caches) left-joined on linking
// dimensions.

#include "src/dashboard/blending.h"

#include <gtest/gtest.h>

#include "src/federation/data_source.h"
#include "tests/test_util.h"

namespace vizq::dashboard {
namespace {

using query::QueryBuilder;

class BlendingTest : public ::testing::Test {
 protected:
  BlendingTest() {
    // Primary source: the sales database.
    auto sales_db = vizq::testing::MakeTestDatabase(4096);
    primary_source_ =
        std::make_shared<federation::TdeDataSource>("salesdb", sales_db);
    primary_caches_ = std::make_shared<CacheStack>();
    primary_ = std::make_unique<QueryService>(primary_source_,
                                              primary_caches_);
    EXPECT_TRUE(primary_->RegisterTableView("sales").ok());

    // Secondary source: a *separate* database with region quotas.
    auto quota_db = std::make_shared<tde::Database>("quotadb");
    tde::TableBuilder builder("quotas", {{"region", DataType::String()},
                                         {"quota", DataType::Int64()}});
    (void)builder.AddRow({Value("East"), Value(int64_t{1000})});
    (void)builder.AddRow({Value("North"), Value(int64_t{1500})});
    (void)builder.AddRow({Value("South"), Value(int64_t{800})});
    // No quota row for West: blend must leave it NULL.
    (void)quota_db->AddTable(*builder.Finish());
    secondary_source_ =
        std::make_shared<federation::TdeDataSource>("quotadb", quota_db);
    secondary_ = std::make_unique<QueryService>(secondary_source_, nullptr);
    EXPECT_TRUE(secondary_->RegisterTableView("quotas").ok());
  }

  std::shared_ptr<federation::TdeDataSource> primary_source_;
  std::shared_ptr<CacheStack> primary_caches_;
  std::unique_ptr<QueryService> primary_;
  std::shared_ptr<federation::TdeDataSource> secondary_source_;
  std::unique_ptr<QueryService> secondary_;
};

TEST_F(BlendingTest, LeftJoinsAggregatesAcrossSources) {
  BlendSpec spec;
  spec.primary = QueryBuilder("salesdb", "sales")
                     .Dim("region")
                     .Agg(AggFunc::kSum, "units", "total")
                     .Build();
  spec.secondary = QueryBuilder("quotadb", "quotas")
                       .Dim("region")
                       .Agg(AggFunc::kMax, "quota", "quota")
                       .Build();
  spec.link_on = {{"region", "region"}};

  auto blended = ExecuteBlend(primary_.get(), secondary_.get(), spec);
  ASSERT_TRUE(blended.ok()) << blended.status();
  ASSERT_EQ(blended->num_rows(), 4);
  ASSERT_EQ(blended->num_columns(), 3);  // region, total, quota
  EXPECT_EQ(blended->columns()[2].name, "quota");

  // Every region keeps its sales; West has no quota.
  bool saw_west = false;
  for (int64_t r = 0; r < blended->num_rows(); ++r) {
    const std::string& region = blended->at(r, 0).string_value();
    EXPECT_FALSE(blended->at(r, 1).is_null());
    if (region == "West") {
      saw_west = true;
      EXPECT_TRUE(blended->at(r, 2).is_null());
    } else {
      EXPECT_FALSE(blended->at(r, 2).is_null());
    }
  }
  EXPECT_TRUE(saw_west);
}

TEST_F(BlendingTest, CollidingSecondaryColumnIsRenamed) {
  BlendSpec spec;
  spec.primary = QueryBuilder("salesdb", "sales")
                     .Dim("region")
                     .CountAll("n")
                     .Build();
  spec.secondary = QueryBuilder("quotadb", "quotas")
                       .Dim("region")
                       .CountAll("n")
                       .Build();
  spec.link_on = {{"region", "region"}};
  auto blended = ExecuteBlend(primary_.get(), secondary_.get(), spec);
  ASSERT_TRUE(blended.ok());
  EXPECT_EQ(blended->columns()[2].name, "n (secondary)");
}

TEST_F(BlendingTest, BothSidesBenefitFromTheirCaches) {
  BlendSpec spec;
  spec.primary = QueryBuilder("salesdb", "sales")
                     .Dim("region")
                     .Agg(AggFunc::kSum, "units", "total")
                     .Build();
  spec.secondary = QueryBuilder("quotadb", "quotas")
                       .Dim("region")
                       .Agg(AggFunc::kMax, "quota", "quota")
                       .Build();
  spec.link_on = {{"region", "region"}};
  ASSERT_TRUE(ExecuteBlend(primary_.get(), secondary_.get(), spec).ok());
  int64_t hits_before = primary_caches_->intelligent.stats().hits();
  ASSERT_TRUE(ExecuteBlend(primary_.get(), secondary_.get(), spec).ok());
  EXPECT_GT(primary_caches_->intelligent.stats().hits(), hits_before);
}

TEST_F(BlendingTest, ValidatesLinkingFields) {
  BlendSpec spec;
  spec.primary =
      QueryBuilder("salesdb", "sales").Dim("region").CountAll("n").Build();
  spec.secondary =
      QueryBuilder("quotadb", "quotas").Dim("region").CountAll("n").Build();
  EXPECT_FALSE(
      ExecuteBlend(primary_.get(), secondary_.get(), spec).ok());  // no link
  spec.link_on = {{"product", "region"}};  // not a primary dimension
  EXPECT_FALSE(ExecuteBlend(primary_.get(), secondary_.get(), spec).ok());
  spec.link_on = {{"region", "nope"}};
  EXPECT_FALSE(ExecuteBlend(primary_.get(), secondary_.get(), spec).ok());
}

}  // namespace
}  // namespace vizq::dashboard
