// Tests of the sharded Data Server: consistent-hash placement properties
// (determinism, minimal movement), the RPC wire codecs, scatter/gather
// correctness against a single-node oracle, failover and administrative
// rebalance semantics (no stale owner serving), node-scoped temp-table
// definitions, and concurrent kill/revive vs scatter (TSan suite).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/cluster/node.h"
#include "src/cluster/placement.h"
#include "src/common/scheduler.h"
#include "src/federation/data_source.h"
#include "src/rpc/channel.h"
#include "src/rpc/envelope.h"
#include "src/server/temp_table_registry.h"
#include "tests/test_util.h"

namespace vizq::cluster {
namespace {

using query::AbstractQuery;
using query::QueryBuilder;

// --- consistent-hash placement ---

std::vector<std::string> Keys(int k) {
  std::vector<std::string> keys;
  keys.reserve(k);
  for (int i = 0; i < k; ++i) keys.push_back("source-" + std::to_string(i));
  return keys;
}

TEST(PlacementTest, DeterministicPerSeed) {
  PlacementOptions opts;
  opts.seed = 42;
  ConsistentHashRing a(opts), b(opts);
  for (int i = 0; i < 6; ++i) {
    a.AddNode("n" + std::to_string(i));
    b.AddNode("n" + std::to_string(i));
  }
  int differs_across_seeds = 0;
  PlacementOptions other;
  other.seed = 43;
  ConsistentHashRing c(other);
  for (int i = 0; i < 6; ++i) c.AddNode("n" + std::to_string(i));
  for (const auto& key : Keys(500)) {
    EXPECT_EQ(a.OwnerOf(key), b.OwnerOf(key));
    if (a.OwnerOf(key) != c.OwnerOf(key)) ++differs_across_seeds;
  }
  // A different seed is a genuinely different placement.
  EXPECT_GT(differs_across_seeds, 0);
}

TEST(PlacementTest, RemovalMovesOnlyTheRemovedNodesKeys) {
  ConsistentHashRing ring;
  for (int i = 0; i < 8; ++i) ring.AddNode("n" + std::to_string(i));
  const auto keys = Keys(1000);
  std::map<std::string, std::string> before;
  for (const auto& key : keys) before[key] = ring.OwnerOf(key);
  ring.RemoveNode("n3");
  for (const auto& key : keys) {
    if (before[key] == "n3") {
      EXPECT_NE(ring.OwnerOf(key), "n3");
    } else {
      // The defining consistent-hashing property: keys not owned by the
      // removed member do not move at all.
      EXPECT_EQ(ring.OwnerOf(key), before[key]) << key;
    }
  }
}

TEST(PlacementTest, JoinMovesBoundedShare) {
  ConsistentHashRing ring;
  for (int i = 0; i < 8; ++i) ring.AddNode("n" + std::to_string(i));
  const auto keys = Keys(1000);
  std::map<std::string, std::string> before;
  for (const auto& key : keys) before[key] = ring.OwnerOf(key);
  ring.AddNode("n8");
  int moved = 0;
  for (const auto& key : keys) {
    const std::string after = ring.OwnerOf(key);
    if (after != before[key]) {
      // Every move is TO the joining node, never a reshuffle among the
      // existing members.
      EXPECT_EQ(after, "n8") << key;
      ++moved;
    }
  }
  // Expected share is K/(N+1) ~= 111; virtual-node variance allows some
  // slack but nothing like the ~K*(N-1)/N a modulo scheme would move.
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, 1000 * 2 / (8 + 1));
}

TEST(PlacementTest, SpreadsLoadAcrossMembers) {
  ConsistentHashRing ring;
  for (int i = 0; i < 8; ++i) ring.AddNode("n" + std::to_string(i));
  std::map<std::string, int> load;
  for (const auto& key : Keys(1000)) load[ring.OwnerOf(key)]++;
  EXPECT_EQ(load.size(), 8u);  // every member owns something
  for (const auto& [node, count] : load) {
    EXPECT_GT(count, 1000 / 8 / 4) << node;  // no member starves
  }
}

// --- wire codecs ---

TEST(ClusterWireTest, BatchRequestRoundTrip) {
  std::vector<AbstractQuery> batch;
  batch.push_back(QueryBuilder("tde", "sales")
                      .Dim("region")
                      .Agg(AggFunc::kSum, "units", "total")
                      .Build());
  batch.push_back(QueryBuilder("tde", "sales").Dim("product").Build());
  WireBatchOptions options;
  options.cache_only = true;
  options.max_result_age_ms = 1234.5;
  options.session_id = 99;
  options.priority = TaskClass::kBackground;

  auto decoded = DecodeBatchRequest(EncodeBatchRequest(batch, options));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->first.size(), 2u);
  EXPECT_EQ(decoded->first[0].ToKeyString(), batch[0].ToKeyString());
  EXPECT_EQ(decoded->first[1].ToKeyString(), batch[1].ToKeyString());
  EXPECT_TRUE(decoded->second.cache_only);
  EXPECT_FALSE(decoded->second.cache_exact_only);
  EXPECT_DOUBLE_EQ(decoded->second.max_result_age_ms, 1234.5);
  EXPECT_EQ(decoded->second.session_id, 99u);
  EXPECT_EQ(decoded->second.priority, TaskClass::kBackground);
}

TEST(ClusterWireTest, CorruptPayloadIsTypedDataLoss) {
  std::vector<AbstractQuery> batch = {
      QueryBuilder("tde", "sales").Dim("region").Build()};
  std::string bytes = EncodeBatchRequest(batch, WireBatchOptions{});
  bytes.resize(bytes.size() / 2);  // truncate
  auto decoded = DecodeBatchRequest(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);

  auto resp = DecodeBatchResponse("garbage");
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kDataLoss);
}

TEST(ClusterWireTest, EnvelopeRejectsBadMagic) {
  rpc::RpcRequest req;
  req.request_id = 7;
  req.method = "execute_batch";
  req.target = "n1";
  std::string bytes = req.Serialize();
  bytes[0] ^= 0x5a;
  auto parsed = rpc::RpcRequest::Deserialize(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

// --- cluster fixture: a coordinator plus a single-node oracle ---

struct ClusterEnv {
  explicit ClusterEnv(int num_nodes, int num_sources = 6) {
    auto db = vizq::testing::MakeTestDatabase(2048);
    backend = std::make_shared<federation::TdeDataSource>("tde", db);

    ClusterOptions copts;
    copts.num_nodes = num_nodes;
    copts.transport.net.simulate_latency = false;
    copts.shared_tier.net.simulate_latency = false;
    copts.retry.initial_backoff_ms = 0.0;  // tests need no real sleeps
    cluster = std::make_unique<ClusterCoordinator>(copts);

    oracle_caches = std::make_shared<dashboard::CacheStack>();
    oracle = std::make_unique<dashboard::QueryService>(backend, nullptr);
    for (int s = 0; s < num_sources; ++s) {
      SourceSpec spec;
      spec.view.name = "src" + std::to_string(s);
      spec.view.fact_table = "sales";
      spec.backend = backend;
      EXPECT_TRUE(cluster->Publish(spec).ok());
      EXPECT_TRUE(oracle->RegisterView(spec.view).ok());
      views.push_back(spec.view.name);
    }
  }

  // One query per source: the widest scatter a batch can have here.
  std::vector<AbstractQuery> WideBatch() const {
    std::vector<AbstractQuery> batch;
    for (const auto& view : views) {
      batch.push_back(QueryBuilder("tde", view)
                          .Dim("region")
                          .Agg(AggFunc::kSum, "units", "total")
                          .Build());
    }
    return batch;
  }

  void ExpectMatchesOracle(const std::vector<AbstractQuery>& batch,
                           const std::vector<ResultTable>& results) {
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      auto truth = oracle->ExecuteQuery(batch[i]);
      ASSERT_TRUE(truth.ok()) << truth.status();
      EXPECT_TABLES_EQUIVALENT(*truth, results[i]);
    }
  }

  std::shared_ptr<federation::DataSource> backend;
  std::unique_ptr<ClusterCoordinator> cluster;
  std::shared_ptr<dashboard::CacheStack> oracle_caches;
  std::unique_ptr<dashboard::QueryService> oracle;
  std::vector<std::string> views;
};

TEST(ClusterTest, ScatterGatherMatchesSingleNode) {
  ClusterEnv env(4);
  const auto batch = env.WideBatch();
  dashboard::BatchReport report;
  auto results = env.cluster->ExecuteBatch(batch, {}, &report);
  ASSERT_TRUE(results.ok()) << results.status();
  env.ExpectMatchesOracle(batch, *results);
  EXPECT_EQ(report.queries.size(), batch.size());
  EXPECT_GE(env.cluster->stats().scattered_groups,
            static_cast<int64_t>(env.views.size()));
}

TEST(ClusterTest, UnknownViewIsVerbatimNotFound) {
  ClusterEnv env(2);
  std::vector<AbstractQuery> batch = {
      QueryBuilder("tde", "no-such-view").Dim("region").Build()};
  auto results = env.cluster->ExecuteBatch(batch);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kNotFound);
}

TEST(ClusterTest, SharedTierKeepsSuccessorWarmAfterNodeDeath) {
  ClusterEnv env(4);
  const auto batch = env.WideBatch();
  auto first = env.cluster->ExecuteBatch(batch);
  ASSERT_TRUE(first.ok()) << first.status();

  // Kill an owner; the next scatter fails over via the retry hook and
  // still answers correctly (or with a typed error — never partials).
  const std::string victim = env.cluster->OwnerOf(env.views[0]);
  ASSERT_FALSE(victim.empty());
  env.cluster->KillNode(victim);

  dashboard::BatchReport report;
  auto second = env.cluster->ExecuteBatch(batch, {}, &report);
  ASSERT_TRUE(second.ok()) << second.status();
  env.ExpectMatchesOracle(batch, *second);
  EXPECT_GE(env.cluster->stats().failovers, 1);
  // Death is not an administrative move: the dead node's shared-tier
  // entries survive, so the successor can serve them warm.
  EXPECT_GT(env.cluster->shared_tier()->hits(), 0);
  // And ownership left the dead node.
  EXPECT_NE(env.cluster->OwnerOf(env.views[0]), victim);
}

TEST(ClusterTest, RebalanceLeavesNoStaleOwnerServing) {
  ClusterEnv env(4);
  const auto batch = env.WideBatch();
  ASSERT_TRUE(env.cluster->ExecuteBatch(batch).ok());

  const std::string victim = env.cluster->OwnerOf(env.views[0]);
  env.cluster->KillNode(victim);
  ASSERT_TRUE(env.cluster->ExecuteBatch(batch).ok());  // triggers failover
  const std::string successor = env.cluster->OwnerOf(env.views[0]);
  ASSERT_NE(successor, victim);

  // Revive: the node rejoins the ring and an administrative rebalance
  // returns its consistent-hash share. Every moved view must leave its
  // old owner entirely: not hosted there any more, and its shared-tier
  // namespace invalidated.
  env.cluster->ReviveNode(victim);
  EXPECT_GE(env.cluster->stats().rebalances, 1);

  for (const auto& view : env.views) {
    const std::string owner = env.cluster->OwnerOf(view);
    ASSERT_FALSE(owner.empty());
    EXPECT_TRUE(env.cluster->node(owner)->Serves(view));
    for (const auto& node_id : {std::string("n0"), std::string("n1"),
                                std::string("n2"), std::string("n3")}) {
      if (node_id == owner) continue;
      EXPECT_FALSE(env.cluster->node(node_id)->Serves(view))
          << node_id << " still serves " << view << " owned by " << owner;
    }
  }
  // The ring is deterministic, so the revived node owns its original
  // share again.
  EXPECT_EQ(env.cluster->OwnerOf(env.views[0]), victim);

  // And the cluster still answers correctly after all that churn.
  auto after = env.cluster->ExecuteBatch(batch);
  ASSERT_TRUE(after.ok()) << after.status();
  env.ExpectMatchesOracle(batch, *after);
}

TEST(ClusterTest, StalePlacementAnswersFailedPreconditionAndRoams) {
  ClusterEnv env(3);
  // Point a view's routing at a node that does not host it: the node
  // answers the stale-placement code and the channel roams back to a
  // real owner only if the resolver changes — with a fixed wrong
  // resolver the caller sees the typed failure, not a silent wrong
  // answer.
  const std::string owner = env.cluster->OwnerOf(env.views[0]);
  std::string wrong;
  for (const auto& node_id :
       {std::string("n0"), std::string("n1"), std::string("n2")}) {
    if (node_id != owner) wrong = node_id;
  }
  rpc::RetryOptions ropts;
  ropts.max_attempts = 2;
  ropts.initial_backoff_ms = 0.0;
  rpc::RetryingChannel channel(&env.cluster->transport(), ropts);
  std::vector<AbstractQuery> sub = {QueryBuilder("tde", env.views[0])
                                        .Dim("region")
                                        .Agg(AggFunc::kSum, "units", "t")
                                        .Build()};
  auto resp = channel.Call(ExecContext::Background(), "execute_batch",
                           EncodeBatchRequest(sub, WireBatchOptions{}),
                           [&wrong]() { return wrong; });
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(channel.retries(), 1);
}

// --- node-scoped temp-table definitions (PR satellite regression) ---

TEST(ClusterTest, TempTableDefinitionsAreNodeScoped) {
  server::TempTableRegistry registry;
  query::TempTableSpec spec;
  spec.name = "#in_market_1";
  spec.column = "v";
  spec.source_column = "product";
  spec.type = DataType::String();
  spec.values = {Value("apple"), Value("banana")};

  auto a = registry.Acquire(spec, "n0");
  auto b = registry.Acquire(spec, "n1");
  // Same content, different node scope: two distinct definitions, no
  // cross-node sharing.
  EXPECT_EQ(registry.num_definitions(), 2);
  EXPECT_EQ(registry.shared_acquisitions(), 0);
  // Same scope shares as before.
  auto c = registry.Acquire(spec, "n0");
  EXPECT_EQ(registry.num_definitions(), 2);
  EXPECT_EQ(registry.shared_acquisitions(), 1);
  registry.Release(a);
  registry.Release(b);
  registry.Release(c);
  EXPECT_EQ(registry.num_definitions(), 0);
}

// --- concurrency: scatter vs kill/revive (runs under TSan in CI) ---

TEST(ClusterConcurrencyTest, ScatterSurvivesKillReviveChurn) {
  ClusterEnv env(4);
  const auto batch = env.WideBatch();
  ASSERT_TRUE(env.cluster->ExecuteBatch(batch).ok());

  std::atomic<int> ok_count{0}, typed_errors{0};
  std::atomic<bool> bad_outcome{false};
  TaskGroup group(&Scheduler::Global(), TaskClass::kInteractive);
  for (int t = 0; t < 6; ++t) {
    group.Spawn([&env, &batch, &ok_count, &typed_errors, &bad_outcome]() {
      for (int i = 0; i < 15; ++i) {
        auto results = env.cluster->ExecuteBatch(batch);
        if (results.ok()) {
          if (results->size() != batch.size()) bad_outcome = true;
          ok_count++;
        } else {
          switch (results.status().code()) {
            case StatusCode::kResourceExhausted:
            case StatusCode::kDeadlineExceeded:
            case StatusCode::kAborted:
              typed_errors++;
              break;
            default:
              bad_outcome = true;  // silent partials or untyped failure
          }
        }
      }
    });
  }
  // Churn membership while the scatters run.
  for (int round = 0; round < 8; ++round) {
    const std::string victim = "n" + std::to_string(round % 4);
    env.cluster->KillNode(victim);
    env.cluster->ReviveNode(victim);
  }
  group.Wait();
  EXPECT_FALSE(bad_outcome.load());
  EXPECT_GT(ok_count.load(), 0);
  // After the churn settles, answers are exact again.
  auto final_results = env.cluster->ExecuteBatch(batch);
  ASSERT_TRUE(final_results.ok()) << final_results.status();
  env.ExpectMatchesOracle(batch, *final_results);
}

}  // namespace
}  // namespace vizq::cluster
