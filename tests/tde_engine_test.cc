// End-to-end tests of the TDE engine: TQL text -> results, serial vs
// parallel equivalence, and the §4.2/§4.3 plan features.

#include "src/tde/engine.h"

#include <gtest/gtest.h>

#include "src/tde/plan/tql_parser.h"
#include "src/testing/table_diff.h"
#include "tests/test_util.h"

namespace vizq::tde {
namespace {

using vizq::testing::MakeTestDatabase;

// Order-insensitive with float tolerance: parallel plans (morsel scans,
// exchange interleaving, partial-aggregate merges) accumulate FP measures
// in a different order than the serial plan, which legally perturbs the
// last ulp of AVG results (see src/testing/table_diff.h).
::testing::AssertionResult TablesEquivalent(const ResultTable& expected,
                                            const ResultTable& actual) {
  vizq::testing::DiffResult diff = vizq::testing::DiffTables(expected, actual);
  if (diff.equivalent) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << diff.message;
}

class TdeEngineTest : public ::testing::Test {
 protected:
  TdeEngineTest() : engine_(MakeTestDatabase(4096)) {}

  ResultTable MustQuery(const std::string& tql) {
    auto result = engine_.Query(tql);
    EXPECT_TRUE(result.ok()) << result.status() << " for " << tql;
    return result.ok() ? *result : ResultTable();
  }

  TdeEngine engine_;
};

TEST_F(TdeEngineTest, ScanCountsRows) {
  ResultTable t = MustQuery("(aggregate () ((n count*)) (scan sales))");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.at(0, 0).int_value(), 4096);
}

TEST_F(TdeEngineTest, SelectFilters) {
  ResultTable all = MustQuery(
      "(aggregate () ((n count*)) (select (= region \"East\") (scan sales)))");
  ASSERT_EQ(all.num_rows(), 1);
  EXPECT_EQ(all.at(0, 0).int_value(), 1024);
}

TEST_F(TdeEngineTest, ProjectComputesExpressions) {
  ResultTable t = MustQuery(
      "(topn 3 ((revenue desc)) (project ((region region) (revenue (* units "
      "price))) (scan sales)))");
  ASSERT_EQ(t.num_rows(), 3);
  EXPECT_TRUE(t.at(0, 1).AsDouble() >= t.at(1, 1).AsDouble());
  EXPECT_TRUE(t.at(1, 1).AsDouble() >= t.at(2, 1).AsDouble());
}

TEST_F(TdeEngineTest, GroupByRegion) {
  ResultTable t = MustQuery(
      "(order ((region asc)) (aggregate ((region region)) ((n count*) (total "
      "sum units)) (scan sales)))");
  ASSERT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.at(0, 0).string_value(), "East");
  EXPECT_EQ(t.at(0, 1).int_value(), 1024);
  EXPECT_EQ(t.at(3, 0).string_value(), "West");
}

TEST_F(TdeEngineTest, AvgMatchesSumOverCount) {
  ResultTable t = MustQuery(
      "(aggregate ((region region)) ((total sum units) (n count units) (mean "
      "avg units)) (scan sales))");
  ASSERT_EQ(t.num_rows(), 4);
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    double expect = t.at(r, 1).AsDouble() / t.at(r, 2).AsDouble();
    EXPECT_NEAR(t.at(r, 3).AsDouble(), expect, 1e-9);
  }
}

TEST_F(TdeEngineTest, DistinctIsRewrittenToGroupBy) {
  ResultTable t = MustQuery(
      "(distinct (project ((region region)) (scan sales)))");
  EXPECT_EQ(t.num_rows(), 4);
}

TEST_F(TdeEngineTest, JoinEnrichesRows) {
  ResultTable t = MustQuery(
      "(order ((category asc) (region asc)) (aggregate ((category category) "
      "(region region)) ((n count*)) (join inner ((product name)) (scan "
      "sales) (scan products) referential)))");
  // 4 categories x 4 regions (every category present in every region).
  EXPECT_EQ(t.num_rows(), 16);
}

TEST_F(TdeEngineTest, TopNOrdersAndLimits) {
  ResultTable t = MustQuery(
      "(topn 2 ((total desc)) (aggregate ((product product)) ((total sum "
      "units)) (scan sales)))");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_GE(t.at(0, 1).int_value(), t.at(1, 1).int_value());
}

TEST_F(TdeEngineTest, InPredicate) {
  ResultTable t = MustQuery(
      "(aggregate () ((n count*)) (select (in region \"East\" \"West\") "
      "(scan sales)))");
  EXPECT_EQ(t.at(0, 0).int_value(), 2048);
}

TEST_F(TdeEngineTest, DateFunctions) {
  ResultTable t = MustQuery(
      "(aggregate ((wd (weekday day))) ((n count*)) (scan sales))");
  EXPECT_EQ(t.num_rows(), 7);
}

TEST_F(TdeEngineTest, EmptyInputScalarAggregateYieldsOneRow) {
  ResultTable t = MustQuery(
      "(aggregate () ((n count*) (s sum units)) (select (= region "
      "\"Nowhere\") (scan sales)))");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.at(0, 0).int_value(), 0);
  EXPECT_TRUE(t.at(0, 1).is_null());
}

// --- serial vs parallel equivalence, across all §4.2.3 strategies ---

struct ParallelConfig {
  std::string name;
  bool local_global;
  bool range_partition;
};

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<ParallelConfig> {};

TEST_P(ParallelEquivalenceTest, MatchesSerialResults) {
  auto db = MakeTestDatabase(20000);
  TdeEngine engine(db);
  const std::vector<std::string> queries = {
      "(aggregate ((region region)) ((n count*) (total sum units) (mean avg "
      "price) (mn min units) (mx max units)) (scan sales))",
      "(aggregate ((region region) (product product)) ((total sum units)) "
      "(scan sales))",
      "(aggregate () ((total sum units) (n count*)) (scan sales))",
      "(topn 5 ((total desc) (product asc)) (aggregate ((product product)) "
      "((total sum units)) (scan sales)))",
      "(aggregate ((category category)) ((total sum units)) (join inner "
      "((product name)) (scan sales) (scan products) referential))",
      "(order ((region asc)) (aggregate ((region region)) ((n count*)) "
      "(select (> units 50) (scan sales))))",
  };
  for (const std::string& q : queries) {
    QueryOptions serial = QueryOptions::Serial();
    QueryOptions parallel;
    parallel.parallel.max_dop = 4;
    parallel.parallel.min_rows_per_fraction = 1024;
    parallel.parallel.enable_local_global_agg = GetParam().local_global;
    parallel.parallel.enable_range_partition = GetParam().range_partition;

    auto rs = engine.Execute(q, serial);
    auto rp = engine.Execute(q, parallel);
    ASSERT_TRUE(rs.ok()) << rs.status() << " for " << q;
    ASSERT_TRUE(rp.ok()) << rp.status() << " for " << q;
    EXPECT_TRUE(TablesEquivalent(rs->table, rp->table))
        << "config " << GetParam().name << "\nquery " << q << "\nserial:\n"
        << rs->table.ToCsv() << "\nparallel:\n"
        << rp->table.ToCsv() << "\nplan:\n"
        << rp->plan_text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ParallelEquivalenceTest,
    ::testing::Values(
        ParallelConfig{"plain_exchange", false, false},
        ParallelConfig{"local_global", true, false},
        ParallelConfig{"range_partition", true, true},
        ParallelConfig{"range_only", false, true}),
    [](const ::testing::TestParamInfo<ParallelConfig>& info) {
      return info.param.name;
    });

TEST(TdeParallelPlanTest, RangePartitionRemovesGlobalAggregate) {
  auto db = MakeTestDatabase(40000);
  TdeEngine engine(db);
  QueryOptions options;
  options.parallel.max_dop = 4;
  options.parallel.min_rows_per_fraction = 1024;
  options.parallel.range_partition_min_distinct = 2;
  auto result = engine.Execute(
      "(aggregate ((region region)) ((total sum units)) (scan sales))",
      options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stats->used_range_partition) << result->plan_text;
  EXPECT_FALSE(result->stats->used_local_global_agg) << result->plan_text;
  EXPECT_EQ(result->table.num_rows(), 4);
}

TEST(TdeParallelPlanTest, LowCardinalityFallsBackToLocalGlobal) {
  auto db = MakeTestDatabase(40000);
  TdeEngine engine(db);
  QueryOptions options;
  options.parallel.max_dop = 4;
  options.parallel.min_rows_per_fraction = 1024;
  options.parallel.range_partition_min_distinct = 100;  // region has 4
  auto result = engine.Execute(
      "(aggregate ((region region)) ((total sum units)) (scan sales))",
      options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->stats->used_range_partition);
  EXPECT_TRUE(result->stats->used_local_global_agg) << result->plan_text;
}

TEST(TdeParallelPlanTest, CountDistinctBlocksLocalGlobal) {
  auto db = MakeTestDatabase(40000);
  TdeEngine engine(db);
  QueryOptions options;
  options.parallel.max_dop = 4;
  options.parallel.min_rows_per_fraction = 1024;
  options.parallel.enable_range_partition = false;
  auto result = engine.Execute(
      "(aggregate ((product product)) ((nd countd units)) (scan sales))",
      options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->stats->used_local_global_agg) << result->plan_text;
  // Cross-check against serial.
  auto serial = engine.Execute(
      "(aggregate ((product product)) ((nd countd units)) (scan sales))",
      QueryOptions::Serial());
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(ResultTable::SameUnordered(result->table, serial->table));
}

TEST(TdeParallelPlanTest, MorselScanMatchesSerialAndClaimsMorsels) {
  auto db = MakeTestDatabase(40000);
  TdeEngine engine(db);
  const std::vector<std::string> queries = {
      "(aggregate ((region region)) ((n count*) (total sum units) (mean avg "
      "price)) (scan sales))",
      "(aggregate () ((total sum units) (n count*)) (scan sales))",
      "(topn 5 ((total desc) (product asc)) (aggregate ((product product)) "
      "((total sum units)) (scan sales)))",
  };
  for (const std::string& q : queries) {
    QueryOptions options;
    options.parallel.max_dop = 4;
    options.parallel.min_rows_per_fraction = 1024;
    options.parallel.enable_range_partition = false;
    // Tiny morsels: every fraction must claim many, so skew between the
    // scheduler-dispatched producers self-balances.
    options.parallel.morsel_rows = 1000;
    auto rp = engine.Execute(q, options);
    auto rs = engine.Execute(q, QueryOptions::Serial());
    ASSERT_TRUE(rp.ok()) << rp.status() << " for " << q;
    ASSERT_TRUE(rs.ok()) << rs.status() << " for " << q;
    EXPECT_TRUE(TablesEquivalent(rs->table, rp->table))
        << "query " << q << "\nserial:\n"
        << rs->table.ToCsv() << "\nmorsel:\n"
        << rp->table.ToCsv() << "\nplan:\n"
        << rp->plan_text;
    EXPECT_TRUE(rp->stats->used_morsel_scan) << rp->plan_text;
    // 40000 rows / 1000-row morsels = 40 claims shared across fractions.
    EXPECT_GE(rp->stats->morsels_claimed, 40) << rp->plan_text;
  }
}

TEST(TdeParallelPlanTest, SerialMeasurementModeDisablesMorsels) {
  // Serial-measurement mode runs exchange inputs one at a time for
  // contention-free per-fraction timing; dynamic morsels would let input 0
  // claim the whole table, so the engine falls back to static ranges.
  auto db = MakeTestDatabase(40000);
  TdeEngine engine(db);
  QueryOptions options;
  options.parallel.max_dop = 4;
  options.parallel.min_rows_per_fraction = 1024;
  options.serial_exchange_for_measurement = true;
  auto result = engine.Execute(
      "(aggregate ((region region)) ((total sum units)) (scan sales))",
      options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->stats->used_morsel_scan) << result->plan_text;
  EXPECT_EQ(result->stats->morsels_claimed, 0);
  EXPECT_EQ(result->table.num_rows(), 4);
}

TEST(TdeStreamingAggTest, SortedInputUsesStreamingAggregate) {
  auto db = MakeTestDatabase(4096);
  TdeEngine engine(db);
  QueryOptions options = QueryOptions::Serial();
  auto result = engine.Execute(
      "(aggregate ((region region)) ((n count*)) (scan sales))", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stats->used_streaming_agg) << result->plan_text;
  EXPECT_EQ(result->table.num_rows(), 4);
}

TEST(TdeRleIndexTest, RleRewriteMatchesPlainScan) {
  auto db = MakeTestDatabase(20000);
  TdeEngine engine(db);
  const std::string q =
      "(aggregate () ((n count*) (total sum units)) (select (= region "
      "\"South\") (scan sales)))";
  QueryOptions off = QueryOptions::Serial();
  off.optimizer.rle_index = OptimizerOptions::RleIndexMode::kOff;
  QueryOptions on = QueryOptions::Serial();
  on.optimizer.rle_index = OptimizerOptions::RleIndexMode::kForce;

  auto r_off = engine.Execute(q, off);
  auto r_on = engine.Execute(q, on);
  ASSERT_TRUE(r_off.ok()) << r_off.status();
  ASSERT_TRUE(r_on.ok()) << r_on.status();
  EXPECT_FALSE(r_off->stats->used_rle_index);
  EXPECT_TRUE(r_on->stats->used_rle_index) << r_on->plan_text;
  EXPECT_TRUE(ResultTable::SameUnordered(r_off->table, r_on->table));
  // Range skipping reads only the matching quarter of the table.
  EXPECT_LT(r_on->stats->rows_scanned, r_off->stats->rows_scanned / 2);
}

TEST(TdeJoinCullingTest, UnusedDimensionJoinIsRemoved) {
  auto db = MakeTestDatabase(4096);
  TdeEngine engine(db);
  // The join to products contributes no referenced columns.
  auto result = engine.Execute(
      "(aggregate ((region region)) ((total sum units)) (join inner ((product "
      "name)) (scan sales) (scan products) referential))",
      QueryOptions::Serial());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->plan_text.find("Join"), std::string::npos)
      << result->plan_text;
  // And results match the no-join query.
  auto direct = engine.Execute(
      "(aggregate ((region region)) ((total sum units)) (scan sales))",
      QueryOptions::Serial());
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(ResultTable::SameUnordered(result->table, direct->table));
}

TEST(TdeJoinCullingTest, NonReferentialJoinIsKept) {
  auto db = MakeTestDatabase(4096);
  TdeEngine engine(db);
  auto result = engine.Execute(
      "(aggregate ((region region)) ((total sum units)) (join inner ((product "
      "name)) (scan sales) (scan products)))",
      QueryOptions::Serial());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->plan_text.find("Join"), std::string::npos)
      << result->plan_text;
}

TEST(TdeTqlParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseTql("(scan)").ok());
  EXPECT_FALSE(ParseTql("(select (= a 1))").ok());
  EXPECT_FALSE(ParseTql("(frobnicate (scan t))").ok());
  EXPECT_FALSE(ParseTql("(scan t) trailing").ok());
  EXPECT_FALSE(ParseTql("(select (= a 1) (scan t)").ok());
  EXPECT_FALSE(ParseTql("(topn -3 ((x)) (scan t))").ok());
}

TEST(TdeTqlParserTest, ParsesComments) {
  auto plan = ParseTql("; a comment\n(scan sales) ; trailing comment");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ((*plan)->kind, LogicalKind::kScan);
}

TEST(TdeBinderTest, UnknownColumnFails) {
  auto db = MakeTestDatabase(128);
  TdeEngine engine(db);
  auto result = engine.Query("(select (= nosuch 1) (scan sales))");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(TdeBinderTest, TypeMismatchFails) {
  auto db = MakeTestDatabase(128);
  TdeEngine engine(db);
  EXPECT_FALSE(engine.Query("(select (= region 5) (scan sales))").ok());
  EXPECT_FALSE(engine.Query("(select (+ region 1) (scan sales))").ok());
  EXPECT_FALSE(
      engine.Query("(aggregate () ((s sum region)) (scan sales))").ok());
}

}  // namespace
}  // namespace vizq::tde
