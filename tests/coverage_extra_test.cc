// Targeted coverage for less-traveled paths: range-predicate residual
// post-filtering in the intelligent cache, the dictionary-vector demotion
// fallback, date-literal SQL rendering, TopN buffer pruning cycles, and
// schema-file-driven extraction through the engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "src/cache/intelligent_cache.h"
#include "src/common/str_util.h"
#include "src/dashboard/query_service.h"
#include "src/extract/shadow_extract.h"
#include "src/federation/data_source.h"
#include "src/query/compiler.h"
#include "src/tde/exec/scan.h"
#include "src/tde/exec/sort.h"
#include "tests/test_util.h"

namespace vizq {
namespace {

TEST(CacheRangeResidualTest, RangeFilterPostProcessesOnDimension) {
  using query::QueryBuilder;
  auto db = vizq::testing::MakeTestDatabase(4096);
  auto source = std::make_shared<federation::TdeDataSource>("tde", db);
  dashboard::QueryService service(source, nullptr);
  ASSERT_TRUE(service.RegisterTableView("sales").ok());
  dashboard::BatchOptions raw;
  raw.use_intelligent_cache = false;
  raw.use_literal_cache = false;
  raw.adjust.decompose_avg = false;

  // Stored at units granularity; requested narrows units by a range.
  auto stored = QueryBuilder("tde", "sales")
                    .Dim("region")
                    .Dim("units")
                    .Agg(AggFunc::kSum, "price", "total")
                    .Agg(AggFunc::kCount, "price", "n")
                    .Build();
  auto requested = QueryBuilder("tde", "sales")
                       .Dim("region")
                       .Agg(AggFunc::kSum, "price", "total")
                       .FilterRange("units", Value(int64_t{20}),
                                    Value(int64_t{60}))
                       .Build();
  cache::IntelligentCache cache;
  auto stored_result = service.ExecuteQuery(stored, raw);
  ASSERT_TRUE(stored_result.ok());
  cache.Put(stored, *stored_result, 10.0);

  auto hit = cache.Lookup(requested);
  ASSERT_TRUE(hit.has_value());
  auto truth = service.ExecuteQuery(requested, raw);
  ASSERT_TRUE(truth.ok());
  ResultTable a = *hit, b = *truth;
  a.SortRowsByAllColumns();
  b.SortRowsByAllColumns();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.at(r, 0).string_value(), b.at(r, 0).string_value());
    EXPECT_NEAR(a.at(r, 1).AsDouble(), b.at(r, 1).AsDouble(), 1e-9);
  }

  // Exclusive bounds behave correctly too.
  query::AbstractQuery exclusive = QueryBuilder("tde", "sales")
                                       .Dim("region")
                                       .Agg(AggFunc::kSum, "price", "total")
                                       .Build();
  exclusive.filters.predicates.push_back(query::ColumnPredicate::Range(
      "units", Value(int64_t{20}), Value(int64_t{60}),
      /*lower_inclusive=*/false, /*upper_inclusive=*/false));
  exclusive.Canonicalize();
  auto hit2 = cache.Lookup(exclusive);
  ASSERT_TRUE(hit2.has_value());
  auto truth2 = service.ExecuteQuery(exclusive, raw);
  ASSERT_TRUE(truth2.ok());
  // The cached path re-aggregates the stored partials in a different order
  // than the direct scan, so the float sums differ in the last ulps:
  // compare with the same tolerance as above instead of bit-exactly.
  ResultTable a2 = *hit2, b2 = *truth2;
  a2.SortRowsByAllColumns();
  b2.SortRowsByAllColumns();
  ASSERT_EQ(a2.num_rows(), b2.num_rows());
  for (int64_t r = 0; r < a2.num_rows(); ++r) {
    EXPECT_EQ(a2.at(r, 0).string_value(), b2.at(r, 0).string_value());
    EXPECT_NEAR(a2.at(r, 1).AsDouble(), b2.at(r, 1).AsDouble(), 1e-9);
  }
}

TEST(DictDemoteTest, AppendingForeignStringDemotesToPlain) {
  using namespace vizq::tde;
  // Build a dict-backed vector, then append a string the dictionary does
  // not contain: the vector must transparently demote and stay correct.
  auto dict = std::make_shared<StringDictionary>(Collation::kBinary);
  int64_t a = dict->Intern("alpha");
  int64_t b = dict->Intern("beta");
  ColumnVector cv(DataType::String());
  cv.dict = dict;
  cv.AppendToken(a);
  cv.AppendNull();
  cv.AppendToken(b);
  ASSERT_TRUE(cv.is_dict_string());

  cv.AppendValue(Value("gamma"));  // not in the dictionary
  EXPECT_FALSE(cv.is_dict_string());
  ASSERT_EQ(cv.size(), 4);
  EXPECT_EQ(cv.GetValue(0).string_value(), "alpha");
  EXPECT_TRUE(cv.IsNull(1));
  EXPECT_EQ(cv.GetValue(2).string_value(), "beta");
  EXPECT_EQ(cv.GetValue(3).string_value(), "gamma");
}

TEST(DateSqlTest, DateFiltersRenderAsDateLiterals) {
  auto db = std::make_shared<tde::Database>("d");
  tde::TableBuilder builder("events", {{"day", DataType::Date()},
                                       {"n", DataType::Int64()}});
  (void)builder.AddRow({Value(*ParseDateDays("2014-06-01")), Value(int64_t{1})});
  (void)db->AddTable(*builder.Finish());

  query::ViewDefinition view;
  view.name = "events";
  view.fact_table = "events";
  query::QueryCompiler compiler(view, query::Capabilities::SingleThreadedSql(),
                                query::SqlDialect::Ansi(), db.get());
  query::AbstractQuery q =
      query::QueryBuilder("d", "events")
          .Dim("day")
          .CountAll("c")
          .FilterRange("day", Value(*ParseDateDays("2014-06-01")),
                       Value(*ParseDateDays("2014-06-30")))
          .Build();
  auto cq = compiler.Compile(q);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_NE(cq->sql.find("DATE '2014-06-01'"), std::string::npos) << cq->sql;
  EXPECT_NE(cq->sql.find("DATE '2014-06-30'"), std::string::npos) << cq->sql;
}

TEST(TopNPruneTest, ManyPruneCyclesKeepExactTop) {
  using namespace vizq::tde;
  // 50k rows, limit 7: forces many intermediate PruneTo cycles.
  TableBuilder builder("t", {{"v", DataType::Int64()}});
  Rng rng(17);
  std::vector<int64_t> values;
  for (int i = 0; i < 50000; ++i) {
    int64_t v = rng.Range(0, 1000000);
    values.push_back(v);
    (void)builder.AddRow({Value(v)});
  }
  auto table = *builder.Finish();
  auto scan = std::make_unique<TableScanOperator>(table, std::vector<int>{0});
  auto key = *BindExpr(Col("v"), scan->schema());
  TopNOperator topn(std::move(scan), {SortKey{key, /*ascending=*/false}}, 7);
  auto result = *CollectToResultTable(&topn);
  ASSERT_EQ(result.num_rows(), 7);
  std::sort(values.begin(), values.end(), std::greater<int64_t>());
  for (int64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(result.at(i, 0).int_value(), values[i]);
  }
}

TEST(SchemaFileExtractTest, SchemaFileDrivesTypesThroughTheEngine) {
  const std::string schema_text =
      "# schema for the orders feed\n"
      "order_id:int64\n"
      "customer:string:nocase\n"
      "amount:float64\n"
      "placed:date\n";
  auto columns = extract::ParseSchemaFile(schema_text);
  ASSERT_TRUE(columns.ok()) << columns.status();

  const std::string csv =
      "order_id,customer,amount,placed\n"
      "1,ACME,10.5,2014-06-01\n"
      "2,acme,3.25,2014-06-02\n"
      "3,Globex,8.00,2014-06-02\n";
  auto db = std::make_shared<tde::Database>("orders");
  extract::ShadowExtractManager manager(db);
  extract::ExtractOptions options;
  options.schema = *columns;
  auto table = manager.ExtractCsv("orders", csv, options);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 3);

  // The nocase collation declared in the schema file folds ACME/acme.
  tde::TdeEngine engine(db);
  auto result = engine.Query(
      "(aggregate ((customer customer)) ((total sum amount)) (scan orders))");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 2);
}

TEST(ResultTableCsvTest, DebugRenderingIsStable) {
  ResultTable t(std::vector<ResultColumn>{{"a", DataType::String()},
                                          {"b", DataType::Int64()}});
  t.AddRow({Value("x"), Value(int64_t{1})});
  t.AddRow({Value::Null(), Value(int64_t{2})});
  EXPECT_EQ(t.ToCsv(), "a,b\nx,1\nNULL,2\n");
}

}  // namespace
}  // namespace vizq
