// Federation tests: connection pooling (reuse, caps, temp-table affinity,
// age-wise eviction), the simulated backends' admission control and
// concurrency behaviour.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/thread_pool.h"
#include "src/dashboard/query_service.h"
#include "src/federation/connection_pool.h"
#include "src/federation/simulated_source.h"
#include "tests/test_util.h"

namespace vizq::federation {
namespace {

using query::QueryBuilder;

query::CompiledQuery CompileCount(const DataSource& source) {
  query::ViewDefinition view;
  view.name = "sales";
  view.fact_table = "sales";
  query::QueryCompiler compiler(view, source.capabilities(), source.dialect(),
                                &source.catalog());
  auto q = QueryBuilder("src", "sales").Dim("region").CountAll("n").Build();
  auto cq = compiler.Compile(q);
  EXPECT_TRUE(cq.ok());
  return *cq;
}

TEST(ConnectionPoolTest, ReusesIdleConnections) {
  auto source = std::make_shared<TdeDataSource>(
      "tde", vizq::testing::MakeTestDatabase(256));
  ConnectionPool pool(source, 4);
  {
    auto c1 = pool.Acquire();
    ASSERT_TRUE(c1.ok());
  }  // released
  {
    auto c2 = pool.Acquire();
    ASSERT_TRUE(c2.ok());
  }
  EXPECT_EQ(pool.stats().opened, 1);
  EXPECT_EQ(pool.stats().reused, 1);
  EXPECT_EQ(pool.size(), 1);
}

TEST(ConnectionPoolTest, BlocksAtCapUntilRelease) {
  auto source = std::make_shared<TdeDataSource>(
      "tde", vizq::testing::MakeTestDatabase(256));
  ConnectionPool pool(source, 1);
  auto held = pool.Acquire();
  ASSERT_TRUE(held.ok());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto c = pool.Acquire();
    acquired = c.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  held->Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(pool.stats().waits, 1);
}

TEST(ConnectionPoolTest, TempTableAffinity) {
  auto source = std::make_shared<TdeDataSource>(
      "tde", vizq::testing::MakeTestDatabase(256));
  ConnectionPool pool(source, 4);

  // Open two connections; create a temp table on the second.
  Connection* with_temp = nullptr;
  {
    auto c1 = pool.Acquire();
    auto c2 = pool.Acquire();
    ASSERT_TRUE(c1.ok() && c2.ok());
    query::TempTableSpec spec;
    spec.name = "#t";
    spec.column = "v";
    spec.source_column = "units";
    spec.type = DataType::Int64();
    spec.values = {Value(int64_t{1})};
    ASSERT_TRUE((*c2)->CreateTempTable(spec).ok());
    with_temp = c2->get();
  }
  // Preferring the temp table returns exactly that connection.
  auto c = pool.AcquirePreferring({"#t"});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->get(), with_temp);
  EXPECT_GE(pool.stats().temp_affinity, 1);
}

TEST(ConnectionPoolTest, AgeWiseEviction) {
  auto source = std::make_shared<TdeDataSource>(
      "tde", vizq::testing::MakeTestDatabase(256));
  ConnectionPool pool(source, 4);
  {
    auto a = pool.Acquire();
    auto b = pool.Acquire();
  }
  EXPECT_EQ(pool.size(), 2);
  // Burn pool operations so the idle connections age.
  for (int i = 0; i < 10; ++i) {
    auto c = pool.Acquire();
  }
  pool.EvictIdle(/*max_idle_acquisitions=*/5);
  EXPECT_GE(pool.stats().evicted, 1);
}

TEST(ConnectionPoolTest, EvictedSlotsAreReopened) {
  auto source = std::make_shared<TdeDataSource>(
      "tde", vizq::testing::MakeTestDatabase(256));
  ConnectionPool pool(source, 2);
  // Create a mid-list hole: hold slot 1 while evicting slot 0.
  auto first = pool.Acquire();
  ASSERT_TRUE(first.ok());
  auto second = pool.Acquire();
  ASSERT_TRUE(second.ok());
  first->Release();
  pool.EvictIdle(/*max_idle_acquisitions=*/0);  // evict the idle slot 0
  ASSERT_GE(pool.stats().evicted, 1);
  // The hole must be reusable: with slot 1 still held, a new acquisition
  // must open a replacement rather than deadlock at the cap.
  auto replacement = pool.Acquire();
  ASSERT_TRUE(replacement.ok());
  EXPECT_NE(replacement->get(), second->get());
}

TEST(SimulatedSourceTest, ConnectionCapEnforced) {
  auto source = SimulatedDataSource::ThrottledCloud(
      "cloud", vizq::testing::MakeTestDatabase(256));
  std::vector<std::unique_ptr<Connection>> held;
  for (int i = 0; i < source->capabilities().max_connections; ++i) {
    auto c = source->Connect();
    ASSERT_TRUE(c.ok());
    held.push_back(*std::move(c));
  }
  auto over = source->Connect();
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  held[0]->Close();
  EXPECT_TRUE(source->Connect().ok());
}

TEST(SimulatedSourceTest, ExecutesCorrectResults) {
  auto db = vizq::testing::MakeTestDatabase(1024);
  auto source = SimulatedDataSource::SingleThreadedSql("sql", db);
  auto conn = source->Connect();
  ASSERT_TRUE(conn.ok());
  query::CompiledQuery cq = CompileCount(*source);
  ExecutionInfo info;
  auto result = (*conn)->Execute(cq, &info);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 4);
  int64_t total = 0;
  for (int64_t r = 0; r < result->num_rows(); ++r) {
    total += result->at(r, 1).int_value();
  }
  EXPECT_EQ(total, 1024);
  EXPECT_GT(info.total_ms, 0);
}

TEST(SimulatedSourceTest, AdmissionThrottleQueuesQueries) {
  auto db = vizq::testing::MakeTestDatabase(8192);
  auto source = SimulatedDataSource::ThrottledCloud("cloud", db);
  ASSERT_EQ(source->capabilities().max_concurrent_queries, 2);
  query::CompiledQuery cq = CompileCount(*source);

  // 4 concurrent queries against an admission limit of 2: at least one
  // must report queue time.
  std::vector<std::unique_ptr<Connection>> conns;
  for (int i = 0; i < 4; ++i) {
    auto c = source->Connect();
    ASSERT_TRUE(c.ok());
    conns.push_back(*std::move(c));
  }
  std::vector<ExecutionInfo> infos(4);
  {
    ThreadPool workers(4);
    for (int i = 0; i < 4; ++i) {
      workers.Submit([&, i] {
        auto r = conns[i]->Execute(cq, &infos[i]);
        EXPECT_TRUE(r.ok());
      });
    }
    workers.Wait();
  }
  double max_queue = 0;
  for (const ExecutionInfo& info : infos) {
    max_queue = std::max(max_queue, info.queue_ms);
  }
  EXPECT_GT(max_queue, 0.5);
}

TEST(SimulatedSourceTest, ClosedConnectionRefusesWork) {
  auto db = vizq::testing::MakeTestDatabase(256);
  auto source = SimulatedDataSource::SingleThreadedSql("sql", db);
  auto conn = source->Connect();
  ASSERT_TRUE(conn.ok());
  (*conn)->Close();
  query::CompiledQuery cq = CompileCount(*source);
  EXPECT_FALSE((*conn)->Execute(cq).ok());
  EXPECT_EQ(source->open_connections(), 0);
}

// A latency model whose waits all round to zero, for correctness-only tests.
PerformanceModel InstantModel() {
  PerformanceModel m;
  m.connect_ms = 0;
  m.dispatch_ms = 0;
  m.rows_per_ms = 1e9;
  m.network_rtt_ms = 0;
  m.rows_per_ms_network = 1e9;
  m.temp_table_row_ms = 0;
  return m;
}

// Minimized from fuzz_differential (fed_legacy lane): a backend without
// top-n support compiles ORDER BY/LIMIT variants to the same SQL text, so
// the literal cache must hold the untruncated backend rows — with local
// top-n applied after lookup — or one variant replays the other's rows.
TEST(FederatedExecutionTest, LiteralCacheServesFullRowsUnderLocalTopn) {
  auto source = std::make_shared<SimulatedDataSource>(
      "legacy", vizq::testing::MakeTestDatabase(1024), InstantModel(),
      query::Capabilities::LegacyFileDriver(), query::SqlDialect::MysqlLike());
  auto caches = std::make_shared<dashboard::CacheStack>();
  dashboard::QueryService service(source, caches);
  ASSERT_TRUE(service.RegisterTableView("sales").ok());

  dashboard::BatchOptions opts;
  opts.use_intelligent_cache = false;
  opts.fuse_queries = false;
  opts.analyze_batch = false;

  auto limited = QueryBuilder("legacy", "sales")
                     .Dim("region")
                     .CountAll("n")
                     .OrderBy("region", true)
                     .Limit(2)
                     .Build();
  auto unlimited =
      QueryBuilder("legacy", "sales").Dim("region").CountAll("n").Build();

  auto r1 = service.ExecuteQuery(limited, opts);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(r1->num_rows(), 2);

  // The unlimited variant shares the SQL text; it must see all groups, not
  // the truncated two rows the first call returned.
  auto r2 = service.ExecuteQuery(unlimited, opts);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->num_rows(), 4);

  // And the limited variant replayed from cache is still truncated.
  auto r3 = service.ExecuteQuery(limited, opts);
  ASSERT_TRUE(r3.ok()) << r3.status();
  EXPECT_TABLES_EQUIVALENT(*r1, *r3);
}

// Minimized from fuzz_differential (metamorphic IN-split): sessions reuse
// temp tables by name and the pool routes queries toward connections that
// already hold them, so two different IN enumerations on the same column
// must never compile to the same temp-table name.
TEST(TempTableTest, ExternalizedInListsAreContentAddressed) {
  auto source = std::make_shared<TdeDataSource>(
      "tde", vizq::testing::MakeTestDatabase(1024));
  query::ViewDefinition view;
  view.name = "sales";
  view.fact_table = "sales";
  query::QueryCompiler compiler(view, source->capabilities(),
                                source->dialect(), &source->catalog());
  query::CompilerOptions copts;
  copts.externalize_threshold = 2;

  auto q1 = QueryBuilder("tde", "sales")
                .Dim("region")
                .CountAll("n")
                .FilterIn("product",
                          {Value("apple"), Value("banana"), Value("cherry")})
                .Build();
  auto q2 = QueryBuilder("tde", "sales")
                .Dim("region")
                .CountAll("n")
                .FilterIn("product", {Value("apple"), Value("banana"),
                                      Value("cherry"), Value("date"),
                                      Value("elder")})
                .Build();
  auto cq1 = compiler.Compile(q1, copts, nullptr);
  auto cq2 = compiler.Compile(q2, copts, nullptr);
  ASSERT_TRUE(cq1.ok() && cq2.ok());
  ASSERT_EQ(cq1->temp_tables.size(), 1u);
  ASSERT_EQ(cq2->temp_tables.size(), 1u);
  EXPECT_NE(cq1->temp_tables[0].name, cq2->temp_tables[0].name);
  // Identical enumerations still share a name: that is the reuse win.
  auto cq1b = compiler.Compile(q1, copts, nullptr);
  ASSERT_TRUE(cq1b.ok());
  EXPECT_EQ(cq1->temp_tables[0].name, cq1b->temp_tables[0].name);

  // Same session, both queries: each must join against its own values.
  auto conn = source->Connect();
  ASSERT_TRUE(conn.ok());
  auto r1 = (*conn)->Execute(*cq1, nullptr);
  auto r2 = (*conn)->Execute(*cq2, nullptr);
  ASSERT_TRUE(r1.ok() && r2.ok());
  auto fresh = source->Connect();
  ASSERT_TRUE(fresh.ok());
  auto truth2 = (*fresh)->Execute(*cq2, nullptr);
  ASSERT_TRUE(truth2.ok());
  EXPECT_TABLES_EQUIVALENT(*truth2, *r2);
}

}  // namespace
}  // namespace vizq::federation
