// Bounded differential-fuzzer runs as tier-1 tests: every execution lane
// must agree with the reference oracle over a fixed seed window, the
// injected off-by-one self-test must be caught and minimized, and the
// deadline lane must never return a partial-but-OK result.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/testing/dataset_gen.h"
#include "src/testing/differential_fuzzer.h"
#include "src/testing/join_fuzz.h"
#include "src/testing/lanes.h"
#include "src/testing/query_gen.h"

namespace vizq::testing {
namespace {

// The main bounded sweep: all lanes (TDE direct, derived hit, literal
// first/replay, two federated backends, fused/unfused batch, deadline)
// against the oracle. Deterministic: a failure here reprints the seeds
// needed to replay it.
TEST(DifferentialFuzz, AllLanesAgreeWithOracle) {
  FuzzOptions options;
  options.iterations = 60;
  options.queries_per_iteration = 3;
  FuzzReport report = RunDifferentialFuzz(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// A different seed exercises different dataset shapes (empty tables,
// NULL-heavy columns, RLE runs) without growing the first test's budget.
TEST(DifferentialFuzz, SecondSeedWindowAgrees) {
  FuzzOptions options;
  options.seed = 0xC0FFEE;
  options.iterations = 40;
  FuzzReport report = RunDifferentialFuzz(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.lane_checks, 0);
}

// Morsel-lane sweep: engine-only iterations (federated/deadline lanes
// off, so no simulated-I/O sleeps) bringing the morsel_parallel lane to
// >= 200 bounded iterations across this file. The lane runs every query
// through scheduler-dispatched Exchange producers claiming tiny dynamic
// morsels and diffs against the serial oracle.
TEST(DifferentialFuzz, MorselLaneSweepEngineOnly) {
  FuzzOptions options;
  options.seed = 0x5EED5;
  options.iterations = 100;
  options.include_federated = false;
  options.deadline_lane = false;
  FuzzReport report = RunDifferentialFuzz(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.lane_checks, 0);
}

// Join-lane sweep (engine-only): generated two-table equi-joins — inner
// and left-outer, NULL keys, duplicate dimension keys, empty dimension
// tables — aggregated over the joined schema and diffed against the
// nested-loop oracle join in serial, forced-parallel (partitioned
// hash-join build + partitioned final merge at tiny thresholds) and
// plain-encoding modes.
TEST(DifferentialFuzz, JoinLaneSweepEngineOnly) {
  FuzzOptions options;
  options.seed = 0x10141;
  options.iterations = 60;
  options.queries_per_iteration = 1;
  options.include_federated = false;
  options.deadline_lane = false;
  options.metamorphic = false;
  FuzzReport report = RunDifferentialFuzz(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.lane_checks, 0);
}

// Self-test: bumping one aggregate cell by one in a scratch lane must be
// flagged, and the minimizer must shrink the offending query while the
// shrunk query still fails the lane (proves seed-replay works).
TEST(DifferentialFuzz, InjectedOffByOneIsCaughtAndMinimized) {
  FuzzOptions options;
  options.iterations = 10;
  options.inject_offby_one = true;
  options.max_failures = 3;
  FuzzReport report = RunDifferentialFuzz(options);
  ASSERT_FALSE(report.failures.empty());

  bool found = false;
  for (const FuzzFailure& f : report.failures) {
    if (f.lane != "injected_offby_one") continue;
    found = true;
    // Replay from seeds alone: dataset seed + minimized query + lane seed
    // must reproduce the failure on a fresh lane set.
    Dataset ds = GenerateDataset(f.dataset_seed);
    LaneSetupOptions lane_options;
    lane_options.inject_offby_one = true;
    std::string detail;
    EXPECT_TRUE(LaneStillFails(ds, lane_options, f.minimized, f.lane,
                               f.lane_seed, &detail))
        << f.ToString();
    // Minimization must not grow the query.
    EXPECT_LE(f.minimized.ToKeyString().size(), f.query.ToKeyString().size());
  }
  EXPECT_TRUE(found) << report.Summary();
}

// Satellite (c): under an aggressive deadline the outcome is either a
// fully correct table or kDeadlineExceeded/kAborted — RunQuery's deadline
// lane fails the check otherwise. Run it many times across datasets.
TEST(DifferentialFuzz, DeadlineLaneNeverReturnsPartialOk) {
  Rng rng(77);
  for (uint64_t ds_seed : {1ULL, 2ULL, 3ULL}) {
    Dataset ds = GenerateDataset(ds_seed);
    LaneSetupOptions lane_options;
    lane_options.include_federated = false;  // deadline lane only needs truth
    ExecutionLanes lanes(ds, lane_options);
    for (int i = 0; i < 8; ++i) {
      query::AbstractQuery q = GenerateQuery(ds, rng);
      for (const LaneCheck& c : lanes.RunQuery(q, HashCombine(ds_seed, i))) {
        if (c.lane != "deadline") continue;
        EXPECT_TRUE(c.ok) << "dataset_seed=" << ds_seed << " query "
                          << q.ToKeyString() << ": " << c.detail;
      }
    }
  }
}

// The stale_shed lane: every response from a saturated frontend (nothing
// admitted) is exact-correct, correctly-labeled stale within the serve
// bound, or a typed shed. Run it across datasets and assert the lane
// actually produced verdicts (it must never be silently skipped).
TEST(DifferentialFuzz, StaleShedLaneHoldsUnderInjectedOverload) {
  Rng rng(88);
  int stale_shed_checks = 0;
  for (uint64_t ds_seed : {4ULL, 5ULL, 6ULL}) {
    Dataset ds = GenerateDataset(ds_seed);
    LaneSetupOptions lane_options;
    lane_options.include_federated = false;
    lane_options.deadline_lane = false;  // no simulated-I/O sleeps needed
    ExecutionLanes lanes(ds, lane_options);
    for (int i = 0; i < 10; ++i) {
      query::AbstractQuery q = GenerateQuery(ds, rng);
      for (const LaneCheck& c : lanes.RunQuery(q, HashCombine(ds_seed, i))) {
        if (c.lane != "stale_shed") continue;
        ++stale_shed_checks;
        EXPECT_TRUE(c.ok) << "dataset_seed=" << ds_seed << " query "
                          << q.ToKeyString() << ": " << c.detail;
      }
    }
  }
  EXPECT_EQ(stale_shed_checks, 30);
}

// The generator must be deterministic: same seed, same campaign.
TEST(DifferentialFuzz, SeedReproducibility) {
  Dataset a = GenerateDataset(42);
  Dataset b = GenerateDataset(42);
  ASSERT_EQ(a.rows, b.rows);

  Rng ra(99), rb(99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(GenerateQuery(a, ra).ToKeyString(),
              GenerateQuery(b, rb).ToKeyString());
  }

  ASSERT_EQ(a.dim_rows, b.dim_rows);
  Rng rc(123), rd(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(GenerateJoinCase(a, rc).Describe(),
              GenerateJoinCase(b, rd).Describe());
  }
}

}  // namespace
}  // namespace vizq::testing
