// Thread-safety suites for the always-on observability layer, written to
// run under TSan (CI's thread-sanitizer job): the PerfRecorder's
// Record/Export/Clear paths, the TailExemplarStore's Offer/Snapshot/Clear
// window machinery, the SloMonitor's bucket ring, and PhaseTimeline's
// cross-thread Add + per-thread scope stacks. Each test hammers one
// structure from several threads and then asserts the cheap invariants
// that survive any interleaving (counts conserved, exports parse, no
// torn snapshots).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/phase_timeline.h"
#include "src/obs/exemplar.h"
#include "src/obs/json.h"
#include "src/obs/perf_recorder.h"
#include "src/obs/plan_profile.h"
#include "src/obs/slo.h"

namespace vizq::obs {
namespace {

ExecContext MakeTracedWork(const std::string& crumb) {
  ExecContext ctx;
  ctx.LogEvent("test", crumb);
  Span* child = ctx.trace()->root()->StartChild("stage");
  child->StartChild("inner")->End();
  child->End();
  return ctx;
}

TEST(ObsConcurrencyTest, PerfRecorderRecordExportResetRace) {
  PerfRecorderOptions options;
  options.ring_capacity = 16;
  options.slow_log_capacity = 8;
  options.slow_threshold_ms = 0.0;
  PerfRecorder recorder(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 200;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> recorded{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        ExecContext ctx = MakeTracedWork("w" + std::to_string(t));
        int64_t id = recorder.Record(ctx, ctx.trace()->root(),
                                     "req:" + std::to_string(t) + "." +
                                         std::to_string(i));
        if (id > 0) recorded.fetch_add(1, std::memory_order_relaxed);
        // Reads interleave with everyone else's writes.
        (void)recorder.FindById(id);
      }
    });
  }
  // One exporter and one resetter racing the writers.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string trace = recorder.AllToChromeTrace();
      EXPECT_TRUE(ValidateChromeTrace(trace).ok());
      (void)recorder.Recent();
      (void)recorder.Slowest();
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 20; ++i) {
      recorder.Clear();
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(recorded.load(), kWriters * kPerWriter);
  // total_recorded survives Clear(): it counts lifetime records.
  EXPECT_EQ(recorder.total_recorded(), kWriters * kPerWriter);
  EXPECT_TRUE(ValidateChromeTrace(recorder.AllToChromeTrace()).ok());
}

TEST(ObsConcurrencyTest, TailExemplarStoreOfferSnapshotClearRace) {
  TailExemplarOptions opt;
  opt.top_k = 4;
  opt.shed_k = 2;
  TailExemplarStore store(opt);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 300;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        double ms = static_cast<double>((t * kPerWriter + i) % 97) + 0.5;
        if (!store.WouldAdmit(ms) && i % 7 != 0) continue;
        ExecContext ctx = MakeTracedWork("w");
        ctx.timeline()->Add(Phase::kExecution,
                            static_cast<int64_t>(ms * 1e6));
        store.Offer(ctx, ctx.trace()->root(), "req:" + std::to_string(i),
                    ms, "content", /*shed=*/i % 11 == 0);
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<Exemplar> kept = store.Snapshot();
      EXPECT_LE(kept.size(), 2u * (opt.top_k + opt.shed_k));
      // Content exemplars lead, slowest-first.
      for (size_t i = 1; i < kept.size(); ++i) {
        if (kept[i - 1].shed || kept[i].shed) break;
        EXPECT_GE(kept[i - 1].duration_ms, kept[i].duration_ms);
      }
      (void)store.Slowest();
      EXPECT_TRUE(ValidateChromeTrace(store.ToChromeTrace()).ok());
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      store.Clear();
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });
  for (std::thread& th : threads) th.join();

  EXPECT_GE(store.total_offered(), store.total_retained());
  EXPECT_TRUE(ValidateChromeTrace(store.ToChromeTrace()).ok());
}

TEST(ObsConcurrencyTest, SloMonitorRecordSnapshotResetRace) {
  SloMonitor monitor;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        switch ((t + i) % 3) {
          case 0: monitor.Record(static_cast<double>(i % 1000)); break;
          case 1: monitor.RecordBad(); break;
          default: monitor.RecordShed(); break;
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      SloSnapshot snap = monitor.Snapshot();
      EXPECT_GE(snap.total, snap.good);
      EXPECT_GE(snap.total, 0);
      EXPECT_GE(snap.sheds, 0);
      EXPECT_GE(snap.short_burn, 0.0);
      EXPECT_GE(snap.long_burn, 0.0);
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 5; ++i) {
      monitor.Reset();
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });
  for (std::thread& th : threads) th.join();
  SloSnapshot final_snap = monitor.Snapshot();
  EXPECT_GE(final_snap.total, final_snap.good);
}

TEST(ObsConcurrencyTest, PhaseTimelineCrossThreadAddsAndScopes) {
  // One request's timeline is shared by the serving thread (root-phase
  // scopes) and scheduler workers (detail-phase Adds) — exactly the
  // production sharing shape.
  auto tl = std::make_shared<PhaseTimeline>();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          tl->Add(Phase::kQueueInteractive, 1000);
        } else {
          // Scope stacks are thread-local: concurrent scopes on separate
          // threads must not corrupt each other's pause/resume chains.
          PhaseScope outer(tl.get(), Phase::kExecution);
          PhaseScope inner(tl.get(), Phase::kCacheLookup);
        }
        if (i % 100 == 0) {
          tl->SetRung(t % 4);
          tl->SetOutcome("content");
          (void)tl->ToString();
          (void)tl->attributed_ns();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(tl->phase_ns(Phase::kQueueInteractive),
            static_cast<int64_t>(kThreads / 2) * kPerThread * 1000);
  EXPECT_GE(tl->phase_ns(Phase::kExecution), 0);
  EXPECT_GE(tl->phase_ns(Phase::kCacheLookup), 0);
  EXPECT_EQ(std::string(tl->outcome()), "content");
}

TEST(ObsConcurrencyTest, PlanProfileRegistryRecordSnapshotRace) {
  PlanProfileRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        registry.Record("shape-" + std::to_string(i % 5),
                        static_cast<double>(i % 50) + 0.5);
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& p : registry.Snapshot()) {
        EXPECT_LE(p.p50_ms, p.p95_ms);
        EXPECT_LE(p.p95_ms, p.p99_ms);
      }
    }
  });
  threads.emplace_back([&] {
    std::this_thread::yield();
    stop.store(true, std::memory_order_release);
  });
  for (std::thread& th : threads) th.join();

  std::vector<PlanProfileRegistry::Profile> profiles = registry.Snapshot();
  ASSERT_EQ(profiles.size(), 5u);
  int64_t total = 0;
  for (const auto& p : profiles) total += p.count;
  EXPECT_EQ(total, static_cast<int64_t>(kWriters) * kPerWriter);
}

}  // namespace
}  // namespace vizq::obs
