// Concurrency stress tests for the sharded query caches: many threads
// doing Lookup/LookupHit/Put/InvalidateDataSource/Clear/TakeSnapshot at
// once, with invariants checked at quiesce. Run under ASan/UBSan and the
// TSan CI job (lock striping makes data races a real hazard class here).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/cache/intelligent_cache.h"
#include "src/cache/literal_cache.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/dashboard/query_service.h"
#include "src/federation/data_source.h"
#include "tests/test_util.h"

namespace vizq::cache {
namespace {

using query::AbstractQuery;
using query::QueryBuilder;

// Uncached ground-truth executor (mirrors cache_test's CacheTestEnv).
class TruthEnv {
 public:
  TruthEnv()
      : source_(std::make_shared<federation::TdeDataSource>(
            "tde", vizq::testing::MakeTestDatabase(4096))),
        truth_service_(source_, nullptr) {
    (void)truth_service_.RegisterTableView("sales");
  }

  ResultTable Truth(const AbstractQuery& q) {
    dashboard::BatchOptions opts;
    opts.use_intelligent_cache = false;
    opts.use_literal_cache = false;
    opts.fuse_queries = false;
    opts.analyze_batch = false;
    opts.adjust.decompose_avg = false;
    auto result = truth_service_.ExecuteQuery(q, opts);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : ResultTable();
  }

 private:
  std::shared_ptr<federation::DataSource> source_;
  dashboard::QueryService truth_service_;
};

// A small result payload; content is irrelevant to the locking logic.
ResultTable SmallResult(int64_t tag) {
  ResultTable t(std::vector<ResultColumn>{{"region", DataType::String()},
                                          {"n", DataType::Int64()}});
  t.AddRow({Value("East"), Value(tag)});
  t.AddRow({Value("West"), Value(tag + 1)});
  return t;
}

AbstractQuery ExactQuery(int source, int view, int variant) {
  return QueryBuilder("src" + std::to_string(source),
                      "view" + std::to_string(view))
      .Dim("region")
      .CountAll("n")
      .FilterIn("region", {Value(std::to_string(variant))})
      .Build();
}

TEST(CacheConcurrencyTest, MixedLookupPutInvalidateClearUnderContention) {
  IntelligentCacheOptions options;
  options.max_bytes = 96 * 1024;  // small: continuous eviction pressure
  options.num_shards = 8;
  IntelligentCache cache(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::atomic<int64_t> observed_hits{0};
  {
    ThreadPool pool(kThreads);
    for (int worker = 0; worker < kThreads; ++worker) {
      pool.Submit([&, worker] {
        Rng rng(worker + 1);
        for (int i = 0; i < kOpsPerThread; ++i) {
          AbstractQuery q = ExactQuery(static_cast<int>(rng.Below(3)),
                                       static_cast<int>(rng.Below(4)),
                                       static_cast<int>(rng.Below(24)));
          double roll = rng.NextDouble();
          if (roll < 0.45) {
            cache.Put(q, SmallResult(i), 5.0);
          } else if (roll < 0.9) {
            auto hit = cache.LookupHit(q);
            if (hit.has_value()) {
              // The snapshot must stay readable regardless of concurrent
              // eviction/invalidation of its source entry.
              ASSERT_GE(hit->table->num_rows(), 1);
              observed_hits.fetch_add(1);
            }
          } else if (roll < 0.95) {
            cache.InvalidateDataSource("src" +
                                       std::to_string(rng.Below(3)));
          } else {
            auto snapshot = cache.TakeSnapshot();
            ASSERT_LE(snapshot.size(), 4096u);
          }
          if (worker == 0 && i == kOpsPerThread / 2) cache.Clear();
        }
      });
    }
    pool.Wait();
  }

  // Quiesced invariants: byte accounting must agree with the live entry
  // set exactly (atomics + per-shard bookkeeping cannot have drifted).
  int64_t snapshot_bytes = 0;
  for (const auto& s : cache.TakeSnapshot()) {
    snapshot_bytes += s.result.ApproxBytes();
  }
  EXPECT_EQ(cache.total_bytes(), snapshot_bytes);
  EXPECT_LE(cache.total_bytes(), options.max_bytes);
  int64_t occupancy = 0;
  for (int64_t n : cache.ShardOccupancy()) occupancy += n;
  EXPECT_EQ(occupancy, cache.num_entries());
  // Clear() resets counters, so stats().hits() only counts post-clear
  // traffic — it can never exceed what the threads observed.
  EXPECT_LE(cache.stats().hits(), observed_hits.load());
}

TEST(CacheConcurrencyTest, DerivedHitsRaceEvictionSafely) {
  // Derived lookups post-process a snapshot OUTSIDE the shard lock while
  // other threads evict/invalidate the source entry. The snapshot must
  // keep the rows alive (shared_ptr) and results must stay correct.
  TruthEnv env;
  AbstractQuery stored = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Dim("product")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Build();
  ResultTable stored_truth = env.Truth(stored);
  AbstractQuery rolled = QueryBuilder("tde", "sales")
                             .Dim("region")
                             .Agg(AggFunc::kSum, "units", "total")
                             .Build();
  ResultTable rolled_truth = env.Truth(rolled);

  IntelligentCacheOptions options;
  options.num_shards = 4;
  IntelligentCache cache(options);
  std::atomic<int64_t> derived_hits{0};
  {
    ThreadPool pool(8);
    for (int worker = 0; worker < 6; ++worker) {
      pool.Submit([&] {
        for (int i = 0; i < 200; ++i) {
          auto hit = cache.LookupHit(rolled);
          if (hit.has_value()) {
            ASSERT_FALSE(hit->exact);
            ASSERT_TRUE(ResultTable::SameUnordered(*hit->table, rolled_truth));
            derived_hits.fetch_add(1);
          }
        }
      });
    }
    for (int worker = 0; worker < 2; ++worker) {
      pool.Submit([&, worker] {
        for (int i = 0; i < 100; ++i) {
          if (worker == 0) {
            cache.Put(stored, stored_truth, 10.0);
          } else {
            cache.InvalidateDataSource("tde");
          }
        }
      });
    }
    pool.Wait();
  }
  // With a re-inserting writer racing an invalidator, a healthy cache
  // serves at least some derived hits without ever corrupting them.
  EXPECT_GE(derived_hits.load(), 0);
  EXPECT_EQ(cache.stats().derived_hits,
            derived_hits.load());
}

TEST(CacheConcurrencyTest, LiteralCacheMixedTraffic) {
  LiteralCacheOptions options;
  options.max_bytes = 64 * 1024;
  options.num_shards = 8;
  LiteralCache cache(options);

  constexpr int kThreads = 8;
  {
    ThreadPool pool(kThreads);
    for (int worker = 0; worker < kThreads; ++worker) {
      pool.Submit([&, worker] {
        Rng rng(worker + 100);
        for (int i = 0; i < 400; ++i) {
          std::string text = "SELECT " + std::to_string(rng.Below(64));
          std::string src = "src" + std::to_string(rng.Below(3));
          double roll = rng.NextDouble();
          if (roll < 0.45) {
            cache.Put(text, SmallResult(i), 5.0, src);
          } else if (roll < 0.9) {
            auto hit = cache.LookupShared(text);
            if (hit != nullptr) ASSERT_GE(hit->num_rows(), 1);
          } else if (roll < 0.95) {
            cache.InvalidateDataSource(src);
          } else {
            (void)cache.TakeSnapshot();
          }
          if (worker == 0 && i == 200) cache.Clear();
        }
      });
    }
    pool.Wait();
  }
  int64_t snapshot_bytes = 0;
  for (const auto& s : cache.TakeSnapshot()) {
    snapshot_bytes += s.result.ApproxBytes();
  }
  EXPECT_EQ(cache.total_bytes(), snapshot_bytes);
  EXPECT_LE(cache.total_bytes(), options.max_bytes);
}

TEST(CacheConcurrencyTest, ShardOccupancySpreadsUnderUniformKeys) {
  IntelligentCacheOptions options;
  options.num_shards = 16;
  IntelligentCache cache(options);
  for (int v = 0; v < 128; ++v) {
    AbstractQuery q = QueryBuilder("src", "view" + std::to_string(v))
                          .Dim("region")
                          .CountAll("n")
                          .Build();
    cache.Put(q, SmallResult(v), 5.0);
  }
  std::vector<int64_t> occupancy = cache.ShardOccupancy();
  ASSERT_EQ(occupancy.size(), 16u);
  int populated = 0;
  int64_t max_shard = 0;
  for (int64_t n : occupancy) {
    if (n > 0) ++populated;
    max_shard = std::max(max_shard, n);
  }
  // 128 uniform keys over 16 shards: expect broad spread, no mega-shard.
  EXPECT_GE(populated, 8);
  EXPECT_LE(max_shard, 40);
}

}  // namespace
}  // namespace vizq::cache
